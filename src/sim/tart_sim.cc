#include "sim/tart_sim.h"

#include <algorithm>
#include <cassert>
#include <deque>
#include <vector>

#include "estimator/bias.h"
#include "sim/event_queue.h"
#include "stats/online_stats.h"
#include "wire/inbox.h"

namespace tart::sim {

namespace {

/// One external message travelling through the simulated system. The
/// external arrival (real) time rides along for latency accounting.
struct ExtMsg {
  SimTime arrival = 0;  // real == virtual time for external messages
  int iterations = 0;
};

class Simulation {
 public:
  explicit Simulation(const SimConfig& config)
      : config_(config),
        gaussian_(config.per_tick_jitter_sd),
        bias_(TickDuration(config.bias_ns)) {}

  SimResult run();

 private:
  struct Sender {
    int id = 0;
    WireId wire;
    std::deque<ExtMsg> queue;
    std::uint64_t remaining_arrivals = 0;  // not yet arrived
    bool busy = false;
    SimTime busy_start = 0;
    SimTime busy_real_total = 0;
    int busy_iters = 0;
    std::int64_t dequeue_vt = 0;
    std::int64_t out_vt = 0;       // output vt of the in-flight message
    std::int64_t current_vt = 0;   // virtual position when idle
    std::uint64_t out_seq = 0;
    bool closed = false;           // final silence announced
    Rng jitter_rng{0};
  };

  // --- Estimators ----------------------------------------------------------

  [[nodiscard]] std::int64_t estimate(int k) const {
    if (config_.dumb_estimator)
      return static_cast<std::int64_t>(config_.dumb_estimate_ns);
    return static_cast<std::int64_t>(config_.estimator_ns_per_iter * k);
  }

  [[nodiscard]] std::int64_t min_estimate() const { return estimate(1); }

  [[nodiscard]] std::int64_t real_compute_ns(int k, Rng& rng) const {
    if (config_.bank != nullptr) return config_.bank->sample(k, rng);
    return gaussian_.real_ns(config_.per_iter_vt_ns * k, rng);
  }

  [[nodiscard]] bool biased(const Sender& s) const {
    if (config_.bias_ns <= 0) return false;
    return config_.biased_sender == -2 || s.id == config_.biased_sender;
  }

  // --- Sender processor ------------------------------------------------------

  void on_arrival(Sender& s, ExtMsg msg) {
    --s.remaining_arrivals;
    s.queue.push_back(msg);
    if (!s.busy) start_service(s);
  }

  void start_service(Sender& s) {
    assert(!s.queue.empty());
    const ExtMsg& msg = s.queue.front();
    s.dequeue_vt = std::max<std::int64_t>(msg.arrival, s.current_vt);
    s.busy_iters = msg.iterations;
    std::int64_t out = s.dequeue_vt + estimate(msg.iterations);
    if (biased(s)) out = bias_.adjust(VirtualTime(out)).ticks();
    s.out_vt = out;
    s.busy = true;
    s.busy_start = queue_.now();
    s.busy_real_total = real_compute_ns(msg.iterations, s.jitter_rng);
    queue_.schedule_after(s.busy_real_total, [this, &s] { complete(s); });
  }

  void complete(Sender& s) {
    const ExtMsg msg = s.queue.front();
    s.queue.pop_front();
    s.busy = false;
    s.current_vt = s.out_vt;

    Message m;
    m.wire = s.wire;
    m.vt = VirtualTime(s.out_vt);
    m.seq = s.out_seq++;
    m.payload = Payload(static_cast<std::int64_t>(msg.arrival));
    merger_receive(m);

    if (!s.queue.empty()) {
      start_service(s);
    } else if (s.remaining_arrivals == 0 && !s.closed) {
      // The external feed is exhausted: promise silence forever so the
      // merger can drain (the drain phase of the experiment).
      s.closed = true;
      merger_silence(s.wire, VirtualTime::infinity());
    }
  }

  /// Sound silence horizon for a probed sender at real time `t` (§II.H).
  [[nodiscard]] std::int64_t sender_horizon(const Sender& s, SimTime t) const {
    if (s.closed) return VirtualTime::infinity().ticks();
    if (s.busy) {
      if (config_.mode == SimMode::kPrescient || config_.dumb_estimator) {
        // The output virtual time is fully known before the loop finishes.
        return s.out_vt - 1;
      }
      // Non-prescient: the sender knows how many iterations it has
      // *finished* but "is assumed not to know how many more will follow";
      // it promises at least one more iteration beyond its progress.
      const double frac =
          static_cast<double>(t - s.busy_start) /
          static_cast<double>(std::max<SimTime>(s.busy_real_total, 1));
      const int done = std::min(
          s.busy_iters - 1,
          static_cast<int>(frac * s.busy_iters));
      const auto per =
          static_cast<std::int64_t>(config_.estimator_ns_per_iter);
      return s.dequeue_vt + static_cast<std::int64_t>(done + 1) * per - 1;
    }
    // Idle: external arrivals are timestamped with real time, so nothing
    // can be dequeued before max(current position, now); add the shortest
    // possible processing (§II.H).
    std::int64_t base = std::max<std::int64_t>(s.current_vt, t);
    std::int64_t h = base + min_estimate() - 1;
    if (biased(s))
      h = std::max<std::int64_t>(
          h, bias_.eager_promise(VirtualTime(base)).ticks());
    return h;
  }

  // --- Merger processor --------------------------------------------------------

  void merger_receive(const Message& m) {
    if (m.vt.ticks() < max_arrival_vt_) ++result_.out_of_order;
    max_arrival_vt_ = std::max(max_arrival_vt_, m.vt.ticks());

    if (config_.mode == SimMode::kNonDeterministic) {
      fifo_.push_back(m);
      peak_queue();
      try_dispatch();
      return;
    }
    if (config_.mode == SimMode::kOptimistic) {
      optimistic_receive(m);
      return;
    }
    const AcceptResult r = inbox_.offer(m);
    assert(r == AcceptResult::kAccepted);
    (void)r;
    peak_queue();
    try_dispatch();
  }

  // --- Optimistic (Time Warp) merger --------------------------------------

  struct OptJob {
    Message msg;
    std::int64_t extra_ns = 0;  // rollback state-restore overhead
  };

  void optimistic_receive(const Message& m) {
    // Straggler detection against *processed* history: anything already
    // executed with a later virtual time must be rolled back and redone
    // after this message (Jefferson's rollback, §II.D).
    if (!opt_history_.empty() && m.vt < opt_history_.back().vt) {
      ++result_.rollbacks;
      std::vector<Message> redo;
      while (!opt_history_.empty() && opt_history_.back().vt > m.vt) {
        redo.push_back(opt_history_.back());
        opt_history_.pop_back();
      }
      result_.reexecutions += redo.size();
      // The straggler runs first (paying the state restore), then the
      // rolled-back messages in virtual-time order. They preempt anything
      // still waiting in the arrival queue.
      std::vector<OptJob> jobs;
      jobs.push_back(OptJob{
          m, config_.rollback_cost_ns *
                 static_cast<std::int64_t>(redo.size())});
      for (auto it = redo.rbegin(); it != redo.rend(); ++it)
        jobs.push_back(OptJob{*it, 0});
      opt_queue_.insert(opt_queue_.begin(), jobs.begin(), jobs.end());
    } else {
      opt_queue_.push_back(OptJob{m, 0});
    }
    result_.peak_merger_queue =
        std::max(result_.peak_merger_queue, opt_queue_.size());
    optimistic_dispatch();
  }

  void optimistic_dispatch() {
    if (merger_busy_ || opt_queue_.empty()) return;
    const OptJob job = opt_queue_.front();
    opt_queue_.pop_front();
    merger_busy_ = true;
    const std::int64_t service = config_.merger_service_ns + job.extra_ns;
    const SimTime done_at = queue_.now() + service;
    queue_.schedule_after(service, [this, job, done_at, service] {
      merger_busy_ = false;
      merger_busy_ns_ += service;
      // Completion is only final if no later rollback re-executes this
      // message; record/overwrite by (wire, external arrival) identity.
      opt_completion_[{job.msg.wire.value(), job.msg.payload.as_int()}] =
          done_at;
      // Insert into processed history keeping vt order (insertions are
      // near the tail: only a straggler's redo lands earlier).
      const auto pos = std::upper_bound(
          opt_history_.begin(), opt_history_.end(), job.msg,
          [](const Message& a, const Message& b) { return a.vt < b.vt; });
      opt_history_.insert(pos, job.msg);
      // GVT-style fossil collection: entries far enough in the past can no
      // longer be rolled back by any realistic straggler (bounds history
      // to a sliding window; a straggler later than the window would be
      // under-counted, which only flatters optimism).
      const VirtualTime horizon(max_arrival_vt_ - 50'000'000);
      while (!opt_history_.empty() && opt_history_.front().vt < horizon)
        opt_history_.pop_front();
      optimistic_dispatch();
    });
  }

  void finalize_optimistic_latencies() {
    for (const auto& [key, done_at] : opt_completion_) {
      const double us =
          static_cast<double>(done_at - key.second) / 1000.0;
      latency_.add(us);
      latencies_.push_back(us);
      ++result_.completed;
    }
  }

  void merger_silence(WireId wire, VirtualTime through) {
    if (config_.mode == SimMode::kNonDeterministic ||
        config_.mode == SimMode::kOptimistic)
      return;  // neither needs silence
    (void)inbox_.announce_silence(wire, through);
    try_dispatch();
  }

  void peak_queue() {
    const std::size_t depth = config_.mode == SimMode::kNonDeterministic
                                  ? fifo_.size()
                                  : inbox_.pending();
    result_.peak_merger_queue = std::max(result_.peak_merger_queue, depth);
  }

  void try_dispatch() {
    if (merger_busy_) return;

    std::optional<Message> next;
    if (config_.mode == SimMode::kNonDeterministic) {
      if (!fifo_.empty()) {
        next = fifo_.front();
        fifo_.pop_front();
      }
    } else {
      next = inbox_.pop();
      if (!next && inbox_.pending() > 0) {
        enter_pessimism_delay();
        return;
      }
    }
    if (!next) return;
    exit_pessimism_delay();

    merger_busy_ = true;
    const SimTime done_at = queue_.now() + config_.merger_service_ns;
    const SimTime ext_arrival = next->payload.as_int();
    queue_.schedule_after(config_.merger_service_ns,
                          [this, ext_arrival, done_at] {
                            merger_busy_ = false;
                            ++result_.completed;
                            merger_busy_ns_ += config_.merger_service_ns;
                            latency_.add(
                                static_cast<double>(done_at - ext_arrival) /
                                1000.0);
                            latencies_.push_back(
                                static_cast<double>(done_at - ext_arrival) /
                                1000.0);
                            try_dispatch();
                          });
  }

  void enter_pessimism_delay() {
    if (!delay_active_) {
      delay_active_ = true;
      delay_start_ = queue_.now();
      ++result_.pessimism_events;
    }
    if (config_.silence == SimSilence::kCuriosity) send_probes();
    // Lazy: just wait for the next data message (whose vt implies silence).
  }

  void exit_pessimism_delay() {
    if (delay_active_) {
      delay_active_ = false;
      result_.pessimism_wait_us +=
          static_cast<double>(queue_.now() - delay_start_) / 1000.0;
    }
  }

  void send_probes() {
    for (const WireId w : inbox_.lagging_wires()) {
      auto& outstanding = probe_outstanding_[w.value()];
      if (outstanding) continue;
      outstanding = true;
      ++result_.probes;
      Sender& s = senders_[w.value()];
      queue_.schedule_after(config_.probe_rtt_ns, [this, &s, w] {
        probe_outstanding_[w.value()] = false;
        merger_silence(w, VirtualTime(sender_horizon(s, queue_.now())));
        // Still blocked on this wire? Probe again (the paper's receiver
        // keeps chasing silence while the pessimism delay persists).
        if (!merger_busy_ && inbox_.pending() > 0 && !inbox_.head_eligible())
          send_probes();
      });
    }
  }

  // --- Workload -----------------------------------------------------------------

  void generate_workload() {
    Rng workload_rng(config_.seed);
    senders_.resize(static_cast<std::size_t>(config_.num_senders));
    probe_outstanding_.assign(
        static_cast<std::size_t>(config_.num_senders), false);
    for (int i = 0; i < config_.num_senders; ++i) {
      Sender& s = senders_[static_cast<std::size_t>(i)];
      s.id = i;
      s.wire = WireId(static_cast<std::uint32_t>(i));
      s.jitter_rng = Rng(config_.seed * 7919 + static_cast<unsigned>(i));
      if (config_.mode != SimMode::kNonDeterministic &&
          config_.mode != SimMode::kOptimistic) {
        inbox_.add_wire(s.wire);
        // Receiver-side half of the bias algorithm: data from a biased
        // sender only occupies grid-boundary ticks, so the merger infers
        // silence in between without communication.
        if (config_.bias_ns > 0 &&
            (config_.biased_sender == -2 || i == config_.biased_sender))
          inbox_.set_data_grid(s.wire, config_.bias_ns + 1);
      }

      // Pre-generate this sender's arrival stream so every mode sees the
      // identical workload for a given seed.
      Rng arrivals = workload_rng.fork();
      const double mean_us =
          (i == 0 && config_.slow_arrival_mean_us > 0)
              ? config_.slow_arrival_mean_us
              : config_.arrival_mean_us;
      double t_us = 0;
      std::int64_t last_arrival_ns = -1;
      for (;;) {
        t_us += arrivals.exponential(mean_us);
        if (t_us > config_.duration_us) break;
        ExtMsg msg;
        msg.arrival = static_cast<SimTime>(t_us * 1000.0);
        // External vts must be strictly increasing per wire.
        if (msg.arrival <= last_arrival_ns) msg.arrival = last_arrival_ns + 1;
        last_arrival_ns = msg.arrival;
        msg.iterations = static_cast<int>(arrivals.uniform_int(
            config_.iterations.min, config_.iterations.max));
        ++s.remaining_arrivals;
        ++result_.generated;
        queue_.schedule(msg.arrival, [this, &s, msg] { on_arrival(s, msg); });
      }
      if (s.remaining_arrivals == 0) {
        s.closed = true;
        queue_.schedule(0, [this, &s] {
          merger_silence(s.wire, VirtualTime::infinity());
        });
      }
    }
  }

  const SimConfig& config_;
  GaussianJitter gaussian_;
  estimator::BiasPolicy bias_;
  EventQueue queue_;

  std::vector<Sender> senders_;
  Inbox inbox_;
  std::deque<Message> fifo_;
  std::vector<char> probe_outstanding_;
  std::int64_t max_arrival_vt_ = -1;

  bool merger_busy_ = false;
  bool delay_active_ = false;
  SimTime delay_start_ = 0;
  std::int64_t merger_busy_ns_ = 0;

  // kOptimistic state.
  std::deque<OptJob> opt_queue_;
  std::deque<Message> opt_history_;  // processed, sorted by vt (windowed)
  // (wire, ext arrival) -> final completion time.
  std::map<std::pair<std::uint32_t, std::int64_t>, SimTime> opt_completion_;

  stats::OnlineStats latency_;
  std::vector<double> latencies_;
  SimResult result_;
};

SimResult Simulation::run() {
  generate_workload();

  const auto feed_ns = static_cast<SimTime>(config_.duration_us * 1000.0);
  queue_.run_until(feed_ns);
  // Drain phase: allow a generous grace window for queues to empty.
  queue_.run_until(feed_ns * 3 + 1'000'000'000);

  if (config_.mode == SimMode::kOptimistic) finalize_optimistic_latencies();
  result_.stable = result_.completed == result_.generated;
  exit_pessimism_delay();

  result_.avg_latency_us = latency_.mean();
  result_.max_latency_us = latency_.max();
  if (!latencies_.empty()) {
    std::sort(latencies_.begin(), latencies_.end());
    result_.p50_latency_us = latencies_[latencies_.size() / 2];
    result_.p95_latency_us =
        latencies_[static_cast<std::size_t>(
            static_cast<double>(latencies_.size() - 1) * 0.95)];
  }
  result_.merger_utilization =
      static_cast<double>(merger_busy_ns_) / static_cast<double>(feed_ns);
  return result_;
}

}  // namespace

SimResult run_simulation(const SimConfig& config) {
  Simulation sim(config);
  return sim.run();
}

}  // namespace tart::sim
