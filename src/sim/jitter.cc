#include "sim/jitter.h"

namespace tart::sim {

EmpiricalJitterBank::EmpiricalJitterBank(const Config& config) {
  Rng rng(config.seed);
  bank_.resize(static_cast<std::size_t>(config.max_iterations));
  for (int k = 1; k <= config.max_iterations; ++k) {
    auto& samples = bank_[static_cast<std::size_t>(k - 1)];
    samples.reserve(static_cast<std::size_t>(config.samples_per_k));
    for (int i = 0; i < config.samples_per_k; ++i) {
      double ns = config.base_ns_per_iteration * k;
      ns += rng.lognormal(config.noise_mu, config.noise_sigma);
      if (rng.chance(config.spike_probability))
        ns += rng.exponential(config.spike_mean_ns);
      samples.push_back(static_cast<std::int64_t>(ns));
    }
  }
}

std::int64_t EmpiricalJitterBank::sample(int k, Rng& rng) const {
  const auto& samples =
      bank_[static_cast<std::size_t>(std::min(k, max_iterations()) - 1)];
  const auto idx = rng.bounded(samples.size());
  return samples[idx];
}

std::vector<std::pair<int, double>> EmpiricalJitterBank::all_samples() const {
  std::vector<std::pair<int, double>> out;
  for (std::size_t k = 0; k < bank_.size(); ++k)
    for (const auto ns : bank_[k])
      out.emplace_back(static_cast<int>(k + 1), static_cast<double>(ns));
  return out;
}

}  // namespace tart::sim
