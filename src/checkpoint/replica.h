// Passive replica store.
//
// "Each engine is associated with a backup, which is either a stable
// storage device for holding checkpoints, or a passive replica residing on
// a separate execution engine, which holds checkpoints, ready to
// immediately become active should the active engine fail" (§II.C). The
// replica performs no processing: it stores the latest full snapshot per
// component plus any deltas received since, and hands them back on
// failover. Delta application happens on the recovering side.
//
// Thread-safe: soft checkpoints arrive asynchronously from engine threads.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <vector>

#include "checkpoint/snapshot.h"
#include "common/ids.h"
#include "log/stable_store.h"

namespace tart::trace {
class TraceRecorder;
}

namespace tart::checkpoint {

/// Everything needed to rebuild one component: the last full snapshot and
/// the ordered deltas on top of it.
struct RestorePlan {
  ComponentSnapshot base;
  std::vector<ComponentSnapshot> deltas;
};

class ReplicaStore {
 public:
  /// Accepts a soft checkpoint. A full snapshot replaces the base and
  /// clears accumulated deltas; a delta is appended (its version must
  /// extend the chain, otherwise it is rejected and a full snapshot should
  /// be sent next).
  /// Returns true if accepted.
  bool store(ComponentSnapshot snapshot);

  /// Snapshot chain for failover, if any checkpoint was ever received.
  [[nodiscard]] std::optional<RestorePlan> restore(ComponentId component) const;

  /// Latest version held for a component (0 if none).
  [[nodiscard]] std::uint64_t latest_version(ComponentId component) const;

  /// Consistent copy of every component's restore plan, taken under the
  /// store lock — the state a durable checkpoint file persists.
  [[nodiscard]] std::map<ComponentId, RestorePlan> export_plans() const;

  /// Seeds a component's plan from a durable checkpoint file (boot path,
  /// before any engine starts). Replaces whatever is held.
  void import_plan(ComponentId component, RestorePlan plan);

  /// Cumulative bytes received — the shipping cost of checkpointing, used
  /// by the checkpoint-frequency ablation bench.
  [[nodiscard]] std::uint64_t bytes_received() const;
  [[nodiscard]] std::uint64_t snapshots_received() const;

  void clear();

  /// Write-through persistence: accepted snapshots are also framed into
  /// `store` (checkpoints on "a stable storage device", §II.C).
  void attach_store(log::FileStableStore* store);

  /// Reloads snapshots persisted by attach_store (cold restart). Byte
  /// accounting is not replayed — only the restore plans.
  void load_from(const std::string& path);

  /// Flight recorder (may be null): an accepted snapshot is the durable
  /// checkpoint event, so it is recorded here rather than at capture.
  void set_trace(trace::TraceRecorder* recorder);

 private:
  bool store_locked(ComponentSnapshot snapshot);

  mutable std::mutex mutex_;
  std::map<ComponentId, RestorePlan> plans_;
  std::uint64_t bytes_ = 0;
  std::uint64_t count_ = 0;
  log::FileStableStore* store_ = nullptr;
  trace::TraceRecorder* trace_ = nullptr;
};

}  // namespace tart::checkpoint
