// Incrementally-checkpointable associative container.
//
// "For large structures like hash tables needing incremental checkpointing,
// updates since the last checkpoint are stored in an auxiliary structure"
// (§II.F.2). CheckpointedMap keeps the live map plus an auxiliary set of
// keys dirtied (inserted/updated/erased) since the last capture; a delta
// capture serializes only those entries (erasures as tombstones) and resets
// the auxiliary structure.
//
// Keys are kept in a std::map so full captures serialize in deterministic
// key order — checkpoints of equal states are bit-identical, which the
// determinism property tests rely on.
#pragma once

#include <map>
#include <set>

#include "checkpoint/checkpointable.h"
#include "serde/archive.h"

namespace tart::checkpoint {

template <typename K, typename V>
class CheckpointedMap final : public Checkpointable {
 public:
  using Map = std::map<K, V>;

  /// Read access never dirties.
  [[nodiscard]] const V* find(const K& key) const {
    const auto it = map_.find(key);
    return it == map_.end() ? nullptr : &it->second;
  }
  [[nodiscard]] bool contains(const K& key) const { return map_.contains(key); }
  [[nodiscard]] std::size_t size() const { return map_.size(); }
  [[nodiscard]] bool empty() const { return map_.empty(); }
  [[nodiscard]] const Map& entries() const { return map_; }

  /// Inserts or overwrites, marking the key dirty.
  void put(const K& key, V value) {
    map_[key] = std::move(value);
    dirty_.insert(key);
  }

  /// In-place mutation through a callback, marking the key dirty. Creates a
  /// default-constructed value if absent.
  template <typename Fn>
  void update(const K& key, Fn&& fn) {
    fn(map_[key]);
    dirty_.insert(key);
  }

  /// Erases a key; records a tombstone so the delta propagates the erase.
  bool erase(const K& key) {
    dirty_.insert(key);
    return map_.erase(key) > 0;
  }

  void clear() {
    for (const auto& [k, v] : map_) dirty_.insert(k);
    map_.clear();
  }

  [[nodiscard]] std::size_t dirty_count() const { return dirty_.size(); }

  // Checkpointable:
  void capture_full(serde::Writer& w) const override {
    serde::encode_value(w, map_);
  }

  void capture_delta(serde::Writer& w) override {
    w.write_varint(dirty_.size());
    for (const K& key : dirty_) {
      serde::encode_value(w, key);
      const auto it = map_.find(key);
      const bool present = it != map_.end();
      w.write_bool(present);
      if (present) serde::encode_value(w, it->second);
    }
    dirty_.clear();
  }

  [[nodiscard]] bool supports_delta() const override { return true; }

  void restore_full(serde::Reader& r) override {
    serde::decode_value(r, map_);
    dirty_.clear();
  }

  void apply_delta(serde::Reader& r) override {
    const auto n = r.read_varint();
    for (std::uint64_t i = 0; i < n; ++i) {
      K key{};
      serde::decode_value(r, key);
      if (r.read_bool()) {
        V value{};
        serde::decode_value(r, value);
        map_[key] = std::move(value);
      } else {
        map_.erase(key);
      }
    }
  }

 private:
  Map map_;
  std::set<K> dirty_;  // auxiliary structure: keys changed since last capture
};

}  // namespace tart::checkpoint
