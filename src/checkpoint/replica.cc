#include "checkpoint/replica.h"

#include "trace/recorder.h"

namespace tart::checkpoint {

bool ReplicaStore::store(ComponentSnapshot snapshot) {
  const std::lock_guard<std::mutex> lock(mutex_);
  bytes_ += snapshot.encoded_size();
  ++count_;
  if (store_ != nullptr) {
    serde::Writer w;
    snapshot.encode(w);
    store_->append(w.bytes());
  }
  const ComponentId component = snapshot.component;
  const VirtualTime vt = snapshot.vt;
  const std::uint64_t version = snapshot.version;
  const bool accepted = store_locked(std::move(snapshot));
  // Acceptance is what makes the checkpoint durable — a rejected delta
  // never becomes part of a restore plan, so only acceptance is a
  // scheduling event.
  if (accepted && trace_ != nullptr)
    trace_->record(component, trace::TraceEventKind::kCheckpoint, vt,
                   WireId::invalid(), version);
  return accepted;
}

void ReplicaStore::set_trace(trace::TraceRecorder* recorder) {
  const std::lock_guard<std::mutex> lock(mutex_);
  trace_ = recorder;
}

bool ReplicaStore::store_locked(ComponentSnapshot snapshot) {
  auto it = plans_.find(snapshot.component);
  if (!snapshot.is_delta) {
    RestorePlan plan;
    plan.base = std::move(snapshot);
    plans_.insert_or_assign(plan.base.component, std::move(plan));
    return true;
  }
  if (it == plans_.end()) return false;  // delta with no base
  RestorePlan& plan = it->second;
  const std::uint64_t expected =
      plan.deltas.empty() ? plan.base.version + 1
                          : plan.deltas.back().version + 1;
  if (snapshot.version != expected) return false;  // chain broken
  plan.deltas.push_back(std::move(snapshot));
  return true;
}

void ReplicaStore::attach_store(log::FileStableStore* store) {
  const std::lock_guard<std::mutex> lock(mutex_);
  store_ = store;
}

void ReplicaStore::load_from(const std::string& path) {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& record : log::FileStableStore::scan(path)) {
    serde::Reader r(record);
    (void)store_locked(ComponentSnapshot::decode(r));
  }
}

std::optional<RestorePlan> ReplicaStore::restore(ComponentId component) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = plans_.find(component);
  if (it == plans_.end()) return std::nullopt;
  return it->second;
}

std::uint64_t ReplicaStore::latest_version(ComponentId component) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = plans_.find(component);
  if (it == plans_.end()) return 0;
  const RestorePlan& plan = it->second;
  return plan.deltas.empty() ? plan.base.version
                             : plan.deltas.back().version;
}

std::map<ComponentId, RestorePlan> ReplicaStore::export_plans() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return plans_;
}

void ReplicaStore::import_plan(ComponentId component, RestorePlan plan) {
  const std::lock_guard<std::mutex> lock(mutex_);
  plans_.insert_or_assign(component, std::move(plan));
}

std::uint64_t ReplicaStore::bytes_received() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return bytes_;
}

std::uint64_t ReplicaStore::snapshots_received() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return count_;
}

void ReplicaStore::clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  plans_.clear();
  bytes_ = 0;
  count_ = 0;
}

}  // namespace tart::checkpoint
