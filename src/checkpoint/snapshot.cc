#include "checkpoint/snapshot.h"

namespace tart::checkpoint {

void ComponentSnapshot::encode(serde::Writer& w) const {
  w.write_u32(component.value());
  w.write_varint(version);
  w.write_bool(is_delta);
  w.write_vt(vt);
  w.write_varint(messages_processed);
  w.write_varint(estimator_version);
  w.write_bytes(state);
  w.write_varint(inputs.size());
  for (const auto& in : inputs) {
    w.write_u32(in.wire.value());
    w.write_vt(in.horizon);
    w.write_varint(in.next_seq);
  }
  w.write_varint(outputs.size());
  for (const auto& out : outputs) {
    w.write_u32(out.wire.value());
    w.write_varint(out.next_seq);
    w.write_vt(out.silence_through);
    w.write_vt(out.last_sent);
    w.write_varint(out.retained.size());
    for (const auto& m : out.retained) m.encode(w);
    w.write_bytes(out.delay_state);
  }
}

ComponentSnapshot ComponentSnapshot::decode(serde::Reader& r) {
  ComponentSnapshot s;
  s.component = ComponentId(r.read_u32());
  s.version = r.read_varint();
  s.is_delta = r.read_bool();
  s.vt = r.read_vt();
  s.messages_processed = r.read_varint();
  s.estimator_version = r.read_varint();
  s.state = r.read_bytes();
  const auto nin = r.read_varint();
  s.inputs.reserve(nin);
  for (std::uint64_t i = 0; i < nin; ++i) {
    InputPosition in;
    in.wire = WireId(r.read_u32());
    in.horizon = r.read_vt();
    in.next_seq = r.read_varint();
    s.inputs.push_back(in);
  }
  const auto nout = r.read_varint();
  s.outputs.reserve(nout);
  for (std::uint64_t i = 0; i < nout; ++i) {
    OutputPosition out;
    out.wire = WireId(r.read_u32());
    out.next_seq = r.read_varint();
    out.silence_through = r.read_vt();
    out.last_sent = r.read_vt();
    const auto nret = r.read_varint();
    out.retained.reserve(nret);
    for (std::uint64_t j = 0; j < nret; ++j)
      out.retained.push_back(Message::decode(r));
    out.delay_state = r.read_bytes();
    s.outputs.push_back(std::move(out));
  }
  return s;
}

std::size_t ComponentSnapshot::encoded_size() const {
  serde::Writer w;
  encode(w);
  return w.size();
}

}  // namespace tart::checkpoint
