// Scalar state with change tracking — the checkpointed analogue of an
// "ordinary instance variable".
#pragma once

#include <utility>

#include "checkpoint/checkpointable.h"

namespace tart::checkpoint {

template <typename T>
class CheckpointedValue final : public Checkpointable {
 public:
  CheckpointedValue() = default;
  explicit CheckpointedValue(T initial) : value_(std::move(initial)) {}

  [[nodiscard]] const T& get() const { return value_; }

  void set(T value) {
    value_ = std::move(value);
    dirty_ = true;
  }

  /// Mutate through a callback; marks dirty.
  template <typename Fn>
  void mutate(Fn&& fn) {
    fn(value_);
    dirty_ = true;
  }

  [[nodiscard]] bool dirty() const { return dirty_; }

  void capture_full(serde::Writer& w) const override {
    serde::encode_value(w, value_);
  }

  void capture_delta(serde::Writer& w) override {
    w.write_bool(dirty_);
    if (dirty_) serde::encode_value(w, value_);
    dirty_ = false;
  }

  [[nodiscard]] bool supports_delta() const override { return true; }

  void restore_full(serde::Reader& r) override {
    serde::decode_value(r, value_);
    dirty_ = false;
  }

  void apply_delta(serde::Reader& r) override {
    if (r.read_bool()) serde::decode_value(r, value_);
  }

 private:
  T value_{};
  bool dirty_ = false;
};

/// Groups several Checkpointable members so a component can delegate its
/// capture/restore to one call. Order of registration defines the layout;
/// it must be identical on capture and restore (static structure, matching
/// the paper's static-wiring assumption).
class CheckpointGroup final : public Checkpointable {
 public:
  void add(Checkpointable& member) { members_.push_back(&member); }

  void capture_full(serde::Writer& w) const override {
    for (const auto* m : members_) m->capture_full(w);
  }
  void capture_delta(serde::Writer& w) override {
    for (auto* m : members_) m->capture_delta(w);
  }
  [[nodiscard]] bool supports_delta() const override {
    for (const auto* m : members_)
      if (!m->supports_delta()) return false;
    return true;
  }
  void restore_full(serde::Reader& r) override {
    for (auto* m : members_) m->restore_full(r);
  }
  void apply_delta(serde::Reader& r) override {
    for (auto* m : members_) m->apply_delta(r);
  }

 private:
  std::vector<Checkpointable*> members_;
};

}  // namespace tart::checkpoint
