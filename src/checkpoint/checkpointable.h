// State-capture interface that components implement.
//
// Per the paper (§II.F.2) component code is augmented so that "a method is
// provided to gather all full checkpoint state and all incremental changes
// and to return them to the scheduler". In this C++ reproduction the
// augmentation is manual: a component implements capture/restore directly,
// typically by delegating to checkpointed containers (CheckpointedMap,
// CheckpointedValue) for the incremental part.
#pragma once

#include "serde/archive.h"

namespace tart::checkpoint {

class Checkpointable {
 public:
  virtual ~Checkpointable() = default;

  /// Serializes the complete state.
  virtual void capture_full(serde::Writer& w) const = 0;

  /// Serializes only changes since the previous capture (full or delta) and
  /// resets the change tracking. Default: full capture (always correct,
  /// never smaller).
  virtual void capture_delta(serde::Writer& w) { capture_full(w); }

  /// True when the implementation produces genuine deltas; lets the
  /// checkpoint scheduler decide between full and incremental cycles.
  [[nodiscard]] virtual bool supports_delta() const { return false; }

  /// Restores from a full capture.
  virtual void restore_full(serde::Reader& r) = 0;

  /// Applies a delta on top of the current state. Default: treat the bytes
  /// as a full capture (matches the capture_delta default).
  virtual void apply_delta(serde::Reader& r) { restore_full(r); }
};

}  // namespace tart::checkpoint
