// Component snapshots: the unit shipped to a passive replica.
//
// A snapshot captures everything needed to resume a component
// deterministically from the checkpointed virtual time:
//   - the component's serialized state (full, or a delta over the previous
//     snapshot version);
//   - its current virtual time and processed-message count;
//   - per-input-wire positions (accounted horizon + next expected seq), so
//     recovery knows exactly which ticks to request for replay;
//   - per-output-wire send positions and the retained (not yet stable)
//     output messages, so this component can itself serve downstream replay
//     requests after a restore even if its peers also failed;
//   - the active estimator version, so virtual-time computation resumes
//     under exactly the coefficients in effect at the checkpoint
//     (determinism faults recorded after this version are re-applied from
//     the fault log during replay).
#pragma once

#include <cstdint>
#include <vector>

#include "common/ids.h"
#include "common/virtual_time.h"
#include "serde/archive.h"
#include "wire/message.h"

namespace tart::checkpoint {

struct InputPosition {
  WireId wire;
  VirtualTime horizon = VirtualTime(-1);  ///< ticks <= horizon accounted
  std::uint64_t next_seq = 0;
};

struct OutputPosition {
  WireId wire;
  std::uint64_t next_seq = 0;
  VirtualTime silence_through = VirtualTime(-1);
  VirtualTime last_sent = VirtualTime(-1);  ///< per-wire vt monotonicity floor
  std::vector<Message> retained;  ///< sent but not yet stable downstream
  std::vector<std::byte> delay_state;  ///< comm-delay estimator state
};

struct ComponentSnapshot {
  ComponentId component;
  std::uint64_t version = 0;  ///< monotonically increasing per component
  bool is_delta = false;      ///< delta applies on top of version-1
  VirtualTime vt = VirtualTime::zero();
  std::uint64_t messages_processed = 0;
  std::uint64_t estimator_version = 0;
  std::vector<std::byte> state;
  std::vector<InputPosition> inputs;
  std::vector<OutputPosition> outputs;

  void encode(serde::Writer& w) const;
  [[nodiscard]] static ComponentSnapshot decode(serde::Reader& r);

  /// Serialized size — what a soft checkpoint costs to ship (bench metric).
  [[nodiscard]] std::size_t encoded_size() const;
};

}  // namespace tart::checkpoint
