#!/usr/bin/env python3
"""Bench regression gate: compare fresh bench JSON against committed baselines.

Usage:
    scripts/bench_gate.py [--out-dir bench/out] [--baseline-dir bench/baselines]
                          [--tolerance-scale X] [--update-baselines]

check.sh --smoke writes BENCH_<name>.json files into bench/out/; this script
compares each against the matching committed file in bench/baselines/ with
per-metric tolerances and prints a delta table. Exit is nonzero when any
gated metric regresses past its tolerance, so the perf trajectory is a CI
artifact, not a loose file.

Metric direction and tolerance are inferred from the metric name:

  *_frames_s / *_req_s / *_mib_s / *speedup*   higher is better; gate on drop
  *_us / *_ms (latencies, RTO)                 lower is better; gate on growth
  covered / suffix                             exact workload counts; equal
  everything else                              informational only

Smoke runs on shared CI boxes are noisy, so the default tolerances are
deliberately wide (35% throughput drop, 75% latency growth); the gate exists
to catch step-change regressions (a lock on the hot path, an accidental
O(n^2)), not 2% drift. --tolerance-scale multiplies both bounds for even
noisier environments. After an intentional perf change, rerun check.sh
--smoke on the reference machine and pass --update-baselines to commit the
new numbers.
"""

import argparse
import json
import pathlib
import shutil
import sys

THROUGHPUT_TOLERANCE = 0.35  # allowed fractional drop for higher-is-better
LATENCY_TOLERANCE = 0.75     # allowed fractional growth for lower-is-better

EXACT_METRICS = {"covered", "suffix"}


def classify(name: str):
    """Return (direction, tolerance): 'higher'|'lower'|'exact'|'info'."""
    if name in EXACT_METRICS:
        return "exact", 0.0
    if name.endswith(("_frames_s", "_req_s", "_mib_s")) or "speedup" in name:
        return "higher", THROUGHPUT_TOLERANCE
    if name.endswith(("_us", "_ms")):
        return "lower", LATENCY_TOLERANCE
    return "info", 0.0


def load(path: pathlib.Path):
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)
    if "metrics" not in doc or not isinstance(doc["metrics"], dict):
        raise ValueError(f"{path}: no 'metrics' object")
    return doc


def compare_file(base_path: pathlib.Path, out_path: pathlib.Path, scale: float):
    base = load(base_path)["metrics"]
    fresh = load(out_path)["metrics"]
    rows = []
    failures = []
    for name in sorted(set(base) | set(fresh)):
        if name not in fresh:
            failures.append(f"{out_path.name}: metric '{name}' disappeared")
            rows.append((name, base[name], None, None, "MISSING"))
            continue
        if name not in base:
            rows.append((name, None, fresh[name], None, "new"))
            continue
        b, f = float(base[name]), float(fresh[name])
        delta = (f - b) / b if b != 0 else 0.0
        direction, tol = classify(name)
        tol *= scale
        status = "ok"
        if direction == "higher" and f < b * (1.0 - tol):
            status = "REGRESSED"
        elif direction == "lower" and f > b * (1.0 + tol):
            status = "REGRESSED"
        elif direction == "exact" and f != b:
            status = "CHANGED"
        elif direction == "info":
            status = "info"
        if status in ("REGRESSED", "CHANGED"):
            failures.append(
                f"{out_path.name}: {name} {b:g} -> {f:g} "
                f"({delta:+.1%}, {direction}, tol {tol:.0%})")
        rows.append((name, b, f, delta, status))
    return rows, failures


def print_table(title: str, rows):
    print(f"\n== {title} ==")
    print(f"{'metric':<28} {'baseline':>14} {'fresh':>14} {'delta':>9}  status")
    for name, b, f, delta, status in rows:
        bs = f"{b:g}" if b is not None else "-"
        fs = f"{f:g}" if f is not None else "-"
        ds = f"{delta:+.1%}" if delta is not None else "-"
        print(f"{name:<28} {bs:>14} {fs:>14} {ds:>9}  {status}")


def main():
    ap = argparse.ArgumentParser(description=__doc__,
                                 formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("--out-dir", default="bench/out",
                    help="directory with fresh BENCH_*.json (default bench/out)")
    ap.add_argument("--baseline-dir", default="bench/baselines",
                    help="directory with committed baselines")
    ap.add_argument("--tolerance-scale", type=float, default=1.0,
                    help="multiply all tolerances (noisy environments)")
    ap.add_argument("--update-baselines", action="store_true",
                    help="copy fresh results over the baselines instead of gating")
    args = ap.parse_args()

    out_dir = pathlib.Path(args.out_dir)
    base_dir = pathlib.Path(args.baseline_dir)
    fresh_files = sorted(out_dir.glob("BENCH_*.json"))
    if not fresh_files:
        print(f"bench_gate: no BENCH_*.json in {out_dir}", file=sys.stderr)
        return 2

    if args.update_baselines:
        base_dir.mkdir(parents=True, exist_ok=True)
        for f in fresh_files:
            shutil.copy2(f, base_dir / f.name)
            print(f"bench_gate: baseline updated: {base_dir / f.name}")
        return 0

    all_failures = []
    compared = 0
    for out_path in fresh_files:
        base_path = base_dir / out_path.name
        if not base_path.exists():
            print(f"bench_gate: no baseline for {out_path.name} "
                  f"(run with --update-baselines to create)", file=sys.stderr)
            all_failures.append(f"{out_path.name}: baseline missing")
            continue
        try:
            rows, failures = compare_file(base_path, out_path,
                                          args.tolerance_scale)
        except (ValueError, json.JSONDecodeError) as e:
            all_failures.append(str(e))
            continue
        print_table(out_path.name, rows)
        all_failures.extend(failures)
        compared += 1

    print()
    if all_failures:
        for f in all_failures:
            print(f"bench_gate: FAIL: {f}", file=sys.stderr)
        return 1
    print(f"bench_gate: OK ({compared} file(s) within tolerance)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
