#!/usr/bin/env bash
# Tier-1 gate: plain build + full ctest, then the same suite under
# AddressSanitizer. Usage: scripts/check.sh [--no-asan] [--smoke]
#
# --smoke additionally runs the bench smokes with --json, collects the
# machine-readable results in bench/out/ (gitignored), and gates them
# against the committed baselines in bench/baselines/ via
# scripts/bench_gate.py — a >tolerance regression fails the run. After an
# intentional perf change: scripts/bench_gate.py --update-baselines.
set -euo pipefail
cd "$(dirname "$0")/.."

run_asan=1
smoke_json=0
for arg in "$@"; do
  case "$arg" in
    --no-asan) run_asan=0 ;;
    --smoke) smoke_json=1 ;;
    *) echo "usage: scripts/check.sh [--no-asan] [--smoke]" >&2; exit 2 ;;
  esac
done

echo "== tier-1: build + ctest =="
cmake -B build -S . >/dev/null
cmake --build build -j"$(nproc)"
ctest --test-dir build --output-on-failure -j"$(nproc)"

echo "== gateway bench smoke =="
if [[ "$smoke_json" == 1 ]]; then
  mkdir -p bench/out
  ./build/bench/bench_gateway --smoke --json=bench/out/BENCH_gateway.json
else
  ./build/bench/bench_gateway --smoke
fi

# Recovery smoke: SIGKILL a checkpointed ingester, restart it, and assert
# the restart actually boots from the checkpoint and replays only the log
# suffix (docs/RECOVERY.md).
echo "== recovery bench smoke =="
if [[ "$smoke_json" == 1 ]]; then
  ./build/bench/bench_recovery --smoke --json=bench/out/BENCH_recovery.json
else
  ./build/bench/bench_recovery --smoke
fi

# Transport smoke (only when collecting artifacts: it is the slowest of
# the smokes and adds no assertion coverage beyond running clean).
if [[ "$smoke_json" == 1 ]]; then
  echo "== net bench smoke =="
  ./build/bench/bench_net --smoke --json=bench/out/BENCH_net.json
  echo "collected: bench/out/BENCH_{gateway,recovery,net}.json"
  echo "== bench regression gate =="
  # TART_BENCH_GATE_SCALE widens the tolerances on noisy machines (CI
  # sets 2); the reference machine runs at 1.
  python3 scripts/bench_gate.py \
    --tolerance-scale "${TART_BENCH_GATE_SCALE:-1}"
fi

# Migration smoke: one live round trip of a stateful component between
# engines over loopback, asserting completion, a bounded blackout, and an
# advancing placement epoch (docs/PLACEMENT.md).
echo "== migration bench smoke =="
./build/bench/bench_migration --smoke

# Exposition lint: the Prometheus-conventions linter (obs::lint_exposition)
# must pass both on synthetic pages (obs_test) and against a real gateway
# scrape (gateway_test's MetricsAndHealthz). Run them by name so a filter
# change in the suites can't silently drop the gate.
echo "== exposition lint =="
./build/tests/obs_test \
  --gtest_filter='ExpositionLint.*:Exposition.*:Exemplars.*' --gtest_brief=1
./build/tests/gateway_test \
  --gtest_filter='*MetricsAndHealthz*:*StatusReportsSilenceWavefront*' \
  --gtest_brief=1

if [[ "$run_asan" == 1 ]]; then
  echo "== tier-1 under AddressSanitizer =="
  cmake -B build-asan -S . -DTART_SANITIZE=address >/dev/null
  cmake --build build-asan -j"$(nproc)"
  ctest --test-dir build-asan --output-on-failure -j"$(nproc)"
  # The HTTP parser fuzz tests (gateway_test) run again here under ASan —
  # that is the memory-safety net for the byte-mutation corpus.
  echo "== gateway bench smoke (ASan) =="
  ./build-asan/bench/bench_gateway --smoke
fi

echo "OK"
