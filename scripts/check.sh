#!/usr/bin/env bash
# Tier-1 gate: plain build + full ctest, then the same suite under
# AddressSanitizer. Usage: scripts/check.sh [--no-asan]
set -euo pipefail
cd "$(dirname "$0")/.."

run_asan=1
[[ "${1:-}" == "--no-asan" ]] && run_asan=0

echo "== tier-1: build + ctest =="
cmake -B build -S . >/dev/null
cmake --build build -j"$(nproc)"
ctest --test-dir build --output-on-failure -j"$(nproc)"

echo "== gateway bench smoke =="
./build/bench/bench_gateway --smoke

if [[ "$run_asan" == 1 ]]; then
  echo "== tier-1 under AddressSanitizer =="
  cmake -B build-asan -S . -DTART_SANITIZE=address >/dev/null
  cmake --build build-asan -j"$(nproc)"
  ctest --test-dir build-asan --output-on-failure -j"$(nproc)"
  # The HTTP parser fuzz tests (gateway_test) run again here under ASan —
  # that is the memory-safety net for the byte-mutation corpus.
  echo "== gateway bench smoke (ASan) =="
  ./build-asan/bench/bench_gateway --smoke
fi

echo "OK"
