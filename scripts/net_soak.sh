#!/usr/bin/env bash
# Multi-process soak: repeatedly runs the two-process deployment test
# (real tart-node processes over loopback TCP, SIGKILL + restart included)
# to shake out timing-dependent bugs in the socket transport and the
# recovery path. A live-migration phase moves a stateful component
# between engines mid-traffic over HTTP and asserts checkpoint-bounded
# retention stays flat (docs/PLACEMENT.md). Each run also boots a live
# two-node deployment and
# scrapes /metrics + /status from both gateways mid-run with
# `tart-obs --scrape` (lint-clean exposition, stall-attribution series
# present, parsable wavefront JSON), aggregates both control ports
# once with `tart-obs --once`, renders the live profiler view with
# `tart-obs top --once`, and gates `GET /profile` on both nodes (span
# profiler snapshot present and self-consistent — loop span time <=
# wall time, saturation in [0,1]). Both nodes record flight-recorder traces;
# after shutdown, `tart-trace explain --json` over the pair must find
# >=1 stall episode with >=90% of stall time attributed, and
# `tart-trace lineage --json` must reconstruct complete causal DAGs for
# >=95% of the acked inputs (request-lineage gate, docs/TRACING.md).
# Usage: scripts/net_soak.sh [iterations]   (default 20)
set -euo pipefail
cd "$(dirname "$0")/.."

iters="${1:-20}"

cmake -B build -S . >/dev/null
cmake --build build -j"$(nproc)" --target net_process_test net_loop_test \
  gateway_process_test tart-node tart-trace tart-gateway tart-obs

wait_healthy() {
  local addr="$1"
  for _ in $(seq 1 100); do
    if curl -fsS "http://$addr/healthz" >/dev/null 2>&1; then return 0; fi
    sleep 0.1
  done
  echo "ERROR: node at $addr never became healthy" >&2
  return 1
}

# Live telemetry scrape against a real two-node deployment. Traffic is
# still flowing when tart-obs runs — this is the "scrape a busy cluster"
# path, not a quiesced snapshot.
scrape_phase() {
  echo "== live two-node telemetry scrape =="
  local dir
  dir="$(mktemp -d)"
  local ports=()
  local i
  for i in 1 2 3 4 5 6; do ports+=("$((20000 + RANDOM % 30000))"); done
  local left_ctl="127.0.0.1:${ports[1]}" right_ctl="127.0.0.1:${ports[3]}"
  local left_http="127.0.0.1:${ports[4]}" right_http="127.0.0.1:${ports[5]}"
  cat > "$dir/deploy.conf" <<EOF
topology = wordcount
param senders = 2
partition left = 127.0.0.1:${ports[0]}
control left = $left_ctl
partition right = 127.0.0.1:${ports[2]}
control right = $right_ctl
place sender1 = left
place sender2 = left
place merger = right
EOF
  mkdir -p "$dir/left" "$dir/right"
  ./build/src/tools/tart-node "$dir/deploy.conf" left \
    --http="$left_http" --log-dir="$dir/left" --trace="$dir/left.trc" \
    --sample="$dir/left.jsonl" --sample-interval-ms=100 \
    > "$dir/left.out" 2>&1 &
  local left_pid=$!
  ./build/src/tools/tart-node "$dir/deploy.conf" right \
    --http="$right_http" --log-dir="$dir/right" --trace="$dir/right.trc" \
    > "$dir/right.out" 2>&1 &
  local right_pid=$!
  # shellcheck disable=SC2064
  trap "kill $left_pid $right_pid 2>/dev/null || true; rm -rf '$dir'" RETURN

  wait_healthy "$left_http"
  wait_healthy "$right_http"

  # Keep traffic flowing in the background while the scrape happens.
  (
    for i in $(seq 1 200); do
      curl -fsS -X POST --data "word$((i % 7))" \
        -H 'Content-Type: text/plain' \
        "http://$left_http/inject/sender$(((i % 2) + 1))" >/dev/null || true
    done
  ) &
  local feeder_pid=$!

  # Mid-run: both gateways must serve a lint-clean Prometheus page with
  # the per-wire stall-attribution family, and a parsable /status page.
  ./build/src/tools/tart-obs --scrape "$left_http" "$right_http"
  # Both control ports aggregated into one cluster table.
  ./build/src/tools/tart-obs --once "$left_ctl" "$right_ctl"

  wait "$feeder_pid" || true

  # Live per-node profiler view over the same control ports. This runs
  # after the feeder so both nodes are past their first gauge sweep (the
  # sweep is what harvests the profiler into the kGetObs registry).
  ./build/src/tools/tart-obs top --once "$left_ctl" "$right_ctl"

  # Profile gate (docs/OBSERVABILITY.md "Hot-path profiling"): both live
  # nodes must serve the span-profiler snapshot on GET /profile, with the
  # event-loop spans present, the saturation gauge in [0,1], and totals
  # that are self-consistent — recorded span time cannot exceed the wall
  # time available to the profiled threads. The JSON is passed via argv
  # (not a pipe) because the heredoc already owns python's stdin.
  echo "== hot-path profile gate =="
  local addr profile_json
  for addr in "$left_http" "$right_http"; do
    profile_json="$(curl -fsS "http://$addr/profile")"
    python3 - "$addr" "$profile_json" <<'PY'
import json, sys
addr = sys.argv[1]
doc = json.loads(sys.argv[2])
assert doc["enabled"] in (True, False), "bad 'enabled' flag"
assert doc["uptime_ns"] > 0, "uptime_ns not positive"
sat = doc["loop"]["saturation"]
assert 0.0 <= sat <= 1.0, f"saturation {sat} out of [0,1]"
spans = {s["name"]: s for s in doc["spans"]}
if doc["enabled"]:
    for want in ("loop.poll_wait", "loop.dispatch"):
        assert want in spans, f"span '{want}' missing from /profile"
for s in doc["spans"]:
    assert s["count"] >= 0 and s["total_ns"] >= 0, f"negative span {s}"
    if s["count"] > 0:
        assert s["total_ns"] >= s["max_ns"], f"total < max in {s}"
# Self-consistency: the loop-phase spans are disjoint slices of each
# event-loop thread's wall time, so their combined total (total dispatch
# time) cannot exceed uptime x profiled-thread-count. Nested spans
# (net.decode inside loop.dispatch) legitimately double-count, so only
# the disjoint top-level set is summed.
wall = doc["uptime_ns"] * max(doc["threads"], 1)
loop_phases = ("loop.poll_wait", "loop.dispatch", "loop.posted",
               "loop.timers")
dispatch_ns = sum(spans[n]["total_ns"] for n in loop_phases if n in spans)
assert dispatch_ns <= wall, \
    f"loop span time {dispatch_ns}ns > wall {wall}ns"
loop_ns = doc["loop"]["busy_ns"] + doc["loop"]["idle_ns"]
assert loop_ns <= wall, f"loop busy+idle {loop_ns}ns > wall {wall}ns"
print(f"profile {addr}: enabled={doc['enabled']} "
      f"saturation={sat:.3f} spans={len(spans)}")
PY
  done
  curl -fsS -X POST "http://$left_http/drain" >/dev/null
  curl -fsS -X POST "http://$right_http/drain" >/dev/null
  # Post-drain scrape: the counters page must still lint clean once the
  # pessimism/stall series carry real observations.
  ./build/src/tools/tart-obs --scrape "$left_http" "$right_http"
  [[ -s "$dir/left.jsonl" ]] || {
    echo "ERROR: --sample produced no JSONL on the left node" >&2
    return 1
  }

  curl -fsS -X POST "http://$left_http/shutdown" >/dev/null || true
  curl -fsS -X POST "http://$right_http/shutdown" >/dev/null || true
  wait "$left_pid" "$right_pid" 2>/dev/null || true

  # Forensics gate: the two nodes' traces (written at shutdown) must join
  # into a report where real stall episodes exist and nearly all recorded
  # stall time is attributed to a (blocking wire, sender) pair.
  echo "== stall forensics gate =="
  local explain_json episodes frac
  explain_json="$(./build/src/tools/tart-trace explain --json \
    "$dir/left.trc" "$dir/right.trc")"
  episodes="$(sed -n 's/.*"episodes":\([0-9]*\).*/\1/p' <<<"$explain_json")"
  frac="$(sed -n 's/.*"attributed_fraction":\([0-9.]*\).*/\1/p' \
    <<<"$explain_json")"
  echo "forensics: episodes=$episodes attributed_fraction=$frac"
  [[ -n "$episodes" && "$episodes" -ge 1 ]] || {
    echo "ERROR: explain found no stall episodes in the soak traces" >&2
    return 1
  }
  awk -v f="$frac" 'BEGIN { exit (f >= 0.9) ? 0 : 1 }' || {
    echo "ERROR: attributed_fraction $frac < 0.9" >&2
    return 1
  }

  # Request-lineage gate (docs/TRACING.md "Request lineage"): joining the
  # two nodes' traces must reconstruct a complete causal DAG for >=95% of
  # the inputs the gateway acked — the edge stamps, the per-hop records,
  # and the cross-node (wire, seq) joins all have to line up.
  echo "== request lineage gate =="
  local lineage_json acked resolved_frac
  lineage_json="$(./build/src/tools/tart-trace lineage --json \
    "$dir/left.trc" "$dir/right.trc")"
  # At least one digit required: per-input "acked":true/false booleans in
  # the inputs array must not shadow the top-level count.
  acked="$(sed -n 's/.*"acked":\([0-9][0-9]*\),.*/\1/p' <<<"$lineage_json")"
  resolved_frac="$(sed -n 's/.*"resolved_fraction":\([0-9.]*\).*/\1/p' \
    <<<"$lineage_json")"
  echo "lineage: acked=$acked resolved_fraction=$resolved_frac"
  [[ -n "$acked" && "$acked" -ge 1 ]] || {
    echo "ERROR: lineage found no acked inputs in the soak traces" >&2
    return 1
  }
  awk -v f="$resolved_frac" 'BEGIN { exit (f >= 0.95) ? 0 : 1 }' || {
    echo "ERROR: resolved_fraction $resolved_frac < 0.95" >&2
    return 1
  }

  trap - RETURN
  rm -rf "$dir"
  echo "== live scrape clean =="
}

# Durable checkpoint + tiered-restart phase: a durable left node ingests,
# checkpoints on demand (POST /checkpoint), is SIGKILLed, and must come
# back through the fast path — the restart metrics have to show a
# checkpoint-covered prefix that was NOT replayed (docs/RECOVERY.md).
checkpoint_phase() {
  echo "== durable checkpoint + tiered restart =="
  local dir
  dir="$(mktemp -d)"
  local ports=()
  local i
  for i in 1 2 3 4 5 6; do ports+=("$((20000 + RANDOM % 30000))"); done
  local left_http="127.0.0.1:${ports[4]}" right_http="127.0.0.1:${ports[5]}"
  cat > "$dir/deploy.conf" <<EOF
topology = wordcount
param senders = 2
partition left = 127.0.0.1:${ports[0]}
control left = 127.0.0.1:${ports[1]}
partition right = 127.0.0.1:${ports[2]}
control right = 127.0.0.1:${ports[3]}
place sender1 = left
place sender2 = left
place merger = right
EOF
  mkdir -p "$dir/left"
  local durable_flags=(--log-dir="$dir/left" --durable --segment-bytes=1024)
  ./build/src/tools/tart-node "$dir/deploy.conf" left \
    --http="$left_http" "${durable_flags[@]}" > "$dir/left.out" 2>&1 &
  local left_pid=$!
  ./build/src/tools/tart-node "$dir/deploy.conf" right \
    --http="$right_http" > "$dir/right.out" 2>&1 &
  local right_pid=$!
  # shellcheck disable=SC2064
  trap "kill $left_pid $right_pid 2>/dev/null || true; rm -rf '$dir'" RETURN

  wait_healthy "$left_http"
  wait_healthy "$right_http"

  for i in $(seq 1 60); do
    curl -fsS -X POST --data "ckpt$((i % 5))" -H 'Content-Type: text/plain' \
      "http://$left_http/inject/sender$(((i % 2) + 1))" >/dev/null
  done
  local ck
  ck="$(curl -fsS -X POST "http://$left_http/checkpoint")"
  echo "checkpoint: $ck"
  grep -q '"ok":true' <<<"$ck" || {
    echo "ERROR: on-demand checkpoint failed: $ck" >&2
    return 1
  }

  # A post-checkpoint suffix, then the crash.
  for i in $(seq 61 80); do
    curl -fsS -X POST --data "ckpt$((i % 5))" -H 'Content-Type: text/plain' \
      "http://$left_http/inject/sender$(((i % 2) + 1))" >/dev/null
  done
  kill -9 "$left_pid"
  wait "$left_pid" 2>/dev/null || true

  ./build/src/tools/tart-node "$dir/deploy.conf" left \
    --http="$left_http" "${durable_flags[@]}" > "$dir/left2.out" 2>&1 &
  left_pid=$!
  # shellcheck disable=SC2064
  trap "kill $left_pid $right_pid 2>/dev/null || true; rm -rf '$dir'" RETURN
  wait_healthy "$left_http"

  local covered
  covered="$(curl -fsS "http://$left_http/metrics" \
    | awk '/^tart_restart_covered_records/ {print int($2)}')"
  echo "restart: covered_records=$covered"
  [[ -n "$covered" && "$covered" -gt 0 ]] || {
    echo "ERROR: restart did not boot from the durable checkpoint" >&2
    return 1
  }

  # The restarted node keeps accepting and checkpointing.
  curl -fsS -X POST --data "after" -H 'Content-Type: text/plain' \
    "http://$left_http/inject/sender1" >/dev/null
  ck="$(curl -fsS -X POST "http://$left_http/checkpoint")"
  grep -q '"ok":true' <<<"$ck" || {
    echo "ERROR: post-restart checkpoint failed: $ck" >&2
    return 1
  }
  curl -fsS -X POST "http://$left_http/drain" >/dev/null
  curl -fsS -X POST "http://$right_http/drain" >/dev/null

  curl -fsS -X POST "http://$left_http/shutdown" >/dev/null || true
  curl -fsS -X POST "http://$right_http/shutdown" >/dev/null || true
  wait "$left_pid" "$right_pid" 2>/dev/null || true
  trap - RETURN
  rm -rf "$dir"
  echo "== checkpoint restart clean =="
}

# Retained-message sum across all components on one node, from /metrics.
# Empty (no gauge sweep yet) prints -1 so callers can poll.
retained_sum() {
  local addr="$1"
  curl -fsS "http://$addr/metrics" | awk '
    /^tart_component_retained_messages\{/ { sum += $2; seen = 1 }
    END { print seen ? sum : -1 }'
}

# Messages dispatched to handlers on one node. /drain is off-limits in the
# migration phase (draining closes external inputs for good, and the closed
# flag would ride the slice to the target), so quiescence is observed via
# this counter instead.
processed_total() {
  local addr="$1"
  curl -fsS "http://$addr/metrics" \
    | awk '/^tart_messages_processed_total/ {print int($2)}'
}

wait_processed() {
  local addr="$1" want="$2" got=0
  local i
  for i in $(seq 1 100); do
    got="$(processed_total "$addr")"
    [[ -n "$got" && "$got" -ge "$want" ]] && return 0
    sleep 0.1
  done
  echo "ERROR: node $addr processed $got messages, wanted >= $want" >&2
  return 1
}

# Elastic-placement phase (docs/PLACEMENT.md): three nodes, live traffic.
#   1. Checkpoint-bounded retention: the durable consumer checkpoints, the
#      kCoverUpdate broadcast must trim the senders' output retention to
#      zero — the memory-flatness guarantee.
#   2. Live migration over HTTP: POST /migrate moves sender2 left->mid
#      while a feeder keeps injecting; post-move injects to the old home
#      must 307-redirect to the new one, and a second consumer checkpoint
#      must bound retention at the component's NEW home.
migration_phase() {
  echo "== live migration + checkpoint-bounded retention =="
  local dir
  dir="$(mktemp -d)"
  local ports=()
  local i
  for i in $(seq 0 8); do ports+=("$((20000 + RANDOM % 30000))"); done
  local left_http="127.0.0.1:${ports[6]}" mid_http="127.0.0.1:${ports[7]}"
  local right_http="127.0.0.1:${ports[8]}"
  cat > "$dir/deploy.conf" <<EOF
topology = wordcount
param senders = 2
partition left = 127.0.0.1:${ports[0]}
control left = 127.0.0.1:${ports[1]}
partition mid = 127.0.0.1:${ports[2]}
control mid = 127.0.0.1:${ports[3]}
partition right = 127.0.0.1:${ports[4]}
control right = 127.0.0.1:${ports[5]}
http left = $left_http
http mid = $mid_http
http right = $right_http
place sender1 = left
place sender2 = left
place merger = right
EOF
  mkdir -p "$dir/left" "$dir/mid" "$dir/right"
  ./build/src/tools/tart-node "$dir/deploy.conf" left \
    --http="$left_http" --log-dir="$dir/left" > "$dir/left.out" 2>&1 &
  local left_pid=$!
  ./build/src/tools/tart-node "$dir/deploy.conf" mid \
    --http="$mid_http" --log-dir="$dir/mid" > "$dir/mid.out" 2>&1 &
  local mid_pid=$!
  ./build/src/tools/tart-node "$dir/deploy.conf" right \
    --http="$right_http" --log-dir="$dir/right" --durable \
    > "$dir/right.out" 2>&1 &
  local right_pid=$!
  # shellcheck disable=SC2064
  trap "kill $left_pid $mid_pid $right_pid 2>/dev/null || true; rm -rf '$dir'" \
    RETURN

  wait_healthy "$left_http"
  wait_healthy "$mid_http"
  wait_healthy "$right_http"

  for i in $(seq 1 80); do
    curl -fsS -X POST --data "mig$((i % 9))" -H 'Content-Type: text/plain' \
      "http://$left_http/inject/sender$(((i % 2) + 1))" >/dev/null
  done
  wait_processed "$right_http" 80

  # Memory-flatness gate #1: the senders hold retained output until the
  # durable consumer's checkpoint cover arrives, then drop to zero.
  local ck
  ck="$(curl -fsS -X POST "http://$right_http/checkpoint")"
  grep -q '"ok":true' <<<"$ck" || {
    echo "ERROR: consumer checkpoint failed: $ck" >&2
    return 1
  }
  local retained=-1
  for i in $(seq 1 100); do
    retained="$(retained_sum "$left_http")"
    [[ "$retained" == "0" ]] && break
    sleep 0.1
  done
  echo "retention after consumer checkpoint: left=$retained"
  [[ "$retained" == "0" ]] || {
    echo "ERROR: sender retention not trimmed by kCoverUpdate" >&2
    return 1
  }

  # Live migration while traffic flows: sender2 moves left -> mid.
  (
    for i in $(seq 1 60); do
      curl -fsS -X POST --data "bg$((i % 5))" -H 'Content-Type: text/plain' \
        "http://$left_http/inject/sender1" >/dev/null || true
    done
  ) &
  local feeder_pid=$!
  local mig
  mig="$(curl -fsS -X POST \
    "http://$left_http/migrate?component=sender2&to=mid")"
  echo "migrate: $mig"
  grep -q '"ok":true' <<<"$mig" || {
    echo "ERROR: live migration failed: $mig" >&2
    return 1
  }
  wait "$feeder_pid" || true

  # The old home redirects: -L follows the 307 (method+body preserved) to
  # mid, which now owns sender2.
  for i in $(seq 1 20); do
    curl -fsS -L -X POST --data "post$((i % 3))" \
      -H 'Content-Type: text/plain' \
      "http://$left_http/inject/sender2" >/dev/null
  done
  wait_processed "$right_http" 160

  local completed adopted
  completed="$(curl -fsS "http://$left_http/metrics" \
    | awk '/^tart_mig_completed_total/ {print int($2)}')"
  adopted="$(curl -fsS "http://$mid_http/metrics" \
    | awk '/^tart_mig_adopted_total/ {print int($2)}')"
  echo "migration: completed=$completed adopted=$adopted"
  [[ -n "$completed" && "$completed" -ge 1 ]] || {
    echo "ERROR: source never counted the migration as completed" >&2
    return 1
  }
  [[ -n "$adopted" && "$adopted" -ge 1 ]] || {
    echo "ERROR: target never adopted the migrated component" >&2
    return 1
  }

  # Memory-flatness gate #2: the cover bound must follow the component to
  # its new home — mid's retention for sender2 trims on the next consumer
  # checkpoint, so migrated components cannot leak retained output.
  ck="$(curl -fsS -X POST "http://$right_http/checkpoint")"
  grep -q '"ok":true' <<<"$ck" || {
    echo "ERROR: second consumer checkpoint failed: $ck" >&2
    return 1
  }
  retained=-1
  for i in $(seq 1 100); do
    retained="$(retained_sum "$mid_http")"
    [[ "$retained" == "0" ]] && break
    sleep 0.1
  done
  echo "retention at the new home after checkpoint: mid=$retained"
  [[ "$retained" == "0" ]] || {
    echo "ERROR: migrated component's retention not trimmed at new home" >&2
    return 1
  }

  # SIGKILL the new owner. Its adoption is journaled, so the restarted
  # node must come back owning sender2 (boot re-adopt) and keep serving
  # redirected injects — the functional proof of single ownership.
  kill -9 "$mid_pid"
  wait "$mid_pid" 2>/dev/null || true
  ./build/src/tools/tart-node "$dir/deploy.conf" mid \
    --http="$mid_http" --log-dir="$dir/mid" > "$dir/mid2.out" 2>&1 &
  mid_pid=$!
  # shellcheck disable=SC2064
  trap "kill $left_pid $mid_pid $right_pid 2>/dev/null || true; rm -rf '$dir'" \
    RETURN
  wait_healthy "$mid_http"
  for i in $(seq 1 10); do
    curl -fsS -L -X POST --data "rez$((i % 3))" \
      -H 'Content-Type: text/plain' \
      "http://$left_http/inject/sender2" >/dev/null
  done
  wait_processed "$right_http" 170
  echo "new owner survived SIGKILL and kept serving sender2"

  curl -fsS -X POST "http://$left_http/shutdown" >/dev/null || true
  curl -fsS -X POST "http://$mid_http/shutdown" >/dev/null || true
  curl -fsS -X POST "http://$right_http/shutdown" >/dev/null || true
  wait "$left_pid" "$mid_pid" "$right_pid" 2>/dev/null || true
  trap - RETURN
  rm -rf "$dir"
  echo "== migration + retention clean =="
}

scrape_phase
checkpoint_phase
migration_phase

for i in $(seq 1 "$iters"); do
  echo "== soak iteration $i/$iters =="
  ./build/tests/net_loop_test --gtest_brief=1
  ./build/tests/net_process_test --gtest_brief=1
  ./build/tests/gateway_process_test --gtest_brief=1
done

echo "OK: $iters iterations clean"
