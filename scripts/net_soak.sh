#!/usr/bin/env bash
# Multi-process soak: repeatedly runs the two-process deployment test
# (real tart-node processes over loopback TCP, SIGKILL + restart included)
# to shake out timing-dependent bugs in the socket transport and the
# recovery path. Usage: scripts/net_soak.sh [iterations]   (default 20)
set -euo pipefail
cd "$(dirname "$0")/.."

iters="${1:-20}"

cmake -B build -S . >/dev/null
cmake --build build -j"$(nproc)" --target net_process_test net_loop_test \
  gateway_process_test tart-node tart-trace tart-gateway

for i in $(seq 1 "$iters"); do
  echo "== soak iteration $i/$iters =="
  ./build/tests/net_loop_test --gtest_brief=1
  ./build/tests/net_process_test --gtest_brief=1
  ./build/tests/gateway_process_test --gtest_brief=1
done

echo "OK: $iters iterations clean"
