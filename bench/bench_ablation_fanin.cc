// Ablation C — fan-in scaling of pessimism (§IV: "If fan-in is high ...
// we conjecture that curiosity-based silence propagation will have to be
// augmented with other approaches").
//
// Scales the number of senders feeding the merger from 2 to 32, thinning
// each sender's arrival rate to hold the merger at ~80% utilization, so
// the growth in probing and pessimism isolates the coordination cost of
// the deterministic merge (each dequeue needs silence from every other
// wire).
#include <cstdio>

#include "exp_util.h"
#include "sim/tart_sim.h"

int main() {
  tart::bench::banner("Ablation C: pessimism vs fan-in",
                      "S IV conjecture (high fan-in needs more aggressive "
                      "silence propagation)");

  tart::bench::Table table({"senders", "non-det (us)", "det (us)", "det ovh",
                            "probes/msg", "pessimism (us/msg)",
                            "out-of-order"});

  for (const int n : {2, 4, 8, 16, 32}) {
    tart::sim::SimConfig cfg;
    cfg.duration_us = 30e6;
    cfg.seed = 23;
    cfg.num_senders = n;
    cfg.arrival_mean_us = 500.0 * n;  // merger utilization held at ~80%

    cfg.mode = tart::sim::SimMode::kNonDeterministic;
    const auto nd = run_simulation(cfg);
    cfg.mode = tart::sim::SimMode::kDeterministic;
    const auto det = run_simulation(cfg);

    const double msgs = static_cast<double>(
        std::max<std::uint64_t>(det.completed, 1));
    table.row({
        tart::bench::fmt("%d", n),
        tart::bench::fmt("%.0f", nd.avg_latency_us),
        tart::bench::fmt("%.0f", det.avg_latency_us),
        tart::bench::fmt("%+.1f%%", 100.0 *
                                        (det.avg_latency_us -
                                         nd.avg_latency_us) /
                                        nd.avg_latency_us),
        tart::bench::fmt("%.2f", static_cast<double>(det.probes) / msgs),
        tart::bench::fmt("%.1f", det.pessimism_wait_us / msgs),
        tart::bench::fmt("%llu",
                         static_cast<unsigned long long>(det.out_of_order)),
    });
  }
  table.print();
  std::printf(
      "\nExpected shape: determinism overhead and probes per message grow\n"
      "with fan-in at fixed utilization — the receiver must collect\n"
      "silence from every input wire before each dequeue.\n");
  return 0;
}
