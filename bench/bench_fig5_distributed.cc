// Figure 5 — "Performance of a real two-machine distributed
// implementation."
//
// Unlike Figures 3/4 this is NOT a simulation: it runs the actual TART
// runtime (threads, frames, serialization, simulated physical links with
// real delays standing in for the paper's two machines — see DESIGN.md
// substitutions). A variation of the Figure-1 application with
// constant-time services and ad-hoc (constant) estimators: senders on
// engine 0, the merger on engine 1. Three configurations are compared
// over ~2800 web requests:
//
//   non-deterministic            — arrival-order scheduling,
//   deterministic, lazy silence  — silence implied by data only,
//   deterministic, curiosity     — probes chase silence during delays.
//
// Paper's findings to reproduce: lazy silence suffers large latencies
// (pessimism delays only resolve on the next unrelated message), while
// curiosity-based propagation stays under ~20% over non-deterministic.
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "apps/wordcount.h"
#include "core/runtime.h"
#include "estimator/comm_delay.h"
#include "estimator/estimator.h"
#include "exp_util.h"
#include "stats/online_stats.h"
#include "trace/forensics.h"
#include "trace/trace_file.h"

namespace {

using namespace std::chrono_literals;
using tart::EngineId;
using tart::PortId;
using tart::core::RuntimeConfig;
using tart::core::SchedulingMode;
using tart::core::Topology;

constexpr int kRequestsPerSender = 1400;  // ~2800 total, as in Figure 5
// Constant-time services: the service duration is slept, not spun, so the
// benchmark measures scheduling/silence effects rather than CPU contention
// (this harness typically runs on far fewer cores than the paper's two
// machines provided).
constexpr std::int64_t kSenderSpinNs = 800'000;
constexpr std::int64_t kMergerSpinNs = 500'000;
constexpr auto kInterArrival = 1500us;  // per sender; merger ~67% utilized

struct RunOutcome {
  std::vector<double> latencies_us;  // in completion order
  double avg = 0, p95 = 0;
  std::uint64_t probes = 0;
  double pessimism_ms = 0;
  // Per-episode stall distribution at the merger, read back from the
  // telemetry registry (all input wires merged) — the distributional view
  // behind the pessimism_ms total.
  std::uint64_t stall_episodes = 0;
  double stall_p50_us = 0, stall_p99_us = 0, stall_max_us = 0;
  // Stall blame rollup from the run's flight recording (trace::analyze):
  // which upstream wire each pessimism episode waited on, and how much of
  // the wait was the sender's estimator vs promise propagation.
  struct BlameRow {
    std::string receiver, wire, sender;
    std::uint64_t episodes = 0;
    double stall_ms = 0, est_pct = 0;
  };
  std::vector<BlameRow> blame;
  double attributed_pct = 100.0;
};

RunOutcome run_config(SchedulingMode mode, bool curiosity,
                      const std::string& tag) {
  Topology topo;
  const auto s1 = topo.add("sender1", [] {
    return std::make_unique<tart::apps::SpinService>(kSenderSpinNs,
                                                     /*spin=*/false);
  });
  const auto s2 = topo.add("sender2", [] {
    return std::make_unique<tart::apps::SpinService>(kSenderSpinNs,
                                                     /*spin=*/false);
  });
  const auto merger = topo.add("merger", [] {
    return std::make_unique<tart::apps::SpinService>(kMergerSpinNs,
                                                     /*spin=*/false);
  });
  // Ad-hoc constant estimators roughly matching the spin times.
  for (const auto c : {s1, s2}) {
    topo.set_estimator(c, [] {
      return std::make_unique<tart::estimator::ConstantEstimator>(
          tart::TickDuration(kSenderSpinNs));
    });
  }
  topo.set_estimator(merger, [] {
    return std::make_unique<tart::estimator::ConstantEstimator>(
        tart::TickDuration(kMergerSpinNs));
  });

  const auto in1 = topo.external_input(s1, PortId(0));
  const auto in2 = topo.external_input(s2, PortId(0));
  const auto w1 = topo.connect(s1, PortId(0), merger, PortId(0));
  const auto w2 = topo.connect(s2, PortId(0), merger, PortId(0));
  const auto out = topo.external_output(merger, PortId(0));

  RuntimeConfig config;
  config.mode = mode;
  config.silence.curiosity = curiosity;
  config.silence.probe_interval = 100us;
  // Flight-record the run with diagnostics on so the blame table below can
  // be mined out of it (same pipeline as `tart-trace explain`).
  const std::string trace_path = "/tmp/tart_fig5_" +
                                 std::to_string(::getpid()) + "_" + tag +
                                 ".trace";
  config.trace.enabled = true;
  config.trace.path = trace_path;
  config.trace.categories =
      static_cast<std::uint32_t>(tart::trace::TraceCategory::kAll);
  // The two "machines": a simulated link with a real 100 us one-way delay.
  tart::transport::LinkConfig link;
  link.base_delay = 100us;
  link.delay_jitter = 30us;
  link.seed = 17;
  config.links[{EngineId(0), EngineId(1)}] = link;
  // Cross-engine wires carry a matching constant delay estimate.
  for (const auto w : {w1, w2}) {
    config.comm_delay[w] = [] {
      return std::make_unique<tart::estimator::ConstantDelayEstimator>(
          tart::TickDuration::micros(115));
    };
  }

  tart::core::Runtime rt(
      topo, {{s1, EngineId(0)}, {s2, EngineId(0)}, {merger, EngineId(1)}},
      config);

  RunOutcome outcome;
  std::mutex mu;
  rt.subscribe(out, [&](tart::VirtualTime, const tart::Payload& p, bool) {
    const auto now = std::chrono::steady_clock::now().time_since_epoch();
    const double sent_ns = static_cast<double>(p.as_ints()[0]);
    const double latency_us =
        (static_cast<double>(
             std::chrono::duration_cast<std::chrono::nanoseconds>(now)
                 .count()) -
         sent_ns) /
        1000.0;
    const std::lock_guard<std::mutex> lk(mu);
    outcome.latencies_us.push_back(latency_us);
  });

  rt.start();
  // Paced request generators, one thread per external producer.
  auto feed = [&rt](tart::WireId wire) {
    auto next = std::chrono::steady_clock::now();
    for (int i = 0; i < kRequestsPerSender; ++i) {
      next += kInterArrival;
      std::this_thread::sleep_until(next);
      const auto now_ns =
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now().time_since_epoch())
              .count();
      rt.inject(wire, tart::Payload(std::vector<std::int64_t>{now_ns}));
    }
  };
  std::thread f1(feed, in1);
  std::thread f2(feed, in2);
  f1.join();
  f2.join();
  rt.drain(60s);

  const auto m = rt.metrics(merger);
  outcome.probes = m.probes_sent;
  outcome.pessimism_ms = static_cast<double>(m.pessimism_wait_ns) / 1e6;
  {
    // Merge the merger's per-wire stall-attribution histograms.
    std::optional<tart::stats::Histogram> stall;
    for (const auto& s : rt.registry().samples()) {
      if (s.name != "tart_pessimism_stall_seconds" || !s.hist) continue;
      bool is_merger = false;
      for (const auto& l : s.labels)
        if (l.key == "component" && l.value == "merger") is_merger = true;
      if (!is_merger) continue;
      if (!stall)
        stall = *s.hist;
      else
        (void)stall->merge(*s.hist);
    }
    if (stall && stall->count() > 0) {
      outcome.stall_episodes = stall->count();
      outcome.stall_p50_us = stall->percentile(50) * 1e6;
      outcome.stall_p99_us = stall->percentile(99) * 1e6;
      outcome.stall_max_us = stall->max_seen() * 1e6;
    }
  }
  rt.stop();  // writes the trace file

  try {
    const auto trace = tart::trace::TraceReader::read_file(trace_path);
    const auto forensics = tart::trace::analyze({trace});
    outcome.attributed_pct = 100.0 * forensics.attributed_fraction();
    const auto name_of = [&](tart::ComponentId id) -> std::string {
      if (id == s1) return "sender1";
      if (id == s2) return "sender2";
      if (id == merger) return "merger";
      return id.is_valid() ? "c" + std::to_string(id.value()) : "external";
    };
    for (const auto& b : forensics.blame) {
      RunOutcome::BlameRow row;
      row.receiver = name_of(b.component);
      row.wire = "w" + std::to_string(b.wire.value());
      row.sender = name_of(b.sender);
      row.episodes = b.episodes;
      row.stall_ms = static_cast<double>(b.stall_ns) / 1e6;
      row.est_pct = b.stall_ns > 0 ? 100.0 *
                                         static_cast<double>(
                                             b.estimator_error_ns) /
                                         static_cast<double>(b.stall_ns)
                                   : 0.0;
      outcome.blame.push_back(std::move(row));
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "forensics: %s\n", e.what());
  }
  std::remove(trace_path.c_str());

  tart::stats::OnlineStats stats;
  std::vector<double> sorted = outcome.latencies_us;
  for (const double v : sorted) stats.add(v);
  std::sort(sorted.begin(), sorted.end());
  outcome.avg = stats.mean();
  if (!sorted.empty())
    outcome.p95 = sorted[static_cast<std::size_t>(
        static_cast<double>(sorted.size() - 1) * 0.95)];
  return outcome;
}

}  // namespace

int main() {
  tart::bench::banner(
      "Figure 5: real two-engine distributed run (threads + links)",
      "S III.C, Figure 5 (lazy silence far worse; curiosity <20% over "
      "non-deterministic)");

  std::printf("Running non-deterministic baseline...\n");
  const RunOutcome nd =
      run_config(SchedulingMode::kArrivalOrder, false, "nd");
  std::printf("Running deterministic + lazy silence...\n");
  const RunOutcome lazy =
      run_config(SchedulingMode::kDeterministic, false, "lazy");
  std::printf("Running deterministic + curiosity silence...\n");
  const RunOutcome cur =
      run_config(SchedulingMode::kDeterministic, true, "cur");

  tart::bench::Table table({"configuration", "completed", "avg latency (us)",
                            "p95 (us)", "vs non-det", "probes",
                            "pessimism (ms)"});
  const auto add = [&](const char* name, const RunOutcome& r) {
    table.row({name, tart::bench::fmt("%zu", r.latencies_us.size()),
               tart::bench::fmt("%.0f", r.avg),
               tart::bench::fmt("%.0f", r.p95),
               tart::bench::fmt("%+.1f%%",
                                100.0 * (r.avg - nd.avg) / nd.avg),
               tart::bench::fmt("%llu",
                                static_cast<unsigned long long>(r.probes)),
               tart::bench::fmt("%.1f", r.pessimism_ms)});
  };
  add("non-deterministic", nd);
  add("deterministic, lazy silence", lazy);
  add("deterministic, curiosity", cur);
  table.print();

  // The stall distribution behind the pessimism totals (merger, all input
  // wires merged) — same series GET /metrics exposes per wire.
  std::printf("\nMerger stall-attribution histogram (us/episode):\n");
  tart::bench::Table stalls({"configuration", "episodes", "p50", "p99",
                             "max"});
  const auto add_stalls = [&](const char* name, const RunOutcome& r) {
    stalls.row({name,
                tart::bench::fmt("%llu", static_cast<unsigned long long>(
                                             r.stall_episodes)),
                tart::bench::fmt("%.0f", r.stall_p50_us),
                tart::bench::fmt("%.0f", r.stall_p99_us),
                tart::bench::fmt("%.0f", r.stall_max_us)});
  };
  add_stalls("non-deterministic", nd);
  add_stalls("deterministic, lazy silence", lazy);
  add_stalls("deterministic, curiosity", cur);
  stalls.print();

  // Causal blame, mined from each run's flight recording: which upstream
  // wire the merger's stalls waited on, and whether the wait was the
  // sender's estimator (promised too little silence) or propagation of a
  // timely promise. Same analysis `tart-trace explain` runs offline.
  std::printf("\nStall blame (trace forensics; est-err%% = sender estimator"
              " share):\n");
  tart::bench::Table blame({"configuration", "receiver", "wire", "sender",
                            "episodes", "stall (ms)", "est-err",
                            "attributed"});
  const auto add_blame = [&](const char* name, const RunOutcome& r) {
    if (r.blame.empty()) {
      blame.row({name, "-", "-", "-", "0", "0.0", "-",
                 tart::bench::fmt("%.0f%%", r.attributed_pct)});
      return;
    }
    for (const auto& b : r.blame)
      blame.row({name, b.receiver, b.wire, b.sender,
                 tart::bench::fmt("%llu",
                                  static_cast<unsigned long long>(b.episodes)),
                 tart::bench::fmt("%.1f", b.stall_ms),
                 tart::bench::fmt("%.0f%%", b.est_pct),
                 tart::bench::fmt("%.0f%%", r.attributed_pct)});
  };
  add_blame("non-deterministic", nd);
  add_blame("deterministic, lazy silence", lazy);
  add_blame("deterministic, curiosity", cur);
  blame.print();

  // The per-request latency series of the paper's figure, bucketed.
  std::printf("\nLatency by request-number window (us):\n");
  tart::bench::Table series({"requests", "non-det", "det lazy",
                             "det curiosity"});
  const std::size_t n = std::min({nd.latencies_us.size(),
                                  lazy.latencies_us.size(),
                                  cur.latencies_us.size()});
  const std::size_t window = std::max<std::size_t>(n / 8, 1);
  for (std::size_t start = 0; start + window <= n; start += window) {
    auto window_avg = [&](const std::vector<double>& xs) {
      double sum = 0;
      for (std::size_t i = start; i < start + window; ++i) sum += xs[i];
      return sum / static_cast<double>(window);
    };
    series.row({tart::bench::fmt("%zu-%zu", start + 1, start + window),
                tart::bench::fmt("%.0f", window_avg(nd.latencies_us)),
                tart::bench::fmt("%.0f", window_avg(lazy.latencies_us)),
                tart::bench::fmt("%.0f", window_avg(cur.latencies_us))});
  }
  series.print();
  std::printf(
      "\nExpected shape (paper): lazy silence far above the others (its\n"
      "pessimism delays only resolve when unrelated traffic implies\n"
      "silence); curiosity stays within ~20%% of non-deterministic.\n");
  return 0;
}
