// Ablation D — pessimistic (TART) vs optimistic (Time Warp) determinism.
//
// §II.D draws the contrast: "Unlike Jefferson's Time Warp algorithm ... in
// which messages are optimistically processed first-come first-served, and
// then rolled back and re-executed if out-of-order messages arrive, TART's
// scheduling algorithm is pessimistic." This ablation quantifies the
// trade under the Figure-4 setting (realistic skewed jitter, estimator
// coefficient swept around its calibrated value): pessimism pays waiting
// time proportional to estimator error; optimism pays rollbacks and
// re-execution proportional to arrival-order inversions — and needs
// anti-message/commit machinery for external output that this cost model
// doesn't even charge for.
#include <cstdio>

#include "exp_util.h"
#include "sim/tart_sim.h"

int main() {
  tart::bench::banner(
      "Ablation D: pessimistic (TART) vs optimistic (Time Warp) merger",
      "S II.D contrast, under the Figure-4 jitter setting");

  tart::sim::EmpiricalJitterBank::Config bank_cfg;
  const tart::sim::EmpiricalJitterBank bank(bank_cfg);

  tart::sim::SimConfig base;
  base.duration_us = 30e6;
  base.seed = 5;
  base.bank = &bank;

  tart::bench::Table table({"estimator (us/iter)", "pessimistic (us)",
                            "pessimism (us/msg)", "optimistic (us)",
                            "rollbacks", "re-exec/msg", "optimistic util"});
  for (int coef_us = 48; coef_us <= 70; coef_us += 4) {
    tart::sim::SimConfig cfg = base;
    cfg.estimator_ns_per_iter = coef_us * 1000.0;

    cfg.mode = tart::sim::SimMode::kDeterministic;
    const auto pess = run_simulation(cfg);
    cfg.mode = tart::sim::SimMode::kOptimistic;
    const auto opt = run_simulation(cfg);

    const double msgs = static_cast<double>(
        std::max<std::uint64_t>(pess.completed, 1));
    table.row({
        tart::bench::fmt("%d", coef_us),
        tart::bench::fmt("%.0f", pess.avg_latency_us),
        tart::bench::fmt("%.1f", pess.pessimism_wait_us / msgs),
        tart::bench::fmt("%.0f", opt.avg_latency_us),
        tart::bench::fmt("%llu",
                         static_cast<unsigned long long>(opt.rollbacks)),
        tart::bench::fmt("%.3f", static_cast<double>(opt.reexecutions) /
                                     msgs),
        tart::bench::fmt("%.2f", opt.merger_utilization),
    });
  }
  table.print();
  std::printf(
      "\nExpected shape: optimism's rollbacks and wasted re-execution track\n"
      "the out-of-order rate (worst far from the calibrated coefficient),\n"
      "inflating utilization; pessimism converts the same estimator error\n"
      "into bounded waiting instead of wasted work — and never needs\n"
      "rollback support in components at all (the reason TART can keep\n"
      "state in ordinary variables).\n");
  return 0;
}
