// Throughput saturation (§III.A, text) — "we were unable to detect any
// throughput degradation due to determinism at all! ... In both
// deterministic and non-deterministic execution modes, the system
// saturated at 1235 messages/second."
//
// The merger's capacity bound is 1/(2 senders x 400 us) = 1250 msg/s per
// sender; the paper measured saturation at 1235. This bench ramps the
// external rate and reports, per mode, the highest stable rate. The
// paper-shape claim to reproduce: both modes saturate at the same rate
// (determinism costs latency, not throughput), just under the capacity
// bound.
#include <cstdio>

#include "exp_util.h"
#include "sim/tart_sim.h"

namespace {

bool stable_at(double rate_per_sec, tart::sim::SimMode mode) {
  tart::sim::SimConfig cfg;
  cfg.duration_us = 20e6;
  cfg.seed = 11;
  cfg.mode = mode;
  cfg.arrival_mean_us = 1e6 / rate_per_sec;
  const auto r = run_simulation(cfg);
  // Unstable runs leave a growing backlog: they fail to drain within the
  // grace window or blow up the queue.
  return r.stable && r.peak_merger_queue < 200;
}

}  // namespace

int main() {
  tart::bench::banner(
      "Throughput saturation: deterministic vs non-deterministic",
      "S III.A text (both modes saturate at ~1235 msg/s/sender; capacity "
      "bound 1250)");

  tart::bench::Table table(
      {"rate (msg/s/sender)", "non-det", "deterministic"});
  double sat_nd = 0, sat_det = 0;
  for (double rate = 1000; rate <= 1400; rate += 50) {
    const bool nd = stable_at(rate, tart::sim::SimMode::kNonDeterministic);
    const bool det = stable_at(rate, tart::sim::SimMode::kDeterministic);
    if (nd) sat_nd = rate;
    if (det) sat_det = rate;
    table.row({tart::bench::fmt("%.0f", rate), nd ? "stable" : "UNSTABLE",
               det ? "stable" : "UNSTABLE"});
  }
  table.print();

  // Bisect the saturation point per mode to ~5 msg/s.
  for (const auto mode : {tart::sim::SimMode::kNonDeterministic,
                          tart::sim::SimMode::kDeterministic}) {
    double lo = 1000, hi = 1400;
    while (hi - lo > 5) {
      const double mid = (lo + hi) / 2;
      (stable_at(mid, mode) ? lo : hi) = mid;
    }
    std::printf("%s saturation: ~%.0f msg/s/sender (paper: 1235)\n",
                mode == tart::sim::SimMode::kNonDeterministic
                    ? "Non-deterministic"
                    : "Deterministic   ",
                lo);
    if (mode == tart::sim::SimMode::kNonDeterministic) {
      sat_nd = lo;
    } else {
      sat_det = lo;
    }
  }
  std::printf(
      "\nExpected shape (paper): identical saturation in both modes —\n"
      "determinism adds pessimism latency but no throughput cost. "
      "Measured gap: %.0f msg/s.\n",
      sat_nd - sat_det);
  return 0;
}
