// Recovery-time-objective (RTO) experiment for tiered fast restart
// (docs/RECOVERY.md; paper §II.F: recovery = checkpoint restore +
// deterministic replay of the external log suffix).
//
// For each workload size the harness fork()s an ingester child that runs
// the Figure-1 word-count application against a log directory, taking
// durable checkpoints at a fixed cadence (or never, for the cold
// baseline), then pauses. The parent SIGKILLs it mid-pause — a genuine
// fail-stop, no destructors — and measures restart-to-caught-up: runtime
// construction (checkpoint restore + log scan), start, and the suffix
// replay to quiescence with outputs suppressed.
//
// Expected shape: cold RTO grows linearly with log length (the whole log
// replays); checkpointed RTO stays ~flat (only the post-checkpoint suffix
// replays) and the on-disk log stays bounded (compaction is gated by the
// newest durable checkpoint, so covered segments are deleted).
//
// --smoke: one small checkpointed run asserting the restart actually came
// from a checkpoint and replayed only a suffix (scripts/check.sh).
// --json[=FILE]: machine-readable results (BENCH_recovery.json in CI).
#include <csignal>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>

#include "apps/wordcount.h"
#include "core/runtime.h"
#include "durability/manager.h"
#include "durability/replay.h"
#include "estimator/estimator.h"
#include "exp_util.h"

namespace {

using namespace std::chrono_literals;
using tart::EngineId;
using tart::PortId;
using tart::core::Topology;
using Clock = std::chrono::steady_clock;

struct App {
  Topology topo;
  tart::ComponentId s1, s2, merger;
  tart::WireId in1, in2, out;

  App() {
    s1 = topo.add("sender1", [] {
      return std::make_unique<tart::apps::WordCountSender>();
    });
    s2 = topo.add("sender2", [] {
      return std::make_unique<tart::apps::WordCountSender>();
    });
    merger = topo.add("merger", [] {
      return std::make_unique<tart::apps::TotalingMerger>();
    });
    for (const auto c : {s1, s2}) {
      topo.set_estimator(c, [] {
        return tart::estimator::per_iteration_estimator(61000.0);
      });
    }
    topo.set_estimator(merger, [] {
      return std::make_unique<tart::estimator::ConstantEstimator>(
          tart::TickDuration::micros(50));
    });
    in1 = topo.external_input(s1, PortId(0));
    in2 = topo.external_input(s2, PortId(0));
    topo.connect(s1, PortId(0), merger, PortId(0));
    topo.connect(s2, PortId(0), merger, PortId(0));
    out = topo.external_output(merger, PortId(0));
  }
};

std::string make_temp_dir() {
  char tmpl[] = "/tmp/tart_bench_recovery_XXXXXX";
  const char* dir = mkdtemp(tmpl);
  return dir == nullptr ? std::string() : std::string(dir);
}

tart::core::RuntimeConfig node_config(const std::string& dir, bool durable) {
  tart::core::RuntimeConfig config;
  config.checkpoint.every_n_messages = 8;
  config.checkpoint.full_every_k = 4;
  config.log_dir = dir;
  config.durability.enabled = durable;
  return config;
}

tart::core::Runtime make_runtime(App& app,
                                 const tart::core::RuntimeConfig& config) {
  return tart::core::Runtime(
      app.topo,
      {{app.s1, EngineId(0)}, {app.s2, EngineId(0)},
       {app.merger, EngineId(1)}},
      config);
}

/// Child body: ingest `per_sender` messages per sender; when `durable`,
/// take one durable checkpoint with `tail` messages per sender still to
/// come — so the restart always replays a fixed-size suffix no matter how
/// long the covered prefix grew. Writes the marker file, then pauses until
/// SIGKILL.
[[noreturn]] void ingest_child(const std::string& dir, int per_sender,
                               int tail, bool durable,
                               const std::string& marker) {
  {
    App app;
    tart::core::Runtime rt = make_runtime(app, node_config(dir, durable));
    rt.start();
    const int prefix = per_sender > tail ? per_sender - tail : 0;
    const auto inject_one = [&](int i) {
      rt.inject_at(app.in1, tart::VirtualTime(1000 + i * 100000),
                   tart::apps::sentence({"the", "cat", "sat"}));
      rt.inject_at(app.in2, tart::VirtualTime(500 + i * 90000),
                   tart::apps::sentence({"dog", "ran"}));
    };
    for (int i = 0; i < prefix; ++i) inject_one(i);
    if (durable && prefix > 0) {
      // Settle (NOT drain: drain closes the inputs and the tail is still to
      // come) so the checkpoint covers the whole prefix, then persist it.
      if (!tart::durability::ReplayDriver::catch_up(rt, 120s).caught_up)
        _exit(3);
      const auto stats = rt.checkpoint_manager()->checkpoint_now();
      if (!stats.ok) _exit(5);
    }
    for (int i = prefix; i < per_sender; ++i) inject_one(i);
    if (!rt.drain(120s)) _exit(3);
    std::FILE* f = std::fopen(marker.c_str(), "w");
    if (f == nullptr) _exit(4);
    std::fclose(f);
    // Paused, logs durable: the parent's SIGKILL is the crash.
    for (;;) std::this_thread::sleep_for(1s);
  }
}

struct Measurement {
  double rto_ms = 0.0;
  bool from_checkpoint = false;
  std::uint64_t covered = 0;
  std::uint64_t suffix = 0;
  std::uint64_t log_bytes = 0;
  bool ok = false;
};

/// One crash/restart cycle. Returns the restart-side measurement.
Measurement run_cycle(int per_sender, int tail, bool durable) {
  Measurement m;
  const std::string dir = make_temp_dir();
  if (dir.empty()) return m;
  const std::string marker = dir + "/ingested";

  const pid_t pid = fork();
  if (pid < 0) return m;
  if (pid == 0) ingest_child(dir, per_sender, tail, durable, marker);

  // Wait for the child to finish ingesting, then fail-stop it.
  const auto deadline = Clock::now() + 180s;
  while (!std::filesystem::exists(marker)) {
    if (Clock::now() > deadline) {
      kill(pid, SIGKILL);
      waitpid(pid, nullptr, 0);
      std::filesystem::remove_all(dir);
      return m;
    }
    std::this_thread::sleep_for(2ms);
  }
  kill(pid, SIGKILL);
  waitpid(pid, nullptr, 0);

  // Tiered restart: construct (restore + scan) + start + catch-up replay.
  {
    App app;
    const auto t0 = Clock::now();
    tart::core::Runtime rt = make_runtime(app, node_config(dir, durable));
    rt.start();
    const auto stats = tart::durability::ReplayDriver::catch_up(rt, 120s);
    m.rto_ms = static_cast<double>(
                   std::chrono::duration_cast<std::chrono::microseconds>(
                       Clock::now() - t0)
                       .count()) /
               1000.0;
    m.from_checkpoint = rt.recovery_info().from_checkpoint;
    m.covered = rt.recovery_info().covered_records;
    m.suffix = rt.recovery_info().suffix_records;
    m.log_bytes = rt.log_bytes_on_disk();
    if (m.log_bytes == 0) {
      // Cold runs use the unsegmented store, which doesn't self-report;
      // size the log files on disk directly.
      for (const auto& entry : std::filesystem::directory_iterator(dir))
        if (entry.is_regular_file() && entry.path().filename() != "ingested")
          m.log_bytes += entry.file_size();
    }
    m.ok = stats.caught_up;
    rt.stop();
  }
  std::filesystem::remove_all(dir);
  return m;
}

int smoke(bool json, const std::string& json_path) {
  const Measurement m = run_cycle(/*per_sender=*/150, /*tail=*/50,
                                  /*durable=*/true);
  if (!m.ok) {
    std::printf("SMOKE FAIL: restart did not catch up\n");
    return 1;
  }
  if (!m.from_checkpoint || m.covered == 0) {
    std::printf("SMOKE FAIL: restart did not boot from a checkpoint "
                "(covered=%llu)\n",
                static_cast<unsigned long long>(m.covered));
    return 1;
  }
  if (m.suffix >= 300) {
    std::printf("SMOKE FAIL: suffix replay (%llu records) is not shorter "
                "than the full log\n",
                static_cast<unsigned long long>(m.suffix));
    return 1;
  }
  std::printf("bench_recovery smoke OK: rto=%.1fms covered=%llu "
              "suffix=%llu log_bytes=%llu\n",
              m.rto_ms, static_cast<unsigned long long>(m.covered),
              static_cast<unsigned long long>(m.suffix),
              static_cast<unsigned long long>(m.log_bytes));
  if (json) {
    tart::bench::JsonResult results("recovery");
    results.metric("ckpt_rto_ms", m.rto_ms);
    results.metric("covered", m.covered);
    results.metric("suffix", m.suffix);
    results.metric("log_bytes", m.log_bytes);
    if (!results.write(json_path)) return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke_mode = false;
  bool json = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke_mode = true;
    } else if (!tart::bench::parse_json_flag(arg, &json, &json_path)) {
      std::fprintf(stderr,
                   "usage: bench_recovery [--smoke] [--json[=FILE]]\n");
      return 2;
    }
  }
  if (smoke_mode) return smoke(json, json_path);

  tart::bench::banner("Recovery time vs log length (tiered fast restart)",
                      "S II.F (checkpoint restore + suffix-only replay; "
                      "docs/RECOVERY.md)");

  tart::bench::Table table({"msgs/sender", "cold RTO (ms)", "cold log KB",
                            "ckpt RTO (ms)", "ckpt log KB", "covered",
                            "suffix"});
  tart::bench::JsonResult results("recovery");
  for (const int n : {250, 500, 1000, 2000}) {
    const Measurement cold = run_cycle(n, /*tail=*/0, /*durable=*/false);
    const Measurement ckpt = run_cycle(n, /*tail=*/100, /*durable=*/true);
    if (!cold.ok || !ckpt.ok) {
      std::printf("ERROR: restart failed to catch up at n=%d\n", n);
      return 1;
    }
    const std::string key = tart::bench::fmt("n%d", n);
    results.metric(key + "_cold_rto_ms", cold.rto_ms);
    results.metric(key + "_ckpt_rto_ms", ckpt.rto_ms);
    results.metric(key + "_cold_log_bytes", cold.log_bytes);
    results.metric(key + "_ckpt_log_bytes", ckpt.log_bytes);
    results.metric(key + "_covered", ckpt.covered);
    results.metric(key + "_suffix", ckpt.suffix);
    table.row({
        tart::bench::fmt("%d", n),
        tart::bench::fmt("%.1f", cold.rto_ms),
        tart::bench::fmt("%.1f", static_cast<double>(cold.log_bytes) / 1024.0),
        tart::bench::fmt("%.1f", ckpt.rto_ms),
        tart::bench::fmt("%.1f", static_cast<double>(ckpt.log_bytes) / 1024.0),
        tart::bench::fmt("%llu", static_cast<unsigned long long>(ckpt.covered)),
        tart::bench::fmt("%llu", static_cast<unsigned long long>(ckpt.suffix)),
    });
  }
  table.print();
  std::printf(
      "\nExpected shape: cold RTO and cold log bytes grow with the log;\n"
      "checkpointed RTO tracks the (fixed-size) suffix and the gated log\n"
      "stays bounded because compaction deletes covered segments.\n");
  if (json && !results.write(json_path)) return 1;
  return 0;
}
