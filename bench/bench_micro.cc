// Microbenchmarks (google-benchmark) for the hot data structures: the
// pessimistic-merge inbox, message serialization, incremental checkpoint
// capture, estimator evaluation, and retention maintenance. These bound
// the per-message bookkeeping cost of determinism, which the paper argues
// must stay far below transaction-commit costs.
#include <benchmark/benchmark.h>

#include "checkpoint/checkpointed_map.h"
#include "checkpoint/snapshot.h"
#include "common/rng.h"
#include "estimator/estimator.h"
#include "obs/registry.h"
#include "trace/recorder.h"
#include "wire/inbox.h"
#include "wire/retention_buffer.h"

namespace {

using namespace tart;

Message make_msg(WireId wire, std::int64_t vt, std::uint64_t seq) {
  Message m;
  m.wire = wire;
  m.vt = VirtualTime(vt);
  m.seq = seq;
  m.payload = Payload(std::int64_t{42});
  return m;
}

void BM_InboxOfferPop2Wires(benchmark::State& state) {
  Inbox inbox;
  inbox.add_wire(WireId(0));
  inbox.add_wire(WireId(1));
  std::int64_t vt = 0;
  std::uint64_t seq = 0;
  for (auto _ : state) {
    ++vt;
    (void)inbox.offer(make_msg(WireId(0), vt, seq));
    (void)inbox.offer(make_msg(WireId(1), vt + 1, seq));
    ++seq;
    benchmark::DoNotOptimize(inbox.pop());
    benchmark::DoNotOptimize(inbox.pop());
    vt += 2;
  }
}
BENCHMARK(BM_InboxOfferPop2Wires);

void BM_InboxOfferPopWide(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  Inbox inbox;
  for (std::uint32_t i = 0; i < n; ++i) inbox.add_wire(WireId(i));
  std::int64_t vt = 0;
  std::uint64_t seq = 0;
  for (auto _ : state) {
    for (std::uint32_t i = 0; i < n; ++i)
      (void)inbox.offer(make_msg(WireId(i), vt + i + 1, seq));
    ++seq;
    for (std::uint32_t i = 0; i < n; ++i)
      benchmark::DoNotOptimize(inbox.pop());
    vt += n + 1;
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_InboxOfferPopWide)->Arg(4)->Arg(16)->Arg(64);

void BM_MessageEncodeDecode(benchmark::State& state) {
  Message m = make_msg(WireId(3), 233000, 17);
  m.payload = Payload(std::vector<std::string>{"the", "cat", "sat"});
  for (auto _ : state) {
    serde::Writer w;
    m.encode(w);
    serde::Reader r(w.bytes());
    benchmark::DoNotOptimize(Message::decode(r));
  }
}
BENCHMARK(BM_MessageEncodeDecode);

void BM_CheckpointedMapPut(benchmark::State& state) {
  checkpoint::CheckpointedMap<std::string, std::int64_t> map;
  Rng rng(1);
  std::vector<std::string> keys;
  for (int i = 0; i < 1000; ++i) keys.push_back("word" + std::to_string(i));
  for (auto _ : state) {
    map.update(keys[rng.bounded(keys.size())],
               [](std::int64_t& v) { ++v; });
  }
}
BENCHMARK(BM_CheckpointedMapPut);

void BM_DeltaCapture(benchmark::State& state) {
  const auto dirty = static_cast<int>(state.range(0));
  checkpoint::CheckpointedMap<std::string, std::int64_t> map;
  for (int i = 0; i < 10000; ++i) map.put("word" + std::to_string(i), i);
  {
    serde::Writer discard;
    map.capture_delta(discard);
  }
  Rng rng(2);
  for (auto _ : state) {
    state.PauseTiming();
    for (int i = 0; i < dirty; ++i)
      map.update("word" + std::to_string(rng.bounded(10000)),
                 [](std::int64_t& v) { ++v; });
    state.ResumeTiming();
    serde::Writer w;
    map.capture_delta(w);
    benchmark::DoNotOptimize(w.size());
  }
}
BENCHMARK(BM_DeltaCapture)->Arg(10)->Arg(100)->Arg(1000);

void BM_FullCapture10k(benchmark::State& state) {
  checkpoint::CheckpointedMap<std::string, std::int64_t> map;
  for (int i = 0; i < 10000; ++i) map.put("word" + std::to_string(i), i);
  for (auto _ : state) {
    serde::Writer w;
    map.capture_full(w);
    benchmark::DoNotOptimize(w.size());
  }
}
BENCHMARK(BM_FullCapture10k);

void BM_LinearEstimate(benchmark::State& state) {
  const estimator::LinearEstimator est({0.0, 61827.0, 120.0, 45.0});
  estimator::BlockCounters counters;
  counters.count(0, 10);
  counters.count(1, 3);
  counters.count(2, 7);
  for (auto _ : state) benchmark::DoNotOptimize(est.estimate(counters));
}
BENCHMARK(BM_LinearEstimate);

void BM_RetentionRecordTrim(benchmark::State& state) {
  RetentionBuffer buf;
  std::uint64_t seq = 0;
  std::int64_t vt = 0;
  for (auto _ : state) {
    buf.record(make_msg(WireId(0), ++vt, seq++));
    if (seq % 64 == 0) buf.acknowledge_through(VirtualTime(vt - 8));
  }
}
BENCHMARK(BM_RetentionRecordTrim);

// The flight recorder's hot-path contract: disabled tracing is one
// null-pointer branch per hook (the <2% throughput budget rests on this);
// enabled tracing is a mask test + relaxed fetch_add + lock-free ring push.
void BM_TraceHookDisabled(benchmark::State& state) {
  trace::TraceRecorder* tracer = nullptr;
  std::int64_t vt = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tracer);
    if (tracer != nullptr)
      tracer->record(ComponentId(0), trace::TraceEventKind::kDispatch,
                     VirtualTime(vt), WireId(0), 0, 0);
    ++vt;
  }
}
BENCHMARK(BM_TraceHookDisabled);

void BM_TraceRecordEnabled(benchmark::State& state) {
  trace::TraceConfig cfg;
  cfg.enabled = true;
  cfg.ring_capacity = 1 << 16;
  cfg.drain_interval = std::chrono::microseconds(50);
  trace::TraceRecorder tracer(cfg, {ComponentId(0)});
  std::int64_t vt = 0;
  for (auto _ : state) {
    tracer.record(ComponentId(0), trace::TraceEventKind::kDispatch,
                  VirtualTime(vt), WireId(0), 0, 0xAB);
    ++vt;
  }
  state.counters["dropped"] =
      static_cast<double>(tracer.total_dropped());
}
BENCHMARK(BM_TraceRecordEnabled);

void BM_TraceRecordMasked(benchmark::State& state) {
  trace::TraceConfig cfg;
  cfg.enabled = true;  // scheduling-only mask: diagnostic records are a
                       // single mask test
  trace::TraceRecorder tracer(cfg, {ComponentId(0)});
  std::int64_t vt = 0;
  for (auto _ : state) {
    tracer.record(ComponentId(0), trace::TraceEventKind::kCuriosityProbe,
                  VirtualTime(vt), WireId(0));
    ++vt;
  }
}
BENCHMARK(BM_TraceRecordMasked);

// Telemetry-registry hot path: every scheduler counter bump is one relaxed
// fetch_add on a pre-resolved cell (the registry mutex is registration-time
// only), so full instrumentation must cost nanoseconds per op — the
// acceptance bar is ~20ns/counter inc.
void BM_ObsCounterInc(benchmark::State& state) {
  obs::Registry reg;
  obs::Counter& c = reg.counter("tart_bench_total", "bench counter",
                                {{"component", "bench"}});
  for (auto _ : state) c.inc();
  benchmark::DoNotOptimize(c.value());
}
BENCHMARK(BM_ObsCounterInc);

void BM_ObsHistogramRecord(benchmark::State& state) {
  obs::Registry reg;
  obs::Histogram& h = reg.histogram("tart_bench_seconds", "bench histogram",
                                    {{"component", "bench"},
                                     {"wire", "w0"}},
                                    100e-6, 256);
  double x = 0.0;
  for (auto _ : state) {
    h.record(x);
    x += 13e-6;
    if (x > 25e-3) x = 0.0;  // spread across buckets incl. overflow misses
  }
  benchmark::DoNotOptimize(h.count());
}
BENCHMARK(BM_ObsHistogramRecord);

// Compiled-out baseline: the shape instrumented code takes when a cell is
// absent (null-handle branch). This is the floor the enabled paths are
// compared against.
void BM_ObsCounterCompiledOut(benchmark::State& state) {
  obs::Counter* c = nullptr;
  std::uint64_t fallback = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(c);
    if (c != nullptr)
      c->inc();
    else
      ++fallback;
  }
  benchmark::DoNotOptimize(fallback);
}
BENCHMARK(BM_ObsCounterCompiledOut);

void BM_PayloadRoundTrip(benchmark::State& state) {
  const Payload p(std::vector<std::string>{"a", "sentence", "of", "words"});
  for (auto _ : state) {
    serde::Writer w;
    p.encode(w);
    serde::Reader r(w.bytes());
    benchmark::DoNotOptimize(Payload::decode(r));
  }
}
BENCHMARK(BM_PayloadRoundTrip);

}  // namespace
