// Ablation A — silence-propagation strategies (§II.G.3, §II.H, §II.G.1).
//
// Part 1 sweeps traffic density with symmetric senders, comparing
// curiosity-driven probing against pure lazy propagation (silence implied
// only by later data). Expected: lazy degrades sharply as traffic thins
// (pessimism delays only resolve on the next unrelated message) while
// curiosity stays bounded by the probe round trip.
//
// Part 2 is the hyper-aggressive "bias algorithm" setting (§II.G.1, after
// Aguilera & Strom): senders with ASYMMETRIC rates. The slow sender's data
// is delayed onto a coarse grid matched to its own inter-arrival gap, so
// (a) each of its rare messages implies a long silence range, and (b) the
// receiver infers the silent ticks between grid boundaries by
// construction. This unblocks the fast stream at the cost of added latency
// on the slow one — which is why re-tuning the bias is a determinism fault
// while switching lazy<->curiosity is not.
#include <cstdio>

#include "exp_util.h"
#include "sim/tart_sim.h"

namespace {

void run_part1() {
  std::printf("\nPart 1: symmetric senders, strategy vs traffic density\n");
  tart::bench::Table table({"inter-arrival (us)", "strategy", "latency (us)",
                            "p95 (us)", "probes/msg", "pessimism (us/msg)"});
  for (const double arrival_us : {1000.0, 5000.0, 20000.0}) {
    for (const bool curiosity : {true, false}) {
      tart::sim::SimConfig cfg;
      cfg.duration_us = 30e6;
      cfg.seed = 13;
      cfg.arrival_mean_us = arrival_us;
      cfg.mode = tart::sim::SimMode::kDeterministic;
      cfg.silence = curiosity ? tart::sim::SimSilence::kCuriosity
                              : tart::sim::SimSilence::kLazy;
      const auto r = run_simulation(cfg);
      const double msgs = static_cast<double>(
          std::max<std::uint64_t>(r.completed, 1));
      table.row({
          tart::bench::fmt("%.0f", arrival_us),
          curiosity ? "curiosity" : "lazy",
          tart::bench::fmt("%.0f", r.avg_latency_us),
          tart::bench::fmt("%.0f", r.p95_latency_us),
          tart::bench::fmt("%.2f", static_cast<double>(r.probes) / msgs),
          tart::bench::fmt("%.1f", r.pessimism_wait_us / msgs),
      });
    }
  }
  table.print();
}

void run_part2() {
  std::printf(
      "\nPart 2: asymmetric rates (sender 0 slow at 20 ms, sender 1 fast at "
      "1 ms);\nbias grid = slow inter-arrival (20 ms)\n");
  tart::bench::Table table({"strategy", "bias window", "latency (us)",
                            "p50 (us)", "p95 (us)", "max (us)",
                            "probes/msg"});
  for (const bool curiosity : {false, true}) {
    for (const std::int64_t bias_ms : {0LL, 2LL, 5LL, 10LL}) {
      tart::sim::SimConfig cfg;
      cfg.duration_us = 60e6;
      cfg.seed = 29;
      cfg.arrival_mean_us = 1000.0;        // fast sender
      cfg.slow_arrival_mean_us = 20000.0;  // slow sender (sender 0)
      cfg.mode = tart::sim::SimMode::kDeterministic;
      cfg.silence = curiosity ? tart::sim::SimSilence::kCuriosity
                              : tart::sim::SimSilence::kLazy;
      if (bias_ms > 0) {
        cfg.biased_sender = 0;
        cfg.bias_ns = bias_ms * 1'000'000;
      }
      const auto r = run_simulation(cfg);
      const double msgs = static_cast<double>(
          std::max<std::uint64_t>(r.completed, 1));
      table.row({
          curiosity ? "curiosity" : "lazy",
          bias_ms == 0 ? std::string("off")
                       : tart::bench::fmt("%lld ms",
                                          static_cast<long long>(bias_ms)),
          tart::bench::fmt("%.0f", r.avg_latency_us),
          tart::bench::fmt("%.0f", r.p50_latency_us),
          tart::bench::fmt("%.0f", r.p95_latency_us),
          tart::bench::fmt("%.0f", r.max_latency_us),
          tart::bench::fmt("%.2f", static_cast<double>(r.probes) / msgs),
      });
    }
  }
  table.print();
  std::printf(
      "\nExpected shape: under lazy propagation the fast stream stalls on\n"
      "the slow sender's scarce implied silence; widening the bias grid\n"
      "releases it (each rare slow message, delayed onto the grid, implies\n"
      "a long silence range) at the cost of a growing slow-message tail\n"
      "(max latency) — the window must stay well under the slow gap or the\n"
      "stamping random walk diverges. Under curiosity the probes already\n"
      "chase silence and the bias adds nothing — matching the paper's\n"
      "\"in the absence of aggressive silence propagation protocols\"\n"
      "qualifier.\n");
}

}  // namespace

int main() {
  tart::bench::banner("Ablation A: silence-propagation strategies",
                      "S II.G.3 / S II.G.1 (lazy / curiosity / "
                      "hyper-aggressive bias)");
  run_part1();
  run_part2();
  return 0;
}
