// Socket-transport microbenchmark: what does crossing a real TCP loopback
// cost relative to the in-process NetworkLink the single-process benches
// use? Reports frames/sec (streaming) and p50/p99 round-trip latency
// (ping-pong) for both transports at several payload sizes, so the
// distributed figures can be read against the transport's own floor.
//
//   bench_net [--smoke] [--json[=FILE]]
//   (--smoke: 10x fewer frames, CI sanity; --json: machine-readable results)
#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <mutex>
#include <thread>
#include <vector>

#include "common/virtual_time.h"
#include "exp_util.h"
#include "net/connection_manager.h"
#include "transport/frame.h"
#include "transport/network_link.h"
#include "wire/message.h"

namespace {

using namespace std::chrono_literals;
using tart::Message;
using tart::Payload;
using tart::VirtualTime;
using tart::WireId;
using Clock = std::chrono::steady_clock;

// Load knobs; --smoke divides both by 10 for CI.
int g_stream_frames = 20000;
int g_ping_pongs = 2000;

tart::transport::Frame data_frame(std::size_t payload_bytes,
                                  std::uint64_t seq) {
  Message m;
  m.wire = WireId(1);
  m.vt = VirtualTime(static_cast<std::int64_t>(seq));
  m.seq = seq;
  m.payload = Payload(std::string(payload_bytes, 'x'));
  return tart::transport::DataFrame{m};
}

double percentile(std::vector<double>& v, double p) {
  std::sort(v.begin(), v.end());
  if (v.empty()) return 0.0;
  const auto idx = static_cast<std::size_t>(p * static_cast<double>(v.size() - 1));
  return v[idx];
}

struct Result {
  double frames_per_sec = 0;
  double mib_per_sec = 0;
  double rtt_p50_us = 0;
  double rtt_p99_us = 0;
};

// --- TCP over loopback ------------------------------------------------------

/// A connected pair of ConnectionManagers on 127.0.0.1.
struct TcpPair {
  std::unique_ptr<tart::net::ConnectionManager> a;  // dials ("a" < "b")
  std::unique_ptr<tart::net::ConnectionManager> b;

  TcpPair(tart::net::ConnectionManager::FrameHandler on_a,
          tart::net::ConnectionManager::FrameHandler on_b) {
    tart::net::ConnectionManager::Options bo;
    bo.node = "b";
    bo.listen = "127.0.0.1:0";
    bo.peers["a"] = "127.0.0.1:1";  // known for HELLO validation; never dialed
    b = std::make_unique<tart::net::ConnectionManager>(
        std::move(bo), std::move(on_b), [](const std::string&, bool) {});

    tart::net::ConnectionManager::Options ao;
    ao.node = "a";
    ao.peers["b"] = "127.0.0.1:" + std::to_string(b->listen_port());
    a = std::make_unique<tart::net::ConnectionManager>(
        std::move(ao), std::move(on_a), [](const std::string&, bool) {});

    while (!a->peer_up("b") || !b->peer_up("a"))
      std::this_thread::sleep_for(1ms);
  }

  ~TcpPair() {
    a->shutdown();
    b->shutdown();
  }
};

Result bench_tcp(std::size_t payload_bytes) {
  Result r;
  {
    // Streaming: a -> b, count arrivals.
    std::atomic<int> received{0};
    TcpPair pair([](const std::string&, tart::transport::Frame) {},
                 [&](const std::string&, tart::transport::Frame) {
                   received.fetch_add(1);
                 });
    const auto t0 = Clock::now();
    for (int i = 0; i < g_stream_frames; ++i) {
      const auto f = data_frame(payload_bytes, static_cast<std::uint64_t>(i));
      while (!pair.a->send("b", f))  // bounded queue: wait out backpressure
        std::this_thread::sleep_for(100us);
    }
    while (received.load() < g_stream_frames) std::this_thread::sleep_for(1ms);
    const double secs =
        std::chrono::duration<double>(Clock::now() - t0).count();
    r.frames_per_sec = g_stream_frames / secs;
    r.mib_per_sec = static_cast<double>(pair.a->counters().bytes_out) /
                    (1024.0 * 1024.0) / secs;
  }
  {
    // Ping-pong: b echoes every frame straight back from its net thread.
    std::mutex mu;
    std::condition_variable cv;
    int pongs = 0;
    tart::net::ConnectionManager* b_raw = nullptr;
    TcpPair pair(
        [&](const std::string&, tart::transport::Frame) {
          const std::lock_guard<std::mutex> lk(mu);
          ++pongs;
          cv.notify_one();
        },
        [&](const std::string& peer, tart::transport::Frame f) {
          b_raw->send(peer, f);
        });
    b_raw = pair.b.get();
    std::vector<double> rtts_us;
    rtts_us.reserve(g_ping_pongs);
    for (int i = 0; i < g_ping_pongs; ++i) {
      const auto t0 = Clock::now();
      pair.a->send("b", data_frame(payload_bytes,
                                   static_cast<std::uint64_t>(i)));
      std::unique_lock<std::mutex> lk(mu);
      cv.wait(lk, [&] { return pongs > i; });
      rtts_us.push_back(
          std::chrono::duration<double, std::micro>(Clock::now() - t0)
              .count());
    }
    r.rtt_p50_us = percentile(rtts_us, 0.50);
    r.rtt_p99_us = percentile(rtts_us, 0.99);
  }
  return r;
}

// --- In-process NetworkLink baseline ---------------------------------------

Result bench_link(std::size_t payload_bytes) {
  Result r;
  tart::transport::LinkConfig cfg;
  cfg.base_delay = 0us;  // measure the mechanism, not a simulated wire
  {
    std::atomic<int> received{0};
    std::uint64_t bytes = 0;
    tart::transport::NetworkLink link(cfg, [&](std::vector<std::byte>) {
      received.fetch_add(1);
    });
    const auto t0 = Clock::now();
    for (int i = 0; i < g_stream_frames; ++i) {
      auto bytes_out = tart::transport::frame_to_bytes(
          data_frame(payload_bytes, static_cast<std::uint64_t>(i)));
      bytes += bytes_out.size();
      link.send(std::move(bytes_out));
    }
    while (received.load() < g_stream_frames) std::this_thread::sleep_for(1ms);
    const double secs =
        std::chrono::duration<double>(Clock::now() - t0).count();
    r.frames_per_sec = g_stream_frames / secs;
    r.mib_per_sec = static_cast<double>(bytes) / (1024.0 * 1024.0) / secs;
    link.shutdown();
  }
  {
    // Ping-pong across two links (one per direction), echo in the
    // receiver callback — the same topology as the TCP pair.
    std::mutex mu;
    std::condition_variable cv;
    int pongs = 0;
    std::unique_ptr<tart::transport::NetworkLink> back;
    tart::transport::NetworkLink forth(cfg, [&](std::vector<std::byte> p) {
      back->send(std::move(p));
    });
    back = std::make_unique<tart::transport::NetworkLink>(
        cfg, [&](std::vector<std::byte>) {
          const std::lock_guard<std::mutex> lk(mu);
          ++pongs;
          cv.notify_one();
        });
    std::vector<double> rtts_us;
    rtts_us.reserve(g_ping_pongs);
    for (int i = 0; i < g_ping_pongs; ++i) {
      const auto t0 = Clock::now();
      forth.send(tart::transport::frame_to_bytes(
          data_frame(payload_bytes, static_cast<std::uint64_t>(i))));
      std::unique_lock<std::mutex> lk(mu);
      cv.wait(lk, [&] { return pongs > i; });
      rtts_us.push_back(
          std::chrono::duration<double, std::micro>(Clock::now() - t0)
              .count());
    }
    r.rtt_p50_us = percentile(rtts_us, 0.50);
    r.rtt_p99_us = percentile(rtts_us, 0.99);
    forth.shutdown();
    back->shutdown();
  }
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  bool json = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else if (!tart::bench::parse_json_flag(arg, &json, &json_path)) {
      std::fprintf(stderr, "usage: bench_net [--smoke] [--json[=FILE]]\n");
      return 2;
    }
  }
  if (smoke) {
    g_stream_frames /= 10;
    g_ping_pongs /= 10;
  }

  tart::bench::banner(
      "Socket transport vs in-process link (loopback floor)",
      "supports §III.A distributed runs: transport cost isolated from "
      "protocol cost");

  tart::bench::Table table({"transport", "payload B", "frames/s", "MiB/s",
                            "rtt p50 us", "rtt p99 us"});
  tart::bench::JsonResult results("net");
  const std::vector<std::size_t> payloads =
      smoke ? std::vector<std::size_t>{16, 4096}
            : std::vector<std::size_t>{16, 256, 4096};
  for (const std::size_t payload : payloads) {
    const Result tcp = bench_tcp(payload);
    table.row({"tcp-loopback", tart::bench::fmt("%zu", payload),
               tart::bench::fmt("%.0f", tcp.frames_per_sec),
               tart::bench::fmt("%.1f", tcp.mib_per_sec),
               tart::bench::fmt("%.1f", tcp.rtt_p50_us),
               tart::bench::fmt("%.1f", tcp.rtt_p99_us)});
    const Result link = bench_link(payload);
    table.row({"in-process", tart::bench::fmt("%zu", payload),
               tart::bench::fmt("%.0f", link.frames_per_sec),
               tart::bench::fmt("%.1f", link.mib_per_sec),
               tart::bench::fmt("%.1f", link.rtt_p50_us),
               tart::bench::fmt("%.1f", link.rtt_p99_us)});
    for (const auto& [name, r] :
         {std::pair<const char*, const Result&>{"tcp", tcp},
          std::pair<const char*, const Result&>{"link", link}}) {
      const std::string key = tart::bench::fmt("%s_%zuB", name, payload);
      results.metric(key + "_frames_s", r.frames_per_sec);
      results.metric(key + "_mib_s", r.mib_per_sec);
      results.metric(key + "_rtt_p50_us", r.rtt_p50_us);
      results.metric(key + "_rtt_p99_us", r.rtt_p99_us);
    }
  }
  table.print();
  if (json && !results.write(json_path)) return 1;
  if (smoke) std::printf("smoke ok\n");
  return 0;
}
