// Ingress gateway throughput: what does log-before-ack cost, and how much
// of it does group commit buy back? Closed-loop HTTP clients (1/8/64) blast
// POST /inject against an in-process Gateway whose runtime persists to a
// fresh log directory, with the group-commit batcher on vs off (off = one
// write+fsync per request). Reports acked req/s and client-observed p50/p99
// ack latency, plus the committer's realized batch shape.
//
//   bench_gateway [--smoke] [--json[=FILE]]
//   (--smoke: tiny load, CI sanity check; --json: machine-readable results)
#include <sys/stat.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/logging.h"
#include "core/runtime.h"
#include "exp_util.h"
#include "gateway/gateway.h"
#include "gateway/http_client.h"
#include "net/topologies.h"

namespace {

using namespace std::chrono_literals;
using Clock = std::chrono::steady_clock;

struct Result {
  double acked_per_sec = 0;
  double p50_us = 0;
  double p99_us = 0;
  std::uint64_t acked = 0;
  std::uint64_t commit_batches = 0;
  std::uint64_t commit_records = 0;
};

double percentile(std::vector<double>& v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const auto idx =
      static_cast<std::size_t>(p * static_cast<double>(v.size() - 1));
  return v[idx];
}

std::string make_temp_dir() {
  char tmpl[] = "/tmp/tart_bench_gw_XXXXXX";
  const char* dir = mkdtemp(tmpl);
  if (dir == nullptr) {
    std::perror("mkdtemp");
    std::exit(1);
  }
  return dir;
}

/// One configuration: `clients` closed-loop connections for `duration`,
/// against a fresh runtime + gateway + log directory.
Result run_config(int clients, bool group_commit,
                  std::chrono::milliseconds duration) {
  const std::string dir = make_temp_dir();

  auto built = tart::net::build_topology("chain", {{"stages", "1"}});
  std::map<tart::ComponentId, tart::EngineId> placement;
  for (const auto& [name, id] : built.components)
    placement[id] = tart::EngineId(0);
  tart::core::RuntimeConfig config;
  config.log_dir = dir;  // durability on: every ack is preceded by an fsync
  tart::core::Runtime rt(built.topology, placement, config);
  rt.start();

  tart::gateway::Gateway::Options options;
  options.group_commit = group_commit;
  tart::gateway::Gateway gw(&rt, options, built.inputs, built.outputs);
  const std::string addr = "127.0.0.1:" + std::to_string(gw.port());

  std::atomic<bool> stop{false};
  std::mutex mu;
  std::vector<double> all_latencies_us;
  std::atomic<std::uint64_t> acked{0};

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(clients));
  for (int t = 0; t < clients; ++t) {
    threads.emplace_back([&] {
      auto http = tart::gateway::BlockingHttpClient::connect(addr, 5s);
      if (!http) return;
      std::vector<double> latencies_us;
      while (!stop.load(std::memory_order_relaxed)) {
        const auto t0 = Clock::now();
        try {
          const auto resp = http->post("/inject/in", "x", "text/plain");
          if (resp.status != 200) continue;  // e.g. 429 under overload
        } catch (const std::exception&) {
          break;
        }
        latencies_us.push_back(
            std::chrono::duration<double, std::micro>(Clock::now() - t0)
                .count());
        acked.fetch_add(1, std::memory_order_relaxed);
      }
      const std::lock_guard<std::mutex> lk(mu);
      all_latencies_us.insert(all_latencies_us.end(), latencies_us.begin(),
                              latencies_us.end());
    });
  }

  const auto t0 = Clock::now();
  std::this_thread::sleep_for(duration);
  stop.store(true);
  for (auto& t : threads) t.join();
  const double secs = std::chrono::duration<double>(Clock::now() - t0).count();

  Result r;
  r.acked = acked.load();
  r.acked_per_sec = static_cast<double>(r.acked) / secs;
  r.p50_us = percentile(all_latencies_us, 0.50);
  r.p99_us = percentile(all_latencies_us, 0.99);
  const auto counters = gw.counters();
  r.commit_batches = counters.commit_batches;
  r.commit_records = counters.commit_records;

  gw.shutdown();
  rt.stop();
  std::filesystem::remove_all(dir);
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  bool json = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else if (!tart::bench::parse_json_flag(arg, &json, &json_path)) {
      std::fprintf(stderr, "usage: bench_gateway [--smoke] [--json[=FILE]]\n");
      return 2;
    }
  }
  tart::set_log_level(tart::LogLevel::kError);

  tart::bench::banner(
      "HTTP ingress gateway: log-before-ack throughput, group commit on/off",
      "§II.E external inputs are logged before they affect the system; "
      "group commit amortizes the per-ack fsync");

  const std::vector<int> client_counts =
      smoke ? std::vector<int>{1, 4} : std::vector<int>{1, 8, 64};
  const auto duration = smoke ? 200ms : 2000ms;

  tart::bench::Table table({"clients", "group commit", "acked req/s",
                            "ack p50 us", "ack p99 us", "avg batch"});
  tart::bench::JsonResult results("gateway");
  double best_ratio = 0;
  for (const int clients : client_counts) {
    double grouped_rate = 0;
    for (const bool group_commit : {true, false}) {
      const Result r = run_config(clients, group_commit, duration);
      const double avg_batch =
          r.commit_batches == 0
              ? 0.0
              : static_cast<double>(r.commit_records) /
                    static_cast<double>(r.commit_batches);
      table.row({tart::bench::fmt("%d", clients), group_commit ? "on" : "off",
                 tart::bench::fmt("%.0f", r.acked_per_sec),
                 tart::bench::fmt("%.1f", r.p50_us),
                 tart::bench::fmt("%.1f", r.p99_us),
                 tart::bench::fmt("%.1f", avg_batch)});
      const std::string key = tart::bench::fmt(
          "c%d_gc_%s", clients, group_commit ? "on" : "off");
      results.metric(key + "_req_s", r.acked_per_sec);
      results.metric(key + "_ack_p50_us", r.p50_us);
      results.metric(key + "_ack_p99_us", r.p99_us);
      results.metric(key + "_avg_batch", avg_batch);
      if (group_commit)
        grouped_rate = r.acked_per_sec;
      else if (r.acked_per_sec > 0)
        best_ratio = std::max(best_ratio, grouped_rate / r.acked_per_sec);
    }
  }
  table.print();
  std::printf("\nbest group-commit speedup: %.2fx\n", best_ratio);
  results.metric("best_group_commit_speedup", best_ratio);
  if (json && !results.write(json_path)) return 1;
  if (smoke) std::printf("smoke ok\n");
  return 0;
}
