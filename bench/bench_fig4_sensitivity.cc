// Figure 4 — "Sensitivity of performance to estimator."
//
// §III.B replaces the gaussian per-tick jitter with measurements from a
// real machine (here: the synthetic empirical bank — see DESIGN.md
// substitutions — whose regression Part B of bench_fig2 reports). The
// simulation then sweeps the estimator coefficient from 48 to 70
// microseconds per iteration over a one-minute run at 1000 messages per
// second per sender (120,000 total messages), reporting deterministic
// latency, non-deterministic latency, messages received out of real-time
// order (x10 in the paper's plot), and curiosity probes.
//
// Paper's findings to reproduce: deterministic latency is U-shaped with
// its minimum near the regression coefficient (~60-62 us/iteration, nearly
// flat between); out-of-order messages (<10%) and probes (~1.5/message)
// also bottom out there; non-deterministic latency is flat.
#include <cstdio>

#include "exp_util.h"
#include "sim/tart_sim.h"
#include "stats/regression.h"

int main() {
  tart::bench::banner("Figure 4: sensitivity of performance to estimator",
                      "S III.B, Figure 4 (minimum near the regression "
                      "coefficient; flat 60-62)");

  tart::sim::EmpiricalJitterBank::Config bank_cfg;
  const tart::sim::EmpiricalJitterBank bank(bank_cfg);

  // Report the bank's own regression (the analogue of Equation 2).
  {
    std::vector<double> x, y;
    for (const auto& [k, ns] : bank.all_samples()) {
      x.push_back(k);
      y.push_back(ns);
    }
    const auto fit = tart::stats::fit_through_origin(x, y);
    std::printf("Empirical-bank regression: %.1f ns/iteration, R^2 = %.4f\n",
                fit.slope, fit.r_squared);
  }

  // Non-deterministic baseline is estimator-independent: run once.
  tart::sim::SimConfig base;
  base.duration_us = 60e6;
  base.seed = 3;
  base.bank = &bank;
  base.mode = tart::sim::SimMode::kNonDeterministic;
  const auto nd = run_simulation(base);

  tart::bench::Table table({"estimator (us/iter)", "det latency (us)",
                            "non-det latency (us)", "out-of-RT-order (x10)",
                            "probes/msg", "pessimism (us/msg)"});
  double best_latency = 1e18;
  double best_coef = 0;
  for (int coef_us = 48; coef_us <= 70; coef_us += 2) {
    tart::sim::SimConfig cfg = base;
    cfg.mode = tart::sim::SimMode::kDeterministic;
    cfg.estimator_ns_per_iter = coef_us * 1000.0;
    const auto det = run_simulation(cfg);
    if (det.avg_latency_us < best_latency) {
      best_latency = det.avg_latency_us;
      best_coef = coef_us;
    }
    table.row({
        tart::bench::fmt("%d", coef_us),
        tart::bench::fmt("%.0f", det.avg_latency_us),
        tart::bench::fmt("%.0f", nd.avg_latency_us),
        tart::bench::fmt("%llu",
                         static_cast<unsigned long long>(det.out_of_order *
                                                         10)),
        tart::bench::fmt("%.2f", static_cast<double>(det.probes) /
                                     static_cast<double>(det.completed)),
        tart::bench::fmt("%.1f", det.pessimism_wait_us /
                                     static_cast<double>(det.completed)),
    });
  }
  table.print();
  std::printf(
      "\nBest deterministic latency at %.0f us/iteration (paper: best at 60,"
      "\nnearly flat through 62, regression value 61.827).\n",
      best_coef);
  return 0;
}
