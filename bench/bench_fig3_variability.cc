// Figure 3 — "Latency as a function of variability of sender computation."
//
// Simulated three-processor deployment of the Figure-1 system (§III.A):
// senders run 60 us/iteration loops (mean 10 iterations per message),
// per-virtual-tick real-time jitter is N(1, 0.1^2), curiosity probes cost
// 20 us, external clients are Poisson at 1 msg/1000 us/sender, and the
// merger takes a fixed 400 us/event (sender processors ~60% utilized,
// merger ~80%).
//
// Variability is staged from constant (always 10 iterations) to uniform
// [1, 19], and three execution modes are compared: Non-deterministic
// (arrival order), Deterministic (virtual-time order, curiosity silence,
// non-prescient busy senders), and Prescient (busy senders know the
// remaining iteration count).
//
// Paper's findings to reproduce: greater variability -> greater latency in
// every mode; determinism overhead stays small (2.8%-4.1%) and roughly
// flat; prescience is only slightly better.
#include <cstdio>

#include "exp_util.h"
#include "sim/tart_sim.h"

int main() {
  tart::bench::banner("Figure 3: latency vs variability of sender computation",
                      "S III.A, Figure 3 (overhead 2.8%-4.1%; prescient "
                      "slightly better)");

  const std::vector<tart::sim::IterationDist> stages = {
      {10, 10}, {8, 12}, {6, 14}, {4, 16}, {2, 18}, {1, 19}};

  tart::bench::Table table({"SD compute (us)", "iterations",
                            "non-det (us)", "det (us)", "det ovh",
                            "prescient (us)", "presc ovh", "probes/msg",
                            "out-of-order"});

  for (const auto& iters : stages) {
    tart::sim::SimConfig cfg;
    cfg.duration_us = 60e6;  // one simulated minute
    cfg.seed = 7;
    cfg.iterations = iters;

    cfg.mode = tart::sim::SimMode::kNonDeterministic;
    const auto nd = run_simulation(cfg);
    cfg.mode = tart::sim::SimMode::kDeterministic;
    const auto det = run_simulation(cfg);
    cfg.mode = tart::sim::SimMode::kPrescient;
    const auto pre = run_simulation(cfg);

    table.row({
        tart::bench::fmt("%.1f", iters.compute_sd_us(60.0)),
        tart::bench::fmt("[%d,%d]", iters.min, iters.max),
        tart::bench::fmt("%.0f", nd.avg_latency_us),
        tart::bench::fmt("%.0f", det.avg_latency_us),
        tart::bench::fmt("%+.1f%%", 100.0 *
                                        (det.avg_latency_us -
                                         nd.avg_latency_us) /
                                        nd.avg_latency_us),
        tart::bench::fmt("%.0f", pre.avg_latency_us),
        tart::bench::fmt("%+.1f%%", 100.0 *
                                        (pre.avg_latency_us -
                                         nd.avg_latency_us) /
                                        nd.avg_latency_us),
        tart::bench::fmt("%.2f", static_cast<double>(det.probes) /
                                     static_cast<double>(det.completed)),
        tart::bench::fmt("%llu",
                         static_cast<unsigned long long>(det.out_of_order)),
    });
  }
  table.print();
  std::printf(
      "\nExpected shape (paper): latency grows with variability in every\n"
      "mode; determinism overhead small (2.8%%-4.1%%) and insensitive to\n"
      "variability; prescient only slightly better than deterministic.\n");
  return 0;
}
