// Live-migration experiment (docs/PLACEMENT.md): what does moving a
// stateful component between engines cost, and how long is the blackout?
//
// Three NetHosts share this process over real loopback sockets — "left"
// (sender1 + sender2), "mid" (empty), "right" (merger) — the same shape
// the migration process tests use. The harness grows sender2's state by
// injecting sentences over an N-word vocabulary, then ping-pongs the
// component left<->mid, reading the coordinator's own measurements:
//
//   - slice bytes + transfer ms: the bulk round, while the component is
//     STILL SERVING on the source (so its duration is rent, not blackout);
//   - blackout ms: seal -> commit-ack, the only window where the
//     component serves nowhere. The claim under test is that blackout
//     stays flat as state grows, because the delta round ships only what
//     arrived during the bulk transfer (here: nothing).
//
// --smoke: one small round trip asserting the migration completes, the
// blackout is bounded, and ownership actually moved (scripts/check.sh).
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "apps/wordcount.h"
#include "exp_util.h"
#include "net/host.h"
#include "net/socket.h"

namespace {

using namespace std::chrono_literals;
using tart::ComponentId;
using tart::EngineId;
using tart::Payload;
using tart::VirtualTime;
using tart::net::DeploymentConfig;
using tart::net::HostOptions;
using tart::net::NetHost;
using tart::placement::MigrationResult;

std::string free_addr() {
  std::string err;
  tart::net::Fd fd =
      tart::net::listen_tcp(*tart::net::SockAddr::parse("127.0.0.1:0"), &err);
  return "127.0.0.1:" + std::to_string(tart::net::local_port(fd.get()));
}

std::string make_temp_dir() {
  char tmpl[] = "/tmp/tart_bench_mig_XXXXXX";
  const char* dir = mkdtemp(tmpl);
  return dir == nullptr ? "/tmp" : dir;
}

/// One hosted deployment; hosts run until the struct is destroyed.
struct Cluster {
  DeploymentConfig deploy;
  std::vector<std::unique_ptr<NetHost>> hosts;  // left, mid, right
  std::vector<std::thread> runners;

  explicit Cluster(const std::string& dir) {
    std::string text = "topology = wordcount\nparam senders = 2\n";
    for (const char* n : {"left", "mid", "right"}) {
      text += std::string("partition ") + n + " = " + free_addr() + "\n";
      text += std::string("control ") + n + " = " + free_addr() + "\n";
    }
    text +=
        "place sender1 = left\n"
        "place sender2 = left\n"
        "place merger = right\n";
    deploy = DeploymentConfig::parse(text);
    for (const char* n : {"left", "mid", "right"}) {
      HostOptions options;
      options.log_dir = dir + std::string("/") + n;
      std::filesystem::create_directories(options.log_dir);
      options.gauge_interval_ms = 0;
      hosts.push_back(std::make_unique<NetHost>(deploy, n, options));
    }
    for (auto& h : hosts) h->start();
    for (auto& h : hosts)
      runners.emplace_back([host = h.get()] { (void)host->run_until_shutdown(); });
  }

  ~Cluster() {
    for (auto& h : hosts) h->request_shutdown();
    for (auto& t : runners) t.join();
  }

  NetHost& left() { return *hosts[0]; }
  NetHost& mid() { return *hosts[1]; }
  NetHost& right() { return *hosts[2]; }
  EngineId engine(const char* name) const {
    return deploy.find_partition(name)->engine;
  }
};

/// Grows sender2's table to `vocab` distinct words, eight per sentence.
void grow_state(Cluster& c, int vocab) {
  const tart::WireId in = c.left().built().inputs.at("sender2");
  std::int64_t vt = 1000;
  std::vector<std::string> words;
  for (int w = 0; w < vocab; ++w) {
    words.push_back("w" + std::to_string(w));
    if (words.size() == 8 || w + 1 == vocab) {
      c.left().runtime().inject_at(in, VirtualTime(vt), tart::apps::sentence(words));
      words.clear();
      vt += 1000;
    }
  }
  (void)c.left().runtime().drain();
  (void)c.right().runtime().drain();
}

struct CaseResult {
  MigrationResult out;   // left -> mid
  MigrationResult back;  // mid -> left
};

CaseResult run_case(int vocab) {
  const std::string dir = make_temp_dir();
  Cluster c(dir);
  grow_state(c, vocab);
  const ComponentId sender2 = c.left().built().components.at("sender2");
  CaseResult r;
  r.out = c.left().coordinator().migrate(sender2, c.engine("mid"));
  if (r.out.ok) r.back = c.mid().coordinator().migrate(sender2, c.engine("left"));
  std::filesystem::remove_all(dir);
  return r;
}

std::string cell(const MigrationResult& r) {
  if (!r.ok) return "FAILED: " + r.error;
  return tart::bench::fmt("%.1f", r.blackout_ms);
}

int run_smoke() {
  const CaseResult r = run_case(/*vocab=*/64);
  if (!r.out.ok || !r.back.ok) {
    std::fprintf(stderr, "SMOKE FAIL: migration did not complete (%s%s)\n",
                 r.out.error.c_str(), r.back.error.c_str());
    return 1;
  }
  if (r.out.slice_bytes == 0 || r.back.epoch <= r.out.epoch) {
    std::fprintf(stderr, "SMOKE FAIL: slice empty or epoch did not advance\n");
    return 1;
  }
  if (r.out.blackout_ms > 5000 || r.back.blackout_ms > 5000) {
    std::fprintf(stderr, "SMOKE FAIL: blackout exceeded 5s\n");
    return 1;
  }
  std::printf("SMOKE PASS: round trip ok, slice=%llu B, blackout %.1f / %.1f ms\n",
              static_cast<unsigned long long>(r.out.slice_bytes),
              r.out.blackout_ms, r.back.blackout_ms);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "--smoke") == 0) return run_smoke();

  tart::bench::banner(
      "Live migration: transfer cost vs. cutover blackout",
      "Strom et al., ICDCS 2009 (migration as recovery, §II.F); "
      "docs/PLACEMENT.md");
  tart::bench::Table table({"vocab words", "slice KiB", "transfer ms",
                            "xfer MiB/s", "blackout ms", "blackout back ms"});
  for (const int vocab : {64, 512, 4096, 16384}) {
    const CaseResult r = run_case(vocab);
    if (!r.out.ok) {
      table.row({std::to_string(vocab), cell(r.out), "-", "-", "-", "-"});
      continue;
    }
    const double kib = static_cast<double>(r.out.slice_bytes) / 1024.0;
    const double mib_s = r.out.transfer_ms > 0
                             ? kib / 1024.0 / (r.out.transfer_ms / 1000.0)
                             : 0.0;
    table.row({std::to_string(vocab), tart::bench::fmt("%.1f", kib),
               tart::bench::fmt("%.1f", r.out.transfer_ms),
               tart::bench::fmt("%.1f", mib_s), cell(r.out), cell(r.back)});
  }
  table.print();
  std::printf(
      "\nReading: slice/transfer grow with state; blackout should stay "
      "flat (delta round ships only what arrived during the bulk round).\n");
  return 0;
}
