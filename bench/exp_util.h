// Shared helpers for the experiment harnesses: aligned table printing and
// header banners, so every bench emits the same readable report format.
#pragma once

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <string>
#include <vector>

namespace tart::bench {

inline void banner(const std::string& title, const std::string& paper_ref) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("Paper reference: %s\n", paper_ref.c_str());
  std::printf("================================================================\n");
}

class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void row(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

  void print() const {
    std::vector<std::size_t> width(headers_.size());
    for (std::size_t i = 0; i < headers_.size(); ++i)
      width[i] = headers_[i].size();
    for (const auto& r : rows_)
      for (std::size_t i = 0; i < r.size() && i < width.size(); ++i)
        width[i] = std::max(width[i], r[i].size());

    auto print_row = [&](const std::vector<std::string>& cells) {
      for (std::size_t i = 0; i < cells.size() && i < width.size(); ++i)
        std::printf("| %-*s ", static_cast<int>(width[i]), cells[i].c_str());
      std::printf("|\n");
    };
    print_row(headers_);
    for (std::size_t i = 0; i < headers_.size(); ++i)
      std::printf("|%s", std::string(width[i] + 2, '-').c_str());
    std::printf("|\n");
    for (const auto& r : rows_) print_row(r);
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string fmt(const char* format, ...) {
  char buf[128];
  va_list args;
  va_start(args, format);
  std::vsnprintf(buf, sizeof(buf), format, args);
  va_end(args);
  return buf;
}

}  // namespace tart::bench
