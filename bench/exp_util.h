// Shared helpers for the experiment harnesses: aligned table printing and
// header banners, so every bench emits the same readable report format.
#pragma once

#include <algorithm>
#include <cstdarg>
#include <cstdint>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

namespace tart::bench {

inline void banner(const std::string& title, const std::string& paper_ref) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("Paper reference: %s\n", paper_ref.c_str());
  std::printf("================================================================\n");
}

class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void row(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

  void print() const {
    std::vector<std::size_t> width(headers_.size());
    for (std::size_t i = 0; i < headers_.size(); ++i)
      width[i] = headers_[i].size();
    for (const auto& r : rows_)
      for (std::size_t i = 0; i < r.size() && i < width.size(); ++i)
        width[i] = std::max(width[i], r[i].size());

    auto print_row = [&](const std::vector<std::string>& cells) {
      for (std::size_t i = 0; i < cells.size() && i < width.size(); ++i)
        std::printf("| %-*s ", static_cast<int>(width[i]), cells[i].c_str());
      std::printf("|\n");
    };
    print_row(headers_);
    for (std::size_t i = 0; i < headers_.size(); ++i)
      std::printf("|%s", std::string(width[i] + 2, '-').c_str());
    std::printf("|\n");
    for (const auto& r : rows_) print_row(r);
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string fmt(const char* format, ...) {
  char buf[128];
  va_list args;
  va_start(args, format);
  std::vsnprintf(buf, sizeof(buf), format, args);
  va_end(args);
  return buf;
}

/// Machine-readable companion to the tables: `--json[=FILE]` makes a bench
/// collect flat named metrics and emit one JSON object
/// `{"bench":NAME,"metrics":{...}}`. scripts/check.sh --smoke gathers
/// these into BENCH_<name>.json so CI runs leave comparable artifacts.
class JsonResult {
 public:
  explicit JsonResult(std::string bench) : bench_(std::move(bench)) {}

  void metric(const std::string& key, double value) {
    entries_.emplace_back(key, fmt("%.6g", value));
  }
  void metric(const std::string& key, std::uint64_t value) {
    entries_.emplace_back(key,
                          fmt("%llu", static_cast<unsigned long long>(value)));
  }

  /// Writes to `path`, or stdout when path is empty. Keys are emitted in
  /// insertion order; values are bare JSON numbers.
  bool write(const std::string& path) const {
    std::string out = "{\"bench\":\"" + bench_ + "\",\"metrics\":{";
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      if (i > 0) out += ',';
      out += '"' + entries_[i].first + "\":" + entries_[i].second;
    }
    out += "}}\n";
    if (path.empty()) {
      std::fputs(out.c_str(), stdout);
      return true;
    }
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", path.c_str());
      return false;
    }
    const bool ok = std::fwrite(out.data(), 1, out.size(), f) == out.size();
    std::fclose(f);
    return ok;
  }

 private:
  std::string bench_;
  std::vector<std::pair<std::string, std::string>> entries_;
};

/// Shared flag vocabulary: recognizes `--json` / `--json=FILE` in `arg`.
/// Returns true when consumed (json_path set to "" for bare --json).
inline bool parse_json_flag(const std::string& arg, bool* json,
                            std::string* json_path) {
  if (arg == "--json") {
    *json = true;
    json_path->clear();
    return true;
  }
  if (arg.rfind("--json=", 0) == 0) {
    *json = true;
    *json_path = arg.substr(7);
    return true;
  }
  return false;
}

}  // namespace tart::bench
