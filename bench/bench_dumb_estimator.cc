// The "dumb" estimator experiment (§III.A, text) — re-running Figure 3's
// sweep with an estimator that always predicts 600 us (the mean
// computation time), ignoring the iteration count.
//
// Paper's findings to reproduce: at zero variability the dumb estimator
// slightly OUTPERFORMS the smart one with non-prescient silence estimates
// (the constant estimate is exact there, and a probed busy sender knows
// its output time precisely, while the smart non-prescient sender only
// promises one iteration ahead); as variability grows, the mismatch
// behaves like operating-system jitter and the overhead climbs steadily,
// reaching ~13% for iterations uniform in [1, 19].
#include <cstdio>

#include "exp_util.h"
#include "sim/tart_sim.h"

int main() {
  tart::bench::banner("Dumb (constant-600us) estimator vs smart estimator",
                      "S III.A text (dumb wins slightly at SD=0; overhead "
                      "grows to ~13% at U[1,19])");

  const std::vector<tart::sim::IterationDist> stages = {
      {10, 10}, {8, 12}, {6, 14}, {4, 16}, {2, 18}, {1, 19}};

  tart::bench::Table table({"SD compute (us)", "iterations", "non-det (us)",
                            "smart det (us)", "smart ovh", "dumb det (us)",
                            "dumb ovh"});

  for (const auto& iters : stages) {
    tart::sim::SimConfig cfg;
    cfg.duration_us = 60e6;
    cfg.seed = 7;
    cfg.iterations = iters;

    cfg.mode = tart::sim::SimMode::kNonDeterministic;
    const auto nd = run_simulation(cfg);
    cfg.mode = tart::sim::SimMode::kDeterministic;
    const auto smart = run_simulation(cfg);
    cfg.dumb_estimator = true;
    const auto dumb = run_simulation(cfg);

    const auto overhead = [&](double latency) {
      return 100.0 * (latency - nd.avg_latency_us) / nd.avg_latency_us;
    };
    table.row({
        tart::bench::fmt("%.1f", iters.compute_sd_us(60.0)),
        tart::bench::fmt("[%d,%d]", iters.min, iters.max),
        tart::bench::fmt("%.0f", nd.avg_latency_us),
        tart::bench::fmt("%.0f", smart.avg_latency_us),
        tart::bench::fmt("%+.1f%%", overhead(smart.avg_latency_us)),
        tart::bench::fmt("%.0f", dumb.avg_latency_us),
        tart::bench::fmt("%+.1f%%", overhead(dumb.avg_latency_us)),
    });
  }
  table.print();
  std::printf(
      "\nExpected shape (paper): dumb slightly beats smart at SD=0, then\n"
      "degrades steadily with variability, up to ~13%% at [1,19], while\n"
      "smart stays in the 2.8-4.1%% band.\n");
  return 0;
}
