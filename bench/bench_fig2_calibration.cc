// Figure 2 — "Computation time as a function of number of iterations."
//
// The paper executes Code Body 1 10,000 times with random iteration counts
// in [1, 19] (each inner loop run 300 times to beat the clock resolution)
// and fits a through-origin regression, obtaining tau = 61827 * xi_1 ticks
// with R^2 = 0.9154, a highly right-skewed residual distribution, and near
// zero residual-vs-iteration correlation.
//
// Part A re-runs the measurement natively: the actual word-count loop on
// this machine, wall-clock timed. The absolute coefficient differs (this
// is not a 2005 ThinkPad T42 under JDK 5), but the linearity, fit quality,
// and residual shape reproduce.
//
// Part B fits the synthetic empirical jitter bank (the DESIGN.md
// substitution for the paper's imported trace) and verifies it matches the
// paper's trace statistics; Figure 4's simulation resamples this bank.
#include <chrono>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "common/rng.h"
#include "exp_util.h"
#include "sim/jitter.h"
#include "stats/histogram.h"
#include "stats/regression.h"

namespace {

using Clock = std::chrono::steady_clock;

/// Code Body 1, faithfully: per word, look up the running count, bump it,
/// and accumulate the prior counts.
std::int64_t process_sentence(std::map<std::string, std::int64_t>& map,
                              const std::vector<std::string>& sent) {
  std::int64_t count = 0;
  for (const auto& word : sent) {
    auto it = map.find(word);
    const std::int64_t prior = it == map.end() ? 0 : it->second;
    map[word] = prior + 1;
    count += prior;
  }
  return count;
}

void report_fit(const std::vector<double>& x, const std::vector<double>& y,
                const char* label, double paper_coef, double paper_r2) {
  const auto fit = tart::stats::fit_through_origin(x, y);
  std::vector<double> residuals;
  residuals.reserve(x.size());
  for (std::size_t i = 0; i < x.size(); ++i)
    residuals.push_back(y[i] - fit.predict(x[i]));

  tart::bench::Table table(
      {"quantity", "paper", "measured"});
  table.row({"coefficient (ticks/iteration)",
             tart::bench::fmt("%.0f", paper_coef),
             tart::bench::fmt("%.1f", fit.slope)});
  table.row({"R^2", tart::bench::fmt("%.4f", paper_r2),
             tart::bench::fmt("%.4f", fit.r_squared)});
  table.row({"residual skewness", "> 0 (highly right-skewed)",
             tart::bench::fmt("%.2f", tart::stats::skewness(residuals))});
  table.row({"residual/iteration correlation", "close to zero",
             tart::bench::fmt("%.4f", tart::stats::pearson(x, residuals))});
  table.row({"samples", "10000", tart::bench::fmt("%zu", x.size())});
  std::printf("\n[%s]\n", label);
  table.print();
}

}  // namespace

int main() {
  tart::bench::banner(
      "Figure 2: service time distribution & estimator calibration",
      "S II.H, Figure 2, Equation 2 (tau = 61827 xi_1, R^2 = 0.9154)");

  // --- Part A: native measurement of Code Body 1 ---------------------------
  {
    tart::Rng rng(2009);
    std::vector<double> x, y;
    std::map<std::string, std::int64_t> state;
    // Vocabulary comparable to sentences hitting a shared word-count map.
    std::vector<std::string> vocab;
    for (int i = 0; i < 200; ++i) vocab.push_back("word" + std::to_string(i));

    constexpr int kSamples = 10000;
    constexpr int kInnerReps = 300;  // paper footnote 3
    volatile std::int64_t sink = 0;
    for (int s = 0; s < kSamples; ++s) {
      const int k = static_cast<int>(rng.uniform_int(1, 19));
      std::vector<std::string> sent;
      sent.reserve(static_cast<std::size_t>(k));
      for (int i = 0; i < k; ++i)
        sent.push_back(vocab[rng.bounded(vocab.size())]);

      const auto t0 = Clock::now();
      for (int rep = 0; rep < kInnerReps; ++rep)
        sink = sink + process_sentence(state, sent);
      const auto t1 = Clock::now();
      const double ns_per_call =
          static_cast<double>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
                  .count()) /
          kInnerReps;
      x.push_back(k);
      y.push_back(ns_per_call);
      if (state.size() > 100000) state.clear();
    }
    report_fit(x, y,
               "Part A: native Code Body 1 on this machine "
               "(absolute coefficient machine-dependent)",
               61827.0, 0.9154);
  }

  // --- Part B: the synthetic trace used by the Fig-4 simulation ------------
  {
    tart::sim::EmpiricalJitterBank::Config cfg;
    const tart::sim::EmpiricalJitterBank bank(cfg);
    std::vector<double> x, y;
    for (const auto& [k, ns] : bank.all_samples()) {
      x.push_back(k);
      y.push_back(ns);
    }
    report_fit(x, y,
               "Part B: synthetic empirical bank (stand-in for the paper's "
               "imported ThinkPad T42 trace; drives Figure 4)",
               61827.0, 0.9154);

    // Service-time histogram, the scatter in the paper's Figure 2.
    tart::stats::Histogram hist(100000.0, 20);  // 100 us buckets
    for (const double ns : y) hist.add(ns);
    std::printf("\nService time distribution (100 us buckets):\n%s",
                hist.render(14).c_str());
  }
  return 0;
}
