// Ablation B — checkpoint frequency (§II.F.2: "The checkpoint frequency is
// a tuning parameter: more frequent checkpointing reduces recovery time
// but increases overhead").
//
// Runs the Figure-1 word-count application on the real threaded runtime
// (senders on engine 0, merger on engine 1), sweeping the soft-checkpoint
// interval. For each setting it measures:
//   - failure-free cost: wall time to process the workload, bytes shipped
//     to the passive replica, and sender retention (trimmed by the
//     stability acks the merger's checkpoints generate);
//   - recovery: wall time from merger-engine failover to full catch-up.
//   - durable path (docs/RECOVERY.md): the same workload against a
//     log-dir-backed runtime with durable checkpoints enabled; one forced
//     checkpoint at the end gates log compaction, so the column pair shows
//     the checkpoint's on-disk size against the log bytes left after the
//     gate reclaimed everything the checkpoint covers.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>

#include "apps/wordcount.h"
#include "core/runtime.h"
#include "durability/manager.h"
#include "estimator/estimator.h"
#include "exp_util.h"

namespace {

using namespace std::chrono_literals;
using tart::EngineId;
using tart::PortId;
using tart::core::Topology;
using Clock = std::chrono::steady_clock;

constexpr int kMessagesPerSender = 1500;

struct App {
  Topology topo;
  tart::ComponentId s1, s2, merger;
  tart::WireId in1, in2, out;

  App() {
    s1 = topo.add("sender1", [] {
      return std::make_unique<tart::apps::WordCountSender>();
    });
    s2 = topo.add("sender2", [] {
      return std::make_unique<tart::apps::WordCountSender>();
    });
    merger = topo.add("merger", [] {
      return std::make_unique<tart::apps::TotalingMerger>();
    });
    for (const auto c : {s1, s2}) {
      topo.set_estimator(c, [] {
        return tart::estimator::per_iteration_estimator(61000.0);
      });
    }
    topo.set_estimator(merger, [] {
      return std::make_unique<tart::estimator::ConstantEstimator>(
          tart::TickDuration::micros(400));
    });
    in1 = topo.external_input(s1, PortId(0));
    in2 = topo.external_input(s2, PortId(0));
    topo.connect(s1, PortId(0), merger, PortId(0));
    topo.connect(s2, PortId(0), merger, PortId(0));
    out = topo.external_output(merger, PortId(0));
  }
};

double ms_between(Clock::time_point a, Clock::time_point b) {
  return static_cast<double>(
             std::chrono::duration_cast<std::chrono::microseconds>(b - a)
                 .count()) /
         1000.0;
}

std::string make_temp_dir() {
  char tmpl[] = "/tmp/tart_ablation_ckpt_XXXXXX";
  const char* dir = mkdtemp(tmpl);
  return dir == nullptr ? std::string() : std::string(dir);
}

void inject_workload(tart::core::Runtime& rt, const App& app) {
  for (int i = 0; i < kMessagesPerSender; ++i) {
    rt.inject_at(app.in1, tart::VirtualTime(1000 + i * 100000),
                 tart::apps::sentence({"the", "cat", "sat"}));
    rt.inject_at(app.in2, tart::VirtualTime(500 + i * 90000),
                 tart::apps::sentence({"dog", "ran"}));
  }
}

}  // namespace

int main() {
  tart::bench::banner("Ablation B: checkpoint frequency",
                      "S II.F.2 (more frequent checkpointing: faster "
                      "recovery, more overhead)");

  tart::bench::Table table({"ckpt every N msgs", "run (ms)",
                            "replica snapshots", "replica KB",
                            "sender retention", "recovery (ms)",
                            "durable run (ms)", "durable ckpt KB",
                            "log KB gated"});

  for (const std::uint64_t every_n : {0ULL, 1ULL, 4ULL, 16ULL, 64ULL}) {
    App app;
    tart::core::RuntimeConfig config;
    config.checkpoint.every_n_messages = every_n;
    config.checkpoint.full_every_k = 8;
    tart::core::Runtime rt(
        app.topo,
        {{app.s1, EngineId(0)}, {app.s2, EngineId(0)},
         {app.merger, EngineId(1)}},
        config);
    rt.start();

    const auto t0 = Clock::now();
    inject_workload(rt, app);
    if (!rt.drain(120s)) {
      std::printf("ERROR: failed to drain at every_n=%llu\n",
                  static_cast<unsigned long long>(every_n));
      return 1;
    }
    const auto t1 = Clock::now();
    const auto retained = rt.retained_messages(app.s1) +
                          rt.retained_messages(app.s2);
    const auto snapshots = rt.replica().snapshots_received();
    const auto bytes = rt.replica().bytes_received();

    // Failover: kill the merger's engine, restore from the replica, and
    // time until the replay has fully caught up (drained again).
    const auto r0 = Clock::now();
    rt.crash_engine(EngineId(1));
    rt.recover_engine(EngineId(1));
    if (!rt.drain(120s)) {
      std::printf("ERROR: failed to re-drain after failover\n");
      return 1;
    }
    const auto r1 = Clock::now();
    rt.stop();

    // Durable path: same workload, log-dir-backed, one forced durable
    // checkpoint at the end (which gates segment compaction).
    const std::string dir = make_temp_dir();
    double durable_ms = 0.0;
    std::uint64_t ckpt_bytes = 0;
    std::uint64_t log_bytes = 0;
    {
      App dapp;
      tart::core::RuntimeConfig dconfig;
      dconfig.checkpoint.every_n_messages = every_n;
      dconfig.checkpoint.full_every_k = 8;
      dconfig.log_dir = dir;
      dconfig.durability.enabled = true;
      // Small segments so "log KB gated" shows compaction actually deleting
      // covered files, not just one giant undeletable active segment.
      dconfig.durability.segment_bytes = 16ull << 10;
      tart::core::Runtime drt(
          dapp.topo,
          {{dapp.s1, EngineId(0)}, {dapp.s2, EngineId(0)},
           {dapp.merger, EngineId(1)}},
          dconfig);
      drt.start();
      const auto d0 = Clock::now();
      inject_workload(drt, dapp);
      if (!drt.drain(120s)) {
        std::printf("ERROR: failed to drain durable run\n");
        return 1;
      }
      durable_ms = ms_between(d0, Clock::now());
      const auto stats = drt.checkpoint_manager()->checkpoint_now();
      if (!stats.ok) {
        std::printf("ERROR: durable checkpoint failed: %s\n",
                    stats.error.c_str());
        return 1;
      }
      ckpt_bytes = stats.bytes;
      log_bytes = drt.log_bytes_on_disk();
      drt.stop();
    }
    if (!dir.empty()) std::filesystem::remove_all(dir);

    table.row({
        every_n == 0 ? std::string("off") : tart::bench::fmt("%llu",
                       static_cast<unsigned long long>(every_n)),
        tart::bench::fmt("%.1f", ms_between(t0, t1)),
        tart::bench::fmt("%llu", static_cast<unsigned long long>(snapshots)),
        tart::bench::fmt("%.1f", static_cast<double>(bytes) / 1024.0),
        tart::bench::fmt("%llu", static_cast<unsigned long long>(retained)),
        tart::bench::fmt("%.1f", ms_between(r0, r1)),
        tart::bench::fmt("%.1f", durable_ms),
        tart::bench::fmt("%.1f", static_cast<double>(ckpt_bytes) / 1024.0),
        tart::bench::fmt("%.1f", static_cast<double>(log_bytes) / 1024.0),
    });
  }
  table.print();
  std::printf(
      "\nExpected shape: frequent checkpoints cost replica bandwidth but\n"
      "trim retention aggressively and make failover replay (and hence\n"
      "recovery time) short; with checkpointing off, recovery replays the\n"
      "entire external log.\n");
  return 0;
}
