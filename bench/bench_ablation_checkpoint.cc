// Ablation B — checkpoint frequency (§II.F.2: "The checkpoint frequency is
// a tuning parameter: more frequent checkpointing reduces recovery time
// but increases overhead").
//
// Runs the Figure-1 word-count application on the real threaded runtime
// (senders on engine 0, merger on engine 1), sweeping the soft-checkpoint
// interval. For each setting it measures:
//   - failure-free cost: wall time to process the workload, bytes shipped
//     to the passive replica, and sender retention (trimmed by the
//     stability acks the merger's checkpoints generate);
//   - recovery: wall time from merger-engine failover to full catch-up.
#include <chrono>
#include <cstdio>

#include "apps/wordcount.h"
#include "core/runtime.h"
#include "estimator/estimator.h"
#include "exp_util.h"

namespace {

using namespace std::chrono_literals;
using tart::EngineId;
using tart::PortId;
using tart::core::Topology;
using Clock = std::chrono::steady_clock;

constexpr int kMessagesPerSender = 1500;

struct App {
  Topology topo;
  tart::ComponentId s1, s2, merger;
  tart::WireId in1, in2, out;

  App() {
    s1 = topo.add("sender1", [] {
      return std::make_unique<tart::apps::WordCountSender>();
    });
    s2 = topo.add("sender2", [] {
      return std::make_unique<tart::apps::WordCountSender>();
    });
    merger = topo.add("merger", [] {
      return std::make_unique<tart::apps::TotalingMerger>();
    });
    for (const auto c : {s1, s2}) {
      topo.set_estimator(c, [] {
        return tart::estimator::per_iteration_estimator(61000.0);
      });
    }
    topo.set_estimator(merger, [] {
      return std::make_unique<tart::estimator::ConstantEstimator>(
          tart::TickDuration::micros(400));
    });
    in1 = topo.external_input(s1, PortId(0));
    in2 = topo.external_input(s2, PortId(0));
    topo.connect(s1, PortId(0), merger, PortId(0));
    topo.connect(s2, PortId(0), merger, PortId(0));
    out = topo.external_output(merger, PortId(0));
  }
};

double ms_between(Clock::time_point a, Clock::time_point b) {
  return static_cast<double>(
             std::chrono::duration_cast<std::chrono::microseconds>(b - a)
                 .count()) /
         1000.0;
}

}  // namespace

int main() {
  tart::bench::banner("Ablation B: checkpoint frequency",
                      "S II.F.2 (more frequent checkpointing: faster "
                      "recovery, more overhead)");

  tart::bench::Table table({"ckpt every N msgs", "run (ms)",
                            "replica snapshots", "replica KB",
                            "sender retention", "recovery (ms)"});

  for (const std::uint64_t every_n : {0ULL, 1ULL, 4ULL, 16ULL, 64ULL}) {
    App app;
    tart::core::RuntimeConfig config;
    config.checkpoint.every_n_messages = every_n;
    config.checkpoint.full_every_k = 8;
    tart::core::Runtime rt(
        app.topo,
        {{app.s1, EngineId(0)}, {app.s2, EngineId(0)},
         {app.merger, EngineId(1)}},
        config);
    rt.start();

    const auto t0 = Clock::now();
    for (int i = 0; i < kMessagesPerSender; ++i) {
      rt.inject_at(app.in1, tart::VirtualTime(1000 + i * 100000),
                   tart::apps::sentence({"the", "cat", "sat"}));
      rt.inject_at(app.in2, tart::VirtualTime(500 + i * 90000),
                   tart::apps::sentence({"dog", "ran"}));
    }
    if (!rt.drain(120s)) {
      std::printf("ERROR: failed to drain at every_n=%llu\n",
                  static_cast<unsigned long long>(every_n));
      return 1;
    }
    const auto t1 = Clock::now();
    const auto retained = rt.retained_messages(app.s1) +
                          rt.retained_messages(app.s2);
    const auto snapshots = rt.replica().snapshots_received();
    const auto bytes = rt.replica().bytes_received();

    // Failover: kill the merger's engine, restore from the replica, and
    // time until the replay has fully caught up (drained again).
    const auto r0 = Clock::now();
    rt.crash_engine(EngineId(1));
    rt.recover_engine(EngineId(1));
    if (!rt.drain(120s)) {
      std::printf("ERROR: failed to re-drain after failover\n");
      return 1;
    }
    const auto r1 = Clock::now();
    rt.stop();

    table.row({
        every_n == 0 ? std::string("off") : tart::bench::fmt("%llu",
                       static_cast<unsigned long long>(every_n)),
        tart::bench::fmt("%.1f", ms_between(t0, t1)),
        tart::bench::fmt("%llu", static_cast<unsigned long long>(snapshots)),
        tart::bench::fmt("%.1f", static_cast<double>(bytes) / 1024.0),
        tart::bench::fmt("%llu", static_cast<unsigned long long>(retained)),
        tart::bench::fmt("%.1f", ms_between(r0, r1)),
    });
  }
  table.print();
  std::printf(
      "\nExpected shape: frequent checkpoints cost replica bandwidth but\n"
      "trim retention aggressively and make failover replay (and hence\n"
      "recovery time) short; with checkpointing off, recovery replays the\n"
      "entire external log.\n");
  return 0;
}
