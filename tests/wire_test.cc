// Unit tests for payloads, messages, the pessimistic-merge inbox, and
// retention buffers. The inbox tests encode the paper's scheduling rule
// (§II.E) including the tie-break footnote and the merge example.
#include <gtest/gtest.h>

#include "wire/inbox.h"
#include "wire/message.h"
#include "wire/payload.h"
#include "wire/retention_buffer.h"

namespace tart {
namespace {

Message msg(WireId wire, std::int64_t vt, std::uint64_t seq,
            Payload payload = Payload()) {
  Message m;
  m.wire = wire;
  m.vt = VirtualTime(vt);
  m.seq = seq;
  m.payload = std::move(payload);
  return m;
}

// --- Payload -----------------------------------------------------------------

TEST(PayloadTest, VariantsRoundTripThroughSerde) {
  const std::vector<Payload> values = {
      Payload(),
      Payload(std::int64_t{-42}),
      Payload(2.718),
      Payload("a sentence"),
      Payload(std::vector<std::int64_t>{1, 2, 3}),
      Payload(std::vector<std::string>{"the", "cat", "sat"}),
      Payload(std::vector<std::byte>{std::byte{9}}),
  };
  for (const Payload& p : values) {
    serde::Writer w;
    p.encode(w);
    serde::Reader r(w.bytes());
    EXPECT_EQ(Payload::decode(r), p);
    EXPECT_TRUE(r.at_end());
  }
}

TEST(PayloadTest, Accessors) {
  EXPECT_TRUE(Payload().empty());
  EXPECT_EQ(Payload(std::int64_t{5}).as_int(), 5);
  EXPECT_EQ(Payload("x").as_string(), "x");
  EXPECT_EQ(Payload(std::vector<std::string>{"a"}).as_strings().size(), 1u);
  EXPECT_THROW((void)Payload("x").as_int(), std::bad_variant_access);
}

TEST(MessageTest, RoundTripAllFields) {
  Message m = msg(WireId(3), 233000, 17, Payload("word"));
  m.kind = MessageKind::kCall;
  m.call_id = 99;
  serde::Writer w;
  m.encode(w);
  serde::Reader r(w.bytes());
  const Message d = Message::decode(r);
  EXPECT_EQ(d.wire, m.wire);
  EXPECT_EQ(d.vt, m.vt);
  EXPECT_EQ(d.seq, m.seq);
  EXPECT_EQ(d.kind, MessageKind::kCall);
  EXPECT_EQ(d.call_id, 99u);
  EXPECT_EQ(d.payload, m.payload);
}

TEST(MessageTest, SchedulingKeyOrdersByVtThenWire) {
  EXPECT_LT(msg(WireId(5), 100, 0).key(), msg(WireId(1), 101, 0).key());
  EXPECT_LT(msg(WireId(1), 100, 0).key(), msg(WireId(5), 100, 0).key());
}

// --- Inbox: the paper's merge example ---------------------------------------

class InboxMergeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    inbox.add_wire(w1);
    inbox.add_wire(w2);
  }
  Inbox inbox;
  const WireId w1{1};
  const WireId w2{2};
};

TEST_F(InboxMergeTest, PaperExampleProcessesSender2First) {
  // Sender1's message arrives first in real time at vt 233000; Sender2's
  // (vt 202000) must still be processed first, and only after Sender1 is
  // known silent through 202000.
  EXPECT_EQ(inbox.offer(msg(w1, 233000, 0)), AcceptResult::kAccepted);
  EXPECT_EQ(inbox.offer(msg(w2, 202000, 0)), AcceptResult::kAccepted);

  const auto head = inbox.peek();
  ASSERT_TRUE(head.has_value());
  EXPECT_EQ(head->vt, VirtualTime(202000));
  EXPECT_EQ(head->wire, w2);
  // Both wires have pending heads, so the merge can proceed immediately:
  // w1's head (233000) orders after w2's head.
  EXPECT_TRUE(inbox.head_eligible());
  EXPECT_EQ(inbox.pop()->wire, w2);
  // Sender2's wire is now empty: before Sender1's 233000 message may run,
  // Sender2 must promise silence far enough (through 232999 suffices, as
  // w2 loses the tie-break to w1).
  EXPECT_FALSE(inbox.pop().has_value());
  inbox.announce_silence(w2, VirtualTime(232999));
  EXPECT_EQ(inbox.pop()->wire, w1);
  EXPECT_FALSE(inbox.pop().has_value());
}

TEST_F(InboxMergeTest, PessimismDelayUntilSilencePromised) {
  // Only Sender2's message is here; Sender1 might still produce an earlier
  // message, so the head must wait (pessimism delay).
  EXPECT_EQ(inbox.offer(msg(w2, 202000, 0)), AcceptResult::kAccepted);
  EXPECT_FALSE(inbox.head_eligible());
  EXPECT_EQ(inbox.lagging_wires(), std::vector<WireId>{w1});

  // Silence through 201999 is NOT enough: w1 < w2, so a w1 message at
  // exactly 202000 would win the tie-break.
  inbox.announce_silence(w1, VirtualTime(201999));
  EXPECT_FALSE(inbox.head_eligible());

  inbox.announce_silence(w1, VirtualTime(202000));
  EXPECT_TRUE(inbox.head_eligible());
  EXPECT_EQ(inbox.pop()->vt, VirtualTime(202000));
}

TEST_F(InboxMergeTest, TieBreakFavorsLowerWireId) {
  inbox.offer(msg(w1, 500, 0));
  inbox.offer(msg(w2, 500, 0));
  EXPECT_EQ(inbox.pop()->wire, w1);
  EXPECT_EQ(inbox.pop()->wire, w2);
}

TEST_F(InboxMergeTest, HorizonMinusOneSufficesWhenTieBreakWins) {
  // Head on w1 at t; w2 silent only through t-1. Any future w2 message has
  // vt >= t, and at t the lower wire id (w1) wins: eligible.
  inbox.offer(msg(w1, 1000, 0));
  inbox.announce_silence(w2, VirtualTime(999));
  EXPECT_TRUE(inbox.head_eligible());
}

TEST_F(InboxMergeTest, HorizonMinusOneInsufficientWhenTieBreakLoses) {
  // Head on w2; w1 silent through t-1 only. A future w1 message at exactly
  // t would beat us: not eligible.
  inbox.offer(msg(w2, 1000, 0));
  inbox.announce_silence(w1, VirtualTime(999));
  EXPECT_FALSE(inbox.head_eligible());
  inbox.announce_silence(w1, VirtualTime(1000));
  EXPECT_TRUE(inbox.head_eligible());
}

TEST_F(InboxMergeTest, ImpliedSilenceFromLaterMessage) {
  // Lazy propagation: a message at t2 implies silence for earlier ticks.
  inbox.offer(msg(w2, 300, 0));
  inbox.offer(msg(w1, 800, 0));  // implies w1 silent through 799
  EXPECT_TRUE(inbox.head_eligible());
  EXPECT_EQ(inbox.pop()->wire, w2);
}

TEST_F(InboxMergeTest, DuplicateByTimestampDiscarded) {
  inbox.offer(msg(w1, 100, 0));
  ASSERT_TRUE(inbox.pop().has_value() ||
              true);  // may be ineligible; drain below
  inbox.announce_silence(w2, VirtualTime::infinity());
  while (inbox.pop().has_value()) {
  }
  // Replay re-sends the same tick: discarded as duplicate.
  EXPECT_EQ(inbox.offer(msg(w1, 100, 0)), AcceptResult::kDuplicate);
  // Also stale vt below horizon.
  EXPECT_EQ(inbox.offer(msg(w1, 50, 1)), AcceptResult::kDuplicate);
}

TEST_F(InboxMergeTest, GapDetectedOnSeqJump) {
  inbox.offer(msg(w1, 100, 0));
  EXPECT_EQ(inbox.offer(msg(w1, 300, 2)), AcceptResult::kGap);
  EXPECT_EQ(inbox.next_seq(w1), 1u);
  // The replayed middle message heals the gap.
  EXPECT_EQ(inbox.offer(msg(w1, 200, 1)), AcceptResult::kAccepted);
  EXPECT_EQ(inbox.offer(msg(w1, 300, 2)), AcceptResult::kAccepted);
}

TEST_F(InboxMergeTest, AccountedThroughIsMinimumAcrossWires) {
  EXPECT_EQ(inbox.accounted_through(), VirtualTime(-1));
  inbox.announce_silence(w1, VirtualTime(500));
  EXPECT_EQ(inbox.accounted_through(), VirtualTime(-1));
  inbox.announce_silence(w2, VirtualTime(300));
  EXPECT_EQ(inbox.accounted_through(), VirtualTime(300));
}

TEST_F(InboxMergeTest, ExhaustedWhenAllClosedAndDrained) {
  EXPECT_FALSE(inbox.exhausted());
  inbox.announce_silence(w1, VirtualTime::infinity());
  inbox.announce_silence(w2, VirtualTime::infinity());
  EXPECT_TRUE(inbox.exhausted());
  // Closing is about the future, not pending messages.
  Inbox other;
  other.add_wire(w1);
  other.offer(msg(w1, 5, 0));
  other.announce_silence(w1, VirtualTime::infinity());
  EXPECT_FALSE(other.exhausted());
  (void)other.pop();
  EXPECT_TRUE(other.exhausted());
}

TEST_F(InboxMergeTest, SilenceMonotoneIgnoresStale) {
  inbox.announce_silence(w1, VirtualTime(900));
  inbox.announce_silence(w1, VirtualTime(100));  // stale, ignored
  EXPECT_EQ(inbox.wire_horizon(w1), VirtualTime(900));
}

TEST_F(InboxMergeTest, SingleWireNeedsNoSilence) {
  Inbox single;
  single.add_wire(w1);
  single.offer(msg(w1, 42, 0));
  EXPECT_TRUE(single.head_eligible());
  EXPECT_EQ(single.pop()->vt, VirtualTime(42));
}

TEST_F(InboxMergeTest, FifoWithinOneWire) {
  inbox.announce_silence(w2, VirtualTime::infinity());
  inbox.offer(msg(w1, 10, 0));
  inbox.offer(msg(w1, 20, 1));
  inbox.offer(msg(w1, 30, 2));
  EXPECT_EQ(inbox.pop()->vt, VirtualTime(10));
  EXPECT_EQ(inbox.pop()->vt, VirtualTime(20));
  EXPECT_EQ(inbox.pop()->vt, VirtualTime(30));
}

TEST_F(InboxMergeTest, ThreeWayMergeOrder) {
  Inbox three;
  const WireId a{1}, b{2}, c{3};
  three.add_wire(a);
  three.add_wire(b);
  three.add_wire(c);
  three.offer(msg(c, 100, 0));
  three.offer(msg(a, 300, 0));
  three.offer(msg(b, 200, 0));
  EXPECT_EQ(three.pop()->wire, c);
  // The emptied wires must re-promise silence before later heads run.
  three.announce_silence(c, VirtualTime::infinity());
  EXPECT_EQ(three.pop()->wire, b);
  three.announce_silence(b, VirtualTime::infinity());
  EXPECT_EQ(three.pop()->wire, a);
}

TEST_F(InboxMergeTest, LaggingWiresListsAllBlockers) {
  Inbox three;
  const WireId a{1}, b{2}, c{3};
  three.add_wire(a);
  three.add_wire(b);
  three.add_wire(c);
  three.offer(msg(b, 500, 0));
  const auto lagging = three.lagging_wires();
  EXPECT_EQ(lagging.size(), 2u);
  three.announce_silence(a, VirtualTime(500));
  EXPECT_EQ(three.lagging_wires(), std::vector<WireId>{c});
}

TEST_F(InboxMergeTest, RestorePositionResetsDedupeBoundary) {
  inbox.offer(msg(w1, 100, 0));
  inbox.offer(msg(w1, 200, 1));
  inbox.restore_position(w1, VirtualTime(100), 1);
  // Pending cleared; replay of seq 1 accepted, seq 0 duplicate.
  EXPECT_EQ(inbox.pending(), 0u);
  EXPECT_EQ(inbox.offer(msg(w1, 100, 0)), AcceptResult::kDuplicate);
  EXPECT_EQ(inbox.offer(msg(w1, 200, 1)), AcceptResult::kAccepted);
}


// --- Hyper-aggressive bias: receiver-side data-grid inference ----------------

TEST_F(InboxMergeTest, DataGridImpliesSilenceBetweenBoundaries) {
  // w1's sender follows the bias discipline with window 100: data only at
  // multiples of 100. A head on w2 at vt 150 needs w1 silent through 150;
  // w1's explicit horizon is only 100, but ticks 101..199 cannot carry
  // data by construction.
  inbox.set_data_grid(w1, 100);
  inbox.offer(msg(w2, 150, 0));
  (void)inbox.announce_silence(w1, VirtualTime(100));
  EXPECT_TRUE(inbox.head_eligible());
  EXPECT_EQ(inbox.pop()->vt, VirtualTime(150));
}

TEST_F(InboxMergeTest, DataGridDoesNotCoverBoundaries) {
  // The next boundary itself (200) may carry data: a head at exactly 200
  // on the higher-id wire must wait for an explicit promise.
  inbox.set_data_grid(w1, 100);
  inbox.offer(msg(w2, 200, 0));
  (void)inbox.announce_silence(w1, VirtualTime(100));
  EXPECT_FALSE(inbox.head_eligible());
  (void)inbox.announce_silence(w1, VirtualTime(200));
  EXPECT_TRUE(inbox.head_eligible());
}

TEST_F(InboxMergeTest, DataGridAcceptsBoundaryData) {
  inbox.set_data_grid(w1, 100);
  (void)inbox.announce_silence(w1, VirtualTime(150));  // horizon mid-window
  // Data at the next boundary is legal and must not be treated as a
  // duplicate by the grid-implied silence.
  EXPECT_EQ(inbox.offer(msg(w1, 200, 0)), AcceptResult::kAccepted);
}

TEST_F(InboxMergeTest, GridOnFreshWireIsInert) {
  inbox.set_data_grid(w1, 100);
  // Nothing accounted yet (horizon -1): no inference possible.
  inbox.offer(msg(w2, 50, 0));
  EXPECT_FALSE(inbox.head_eligible());
}

// --- RetentionBuffer ---------------------------------------------------------

TEST(RetentionBufferTest, RecordAndReplayAfterVt) {
  RetentionBuffer buf;
  buf.record(msg(WireId(1), 100, 0));
  buf.record(msg(WireId(1), 200, 1));
  buf.record(msg(WireId(1), 300, 2));
  const auto replayed = buf.replay_after(VirtualTime(100));
  ASSERT_EQ(replayed.size(), 2u);
  EXPECT_EQ(replayed[0].vt, VirtualTime(200));
  EXPECT_EQ(replayed[1].vt, VirtualTime(300));
}

TEST(RetentionBufferTest, ReplayFromSeq) {
  RetentionBuffer buf;
  for (int i = 0; i < 5; ++i)
    buf.record(msg(WireId(1), 100 * (i + 1), static_cast<std::uint64_t>(i)));
  EXPECT_EQ(buf.replay_from_seq(3).size(), 2u);
  EXPECT_EQ(buf.replay_from_seq(0).size(), 5u);
  EXPECT_EQ(buf.replay_from_seq(99).size(), 0u);
}

TEST(RetentionBufferTest, StabilityTrimsPrefix) {
  RetentionBuffer buf;
  buf.record(msg(WireId(1), 100, 0));
  buf.record(msg(WireId(1), 200, 1));
  buf.record(msg(WireId(1), 300, 2));
  buf.acknowledge_through(VirtualTime(200));
  EXPECT_EQ(buf.size(), 1u);
  EXPECT_TRUE(buf.replay_after(VirtualTime(-1)).front().vt ==
              VirtualTime(300));
  // Acks are idempotent and never remove unacked messages.
  buf.acknowledge_through(VirtualTime(200));
  EXPECT_EQ(buf.size(), 1u);
}

TEST(RetentionBufferTest, LastSentSurvivesTrim) {
  RetentionBuffer buf;
  buf.record(msg(WireId(1), 100, 0));
  buf.acknowledge_through(VirtualTime(100));
  EXPECT_TRUE(buf.empty());
  ASSERT_TRUE(buf.last_sent_vt().has_value());
  EXPECT_EQ(*buf.last_sent_vt(), VirtualTime(100));
  EXPECT_EQ(buf.next_seq(), 1u);
}

TEST(RetentionBufferTest, RestoreReinstallsExactState) {
  RetentionBuffer buf;
  std::vector<Message> retained{msg(WireId(1), 200, 3),
                                msg(WireId(1), 250, 4)};
  buf.restore(retained, 5);
  EXPECT_EQ(buf.size(), 2u);
  EXPECT_EQ(buf.next_seq(), 5u);
  EXPECT_EQ(*buf.last_sent_vt(), VirtualTime(250));
  // Re-execution continues the sequence.
  buf.record(msg(WireId(1), 300, 5));
  EXPECT_EQ(buf.size(), 3u);
}

TEST(RetentionBufferTest, FindByCallId) {
  RetentionBuffer buf;
  Message reply = msg(WireId(7), 500, 0);
  reply.kind = MessageKind::kReply;
  reply.call_id = 42;
  buf.record(reply);
  ASSERT_TRUE(buf.find_by_call_id(42).has_value());
  EXPECT_FALSE(buf.find_by_call_id(43).has_value());
}

TEST(RetentionBufferTest, ClearResets) {
  RetentionBuffer buf;
  buf.record(msg(WireId(1), 100, 0));
  buf.clear();
  EXPECT_TRUE(buf.empty());
  EXPECT_FALSE(buf.last_sent_vt().has_value());
  EXPECT_EQ(buf.next_seq(), 0u);
}

}  // namespace
}  // namespace tart
