// Tests for the discrete-event simulator used by the experiment benches:
// kernel determinism, workload conservation, jitter models, and the
// qualitative relationships the paper reports (determinism costs a few
// percent; prescience helps; the dumb estimator hurts under variability).
#include <gtest/gtest.h>

#include "sim/event_queue.h"
#include "sim/jitter.h"
#include "sim/tart_sim.h"
#include "stats/regression.h"

namespace tart::sim {
namespace {

// --- EventQueue ----------------------------------------------------------------

TEST(EventQueueTest, RunsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(300, [&] { order.push_back(3); });
  q.schedule(100, [&] { order.push_back(1); });
  q.schedule(200, [&] { order.push_back(2); });
  q.run_until(1000);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.now(), 1000);
}

TEST(EventQueueTest, EqualTimesFifo) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) q.schedule(42, [&order, i] { order.push_back(i); });
  q.run_until(42);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueueTest, EventsCanScheduleEvents) {
  EventQueue q;
  int fired = 0;
  q.schedule(10, [&] {
    ++fired;
    q.schedule_after(10, [&] { ++fired; });
  });
  q.run_until(100);
  EXPECT_EQ(fired, 2);
}

TEST(EventQueueTest, RunUntilStopsAtBoundary) {
  EventQueue q;
  int fired = 0;
  q.schedule(100, [&] { ++fired; });
  q.schedule(200, [&] { ++fired; });
  q.run_until(150);
  EXPECT_EQ(fired, 1);
  q.run_until(250);
  EXPECT_EQ(fired, 2);
}

// --- Jitter models -----------------------------------------------------------------

TEST(JitterTest, GaussianMeanTracksVirtualTime) {
  GaussianJitter jitter(0.1);
  Rng rng(1);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i)
    sum += static_cast<double>(jitter.real_ns(600000, rng));
  EXPECT_NEAR(sum / n, 600000.0, 200.0);
}

TEST(JitterTest, GaussianNeverNonPositive) {
  GaussianJitter jitter(0.5);
  Rng rng(2);
  for (int i = 0; i < 1000; ++i) EXPECT_GE(jitter.real_ns(10, rng), 1);
  EXPECT_EQ(jitter.real_ns(0, rng), 0);
}

TEST(JitterTest, EmpiricalBankIsRightSkewedAndLinear) {
  EmpiricalJitterBank::Config cfg;
  const EmpiricalJitterBank bank(cfg);
  const auto samples = bank.all_samples();
  ASSERT_EQ(samples.size(),
            static_cast<std::size_t>(cfg.max_iterations * cfg.samples_per_k));

  std::vector<double> x, y, residuals;
  for (const auto& [k, ns] : samples) {
    x.push_back(k);
    y.push_back(ns);
  }
  const auto fit = stats::fit_through_origin(x, y);
  // The bank stands in for the paper's trace: coefficient near the base
  // cost (Equation 2's 61827 ticks/iter ballpark) with a good linear fit.
  EXPECT_NEAR(fit.slope, 62000.0, 2500.0);
  EXPECT_GT(fit.r_squared, 0.85);

  for (std::size_t i = 0; i < x.size(); ++i)
    residuals.push_back(y[i] - fit.predict(x[i]));
  // "The distribution of the residuals is highly right-skewed."
  EXPECT_GT(stats::skewness(residuals), 2.0);
  // "Close to zero correlation between the number of iterations and the
  // residuals." (A through-origin fit with additive noise leaves a small
  // structural correlation; the paper's figure shows the same.)
  EXPECT_LT(std::abs(stats::pearson(x, residuals)), 0.15);
}

TEST(JitterTest, EmpiricalSamplingIsDeterministic) {
  EmpiricalJitterBank::Config cfg;
  const EmpiricalJitterBank bank(cfg);
  Rng a(5), b(5);
  for (int i = 0; i < 100; ++i)
    EXPECT_EQ(bank.sample(1 + i % 19, a), bank.sample(1 + i % 19, b));
}

// --- Simulation --------------------------------------------------------------------

SimConfig quick_config() {
  SimConfig cfg;
  cfg.duration_us = 200000;  // 200 ms of feed
  cfg.seed = 42;
  return cfg;
}

TEST(SimulationTest, ConservesMessages) {
  for (const SimMode mode :
       {SimMode::kNonDeterministic, SimMode::kDeterministic,
        SimMode::kPrescient}) {
    SimConfig cfg = quick_config();
    cfg.mode = mode;
    const SimResult r = run_simulation(cfg);
    EXPECT_GT(r.generated, 100u);
    EXPECT_EQ(r.completed, r.generated);
    EXPECT_TRUE(r.stable);
  }
}

TEST(SimulationTest, DeterministicGivenSeed) {
  SimConfig cfg = quick_config();
  const SimResult a = run_simulation(cfg);
  const SimResult b = run_simulation(cfg);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_DOUBLE_EQ(a.avg_latency_us, b.avg_latency_us);
  EXPECT_EQ(a.probes, b.probes);
  EXPECT_EQ(a.out_of_order, b.out_of_order);
}

TEST(SimulationTest, SameWorkloadAcrossModes) {
  SimConfig cfg = quick_config();
  cfg.mode = SimMode::kNonDeterministic;
  const SimResult nd = run_simulation(cfg);
  cfg.mode = SimMode::kDeterministic;
  const SimResult det = run_simulation(cfg);
  EXPECT_EQ(nd.generated, det.generated);
}

TEST(SimulationTest, DeterminismCostsLittleWithSmartEstimator) {
  SimConfig cfg = quick_config();
  cfg.duration_us = 2'000'000;
  cfg.mode = SimMode::kNonDeterministic;
  const SimResult nd = run_simulation(cfg);
  cfg.mode = SimMode::kDeterministic;
  const SimResult det = run_simulation(cfg);

  ASSERT_GT(nd.avg_latency_us, 0);
  const double overhead =
      (det.avg_latency_us - nd.avg_latency_us) / nd.avg_latency_us;
  // Paper: 2.8%..4.1%. Allow generous slack, but it must be small.
  EXPECT_GE(overhead, -0.01);
  EXPECT_LT(overhead, 0.15) << "det " << det.avg_latency_us << " vs nd "
                            << nd.avg_latency_us;
  EXPECT_GT(det.probes, 0u);
  EXPECT_EQ(nd.probes, 0u);
}

TEST(SimulationTest, PrescienceNeverHurts) {
  SimConfig cfg = quick_config();
  cfg.duration_us = 2'000'000;
  cfg.mode = SimMode::kDeterministic;
  const SimResult det = run_simulation(cfg);
  cfg.mode = SimMode::kPrescient;
  const SimResult pre = run_simulation(cfg);
  EXPECT_LE(pre.avg_latency_us, det.avg_latency_us * 1.02);
}

TEST(SimulationTest, DumbEstimatorHurtsUnderVariability) {
  SimConfig cfg = quick_config();
  cfg.duration_us = 2'000'000;
  cfg.mode = SimMode::kDeterministic;
  cfg.iterations = {1, 19};  // maximum variability
  const SimResult smart = run_simulation(cfg);
  cfg.dumb_estimator = true;
  const SimResult dumb = run_simulation(cfg);
  EXPECT_GT(dumb.avg_latency_us, smart.avg_latency_us);
}

TEST(SimulationTest, ConstantWorkloadHasNoVtInversions) {
  SimConfig cfg = quick_config();
  cfg.iterations = {10, 10};
  cfg.per_tick_jitter_sd = 0.0;  // no jitter, perfect estimator
  cfg.mode = SimMode::kDeterministic;
  const SimResult r = run_simulation(cfg);
  EXPECT_EQ(r.out_of_order, 0u);
  EXPECT_TRUE(r.stable);
}

TEST(SimulationTest, SaturatesNearMergerCapacity) {
  // Merger capacity: 400us/event, 2 senders => 1250 msg/s/sender. Well
  // below: stable; well above: unstable — in both modes.
  for (const SimMode mode :
       {SimMode::kNonDeterministic, SimMode::kDeterministic}) {
    SimConfig cfg = quick_config();
    cfg.duration_us = 2'000'000;
    cfg.mode = mode;
    cfg.arrival_mean_us = 1000.0;  // 1000 msg/s/sender: 80% utilization
    EXPECT_TRUE(run_simulation(cfg).stable);
    cfg.arrival_mean_us = 700.0;  // ~1430 msg/s/sender: > capacity
    const SimResult hot = run_simulation(cfg);
    EXPECT_GT(hot.merger_utilization, 0.95);
  }
}

TEST(SimulationTest, LazySilenceIncreasesLatency) {
  SimConfig cfg = quick_config();
  cfg.duration_us = 1'000'000;
  cfg.mode = SimMode::kDeterministic;
  const SimResult curiosity = run_simulation(cfg);
  cfg.silence = SimSilence::kLazy;
  const SimResult lazy = run_simulation(cfg);
  EXPECT_EQ(lazy.probes, 0u);
  EXPECT_GE(lazy.avg_latency_us, curiosity.avg_latency_us);
}

TEST(SimulationTest, FanInIncreasesPessimismPressure) {
  SimConfig cfg = quick_config();
  cfg.duration_us = 500000;
  cfg.mode = SimMode::kDeterministic;
  // Scale arrival rate down with fan-in to keep the merger utilization
  // constant, isolating the silence-coordination cost.
  cfg.num_senders = 2;
  cfg.arrival_mean_us = 1000.0;
  const SimResult two = run_simulation(cfg);
  cfg.num_senders = 8;
  cfg.arrival_mean_us = 4000.0;
  const SimResult eight = run_simulation(cfg);
  EXPECT_GT(eight.probes, two.probes / 4);  // far more probing per message
  EXPECT_TRUE(eight.stable);
}

TEST(SimulationTest, BiasReducesPessimismUnderLazySilence) {
  // §II.G.1: "in the absence of aggressive silence propagation protocols,
  // it is actually better for the virtual time estimates not to exactly
  // match real-time" — the bias pays off exactly when explicit silence is
  // scarce (lazy propagation), because the receiver infers the silent
  // ticks between grid boundaries by construction.
  SimConfig cfg = quick_config();
  cfg.duration_us = 2'000'000;
  cfg.mode = SimMode::kDeterministic;
  cfg.silence = SimSilence::kLazy;
  cfg.arrival_mean_us = 5000.0;  // sparse traffic: implied silence is rare
  const SimResult plain = run_simulation(cfg);
  cfg.biased_sender = 0;
  cfg.bias_ns = 1'000'000;  // sender 0's data only on 1 ms boundaries
  const SimResult biased = run_simulation(cfg);
  EXPECT_LT(biased.pessimism_wait_us, plain.pessimism_wait_us);
  EXPECT_LT(biased.avg_latency_us, plain.avg_latency_us);
}

TEST(IterationDistTest, ComputeSd) {
  const IterationDist constant{10, 10};
  EXPECT_DOUBLE_EQ(constant.compute_sd_us(60.0), 0.0);
  const IterationDist wide{1, 19};
  EXPECT_NEAR(wide.compute_sd_us(60.0), 328.6, 0.5);
  EXPECT_DOUBLE_EQ(wide.mean(), 10.0);
}

}  // namespace
}  // namespace tart::sim

namespace tart::sim {
namespace {

// --- Optimistic (Time Warp) mode ---------------------------------------------

TEST(OptimisticSimTest, ConservesMessagesAndIsDeterministic) {
  SimConfig cfg;
  cfg.duration_us = 500000;
  cfg.seed = 77;
  cfg.mode = SimMode::kOptimistic;
  const SimResult a = run_simulation(cfg);
  const SimResult b = run_simulation(cfg);
  EXPECT_GT(a.generated, 100u);
  EXPECT_EQ(a.completed, a.generated);
  EXPECT_TRUE(a.stable);
  EXPECT_EQ(a.rollbacks, b.rollbacks);
  EXPECT_DOUBLE_EQ(a.avg_latency_us, b.avg_latency_us);
}

TEST(OptimisticSimTest, NoJitterMeansNoRollbacks) {
  SimConfig cfg;
  cfg.duration_us = 500000;
  cfg.seed = 3;
  cfg.iterations = {10, 10};
  cfg.per_tick_jitter_sd = 0.0;  // perfectly predictable arrivals
  cfg.mode = SimMode::kOptimistic;
  const SimResult r = run_simulation(cfg);
  EXPECT_EQ(r.rollbacks, 0u);
  EXPECT_EQ(r.reexecutions, 0u);
}

TEST(OptimisticSimTest, BadEstimatorCausesRollbacks) {
  EmpiricalJitterBank::Config bank_cfg;
  const EmpiricalJitterBank bank(bank_cfg);
  SimConfig cfg;
  cfg.duration_us = 2'000'000;
  cfg.seed = 9;
  cfg.bank = &bank;
  cfg.mode = SimMode::kOptimistic;

  cfg.estimator_ns_per_iter = 61000.0;  // near calibrated: few inversions
  const SimResult good = run_simulation(cfg);
  cfg.estimator_ns_per_iter = 45000.0;  // badly under-estimating
  const SimResult bad = run_simulation(cfg);
  EXPECT_GT(bad.rollbacks, good.rollbacks);
  EXPECT_GT(bad.reexecutions, good.reexecutions);
}

TEST(OptimisticSimTest, RollbackWorkInflatesUtilization) {
  EmpiricalJitterBank::Config bank_cfg;
  const EmpiricalJitterBank bank(bank_cfg);
  SimConfig cfg;
  cfg.duration_us = 2'000'000;
  cfg.seed = 9;
  cfg.bank = &bank;
  cfg.estimator_ns_per_iter = 48000.0;

  cfg.mode = SimMode::kNonDeterministic;
  const SimResult nd = run_simulation(cfg);
  cfg.mode = SimMode::kOptimistic;
  const SimResult opt = run_simulation(cfg);
  EXPECT_GT(opt.merger_utilization, nd.merger_utilization);
}

}  // namespace
}  // namespace tart::sim
