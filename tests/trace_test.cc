// Unit tests for the flight-recorder subsystem: event serde round-trips
// for every kind, trace-file error paths (bad magic, version mismatch,
// truncation, trailing garbage), the MPMC ring, the recorder lifecycle,
// and the divergence checker in both strict and recovery modes.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <thread>

#include "serde/archive.h"
#include "trace/diff.h"
#include "trace/recorder.h"
#include "trace/ring_buffer.h"
#include "trace/trace_event.h"
#include "trace/trace_file.h"

namespace tart::trace {
namespace {

TraceEvent make_event(TraceEventKind kind, std::uint64_t seq) {
  TraceEvent e;
  e.component = ComponentId(3);
  e.seq = seq;
  e.kind = kind;
  e.vt = VirtualTime(1'000'000 + static_cast<std::int64_t>(seq) * 17);
  e.wire = (seq % 2 == 0) ? WireId(static_cast<std::uint32_t>(seq))
                          : WireId::invalid();
  e.aux = seq * 31;
  e.payload_hash = seq * 0x9E3779B97F4A7C15ull;
  return e;
}

TEST(TraceEventTest, RoundTripsEveryKind) {
  for (std::uint8_t k = 0; k <= kMaxTraceEventKind; ++k) {
    const TraceEvent e = make_event(static_cast<TraceEventKind>(k), k);
    serde::Writer w;
    e.encode(w);
    serde::Reader r(w.bytes());
    TraceEvent back = TraceEvent::decode(r);
    back.component = e.component;  // implicit in the file section
    EXPECT_EQ(back, e) << "kind " << name_of(e.kind);
    EXPECT_EQ(r.remaining(), 0u);
  }
}

TEST(TraceEventTest, DecodeRejectsUnknownKind) {
  serde::Writer w;
  w.write_u8(kMaxTraceEventKind + 1);
  w.write_varint(0);
  serde::Reader r(w.bytes());
  EXPECT_THROW((void)TraceEvent::decode(r), serde::DecodeError);
}

TEST(TraceEventTest, InfiniteVtRoundTrips) {
  TraceEvent e = make_event(TraceEventKind::kReplayStart, 1);
  e.vt = VirtualTime::infinity();
  serde::Writer w;
  e.encode(w);
  serde::Reader r(w.bytes());
  EXPECT_TRUE(TraceEvent::decode(r).vt.is_infinite());
}

TEST(TraceEventTest, CategorySplitMatchesKindOrder) {
  EXPECT_EQ(category_of(TraceEventKind::kDispatch),
            TraceCategory::kScheduling);
  EXPECT_EQ(category_of(TraceEventKind::kCrash), TraceCategory::kScheduling);
  EXPECT_EQ(category_of(TraceEventKind::kSilencePromise),
            TraceCategory::kDiagnostic);
  EXPECT_EQ(category_of(TraceEventKind::kStallEnd),
            TraceCategory::kDiagnostic);
}

TEST(TraceEventTest, SameDecisionIgnoresSeq) {
  TraceEvent a = make_event(TraceEventKind::kDispatch, 4);
  TraceEvent b = a;
  b.seq = 99;
  EXPECT_TRUE(a.same_decision(b));
  b.aux ^= 1;
  EXPECT_FALSE(a.same_decision(b));
}

// ---------------------------------------------------------------------------
// Trace file

Trace sample_trace() {
  Trace t;
  t.categories = static_cast<std::uint32_t>(TraceCategory::kAll);
  for (std::uint32_t c : {1u, 4u}) {
    ComponentTrace ct;
    ct.component = ComponentId(c);
    for (std::uint64_t i = 0; i < 5; ++i) {
      TraceEvent e = make_event(
          static_cast<TraceEventKind>(i % (kMaxTraceEventKind + 1)), i);
      e.component = ct.component;
      ct.events.push_back(e);
    }
    t.components.push_back(std::move(ct));
  }
  return t;
}

TEST(TraceFileTest, BytesRoundTrip) {
  const Trace t = sample_trace();
  const auto bytes = encode_trace(t);
  EXPECT_EQ(TraceReader::read_bytes(bytes), t);
}

TEST(TraceFileTest, EncodingIsDeterministic) {
  EXPECT_EQ(encode_trace(sample_trace()), encode_trace(sample_trace()));
}

// Pre-lineage (v1) files must stay readable: the lineage event class only
// *adds* kinds, so a v1 body decodes under the v2 reader unchanged.
TEST(TraceFileTest, ReadsVersion1Files) {
  Trace t = sample_trace();
  t.version = kMinReadableTraceVersion;
  // A v1 recorder never produced lineage-class events; drop them so the
  // sample is a faithful v1 body.
  for (auto& ct : t.components) {
    std::erase_if(ct.events, [](const TraceEvent& e) {
      return category_of(e.kind) == TraceCategory::kLineage;
    });
  }
  const Trace back = TraceReader::read_bytes(encode_trace(t));
  EXPECT_EQ(back.version, kMinReadableTraceVersion);
  EXPECT_EQ(back, t);
}

TEST(TraceFileTest, RejectsBadMagic) {
  auto bytes = encode_trace(sample_trace());
  bytes[0] = std::byte{'X'};
  EXPECT_THROW((void)TraceReader::read_bytes(bytes), TraceError);
}

TEST(TraceFileTest, RejectsVersionMismatch) {
  auto bytes = encode_trace(sample_trace());
  bytes[8] = std::byte{0x7F};  // first byte of the little-endian version
  try {
    (void)TraceReader::read_bytes(bytes);
    FAIL() << "expected TraceError";
  } catch (const TraceError& e) {
    EXPECT_NE(std::string(e.what()).find("version"), std::string::npos);
  }
}

TEST(TraceFileTest, RejectsTruncation) {
  const auto bytes = encode_trace(sample_trace());
  // Every proper prefix (past the empty file) must throw, never crash or
  // silently decode.
  for (std::size_t len : {bytes.size() - 1, bytes.size() / 2, std::size_t{9}}) {
    std::vector<std::byte> cut(bytes.begin(),
                               bytes.begin() + static_cast<long>(len));
    EXPECT_THROW((void)TraceReader::read_bytes(cut), TraceError)
        << "prefix of " << len;
  }
}

TEST(TraceFileTest, RejectsTrailingGarbage) {
  auto bytes = encode_trace(sample_trace());
  bytes.push_back(std::byte{0});
  EXPECT_THROW((void)TraceReader::read_bytes(bytes), TraceError);
}

TEST(TraceFileTest, FileRoundTripAndMissingFile) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "tart_trace_rt.trc").string();
  const Trace t = sample_trace();
  write_trace_file(path, t);
  EXPECT_EQ(TraceReader::read_file(path), t);
  std::remove(path.c_str());
  EXPECT_THROW((void)TraceReader::read_file(path), TraceError);
}

TEST(TraceFileTest, MergedOrdersByVtComponentSeq) {
  Trace t;
  ComponentTrace a;
  a.component = ComponentId(2);
  ComponentTrace b;
  b.component = ComponentId(7);
  auto ev = [](ComponentId c, std::uint64_t seq, std::int64_t vt) {
    TraceEvent e;
    e.component = c;
    e.seq = seq;
    e.vt = VirtualTime(vt);
    return e;
  };
  a.events = {ev(a.component, 0, 50), ev(a.component, 1, 10)};
  b.events = {ev(b.component, 0, 10), ev(b.component, 1, 50)};
  t.components = {a, b};
  const auto m = t.merged();
  ASSERT_EQ(m.size(), 4u);
  EXPECT_EQ(m[0].component, ComponentId(2));  // vt 10: smaller component id
  EXPECT_EQ(m[1].component, ComponentId(7));
  EXPECT_EQ(m[2].component, ComponentId(2));  // vt 50
  EXPECT_EQ(m[3].component, ComponentId(7));
}

// ---------------------------------------------------------------------------
// Ring buffer

TEST(RingBufferTest, FifoAndFullRejection) {
  RingBuffer<int> ring(4);
  EXPECT_EQ(ring.capacity(), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(ring.try_push(i));
  EXPECT_FALSE(ring.try_push(99));
  for (int i = 0; i < 4; ++i) EXPECT_EQ(ring.try_pop(), i);
  EXPECT_EQ(ring.try_pop(), std::nullopt);
}

TEST(RingBufferTest, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(RingBuffer<int>(5).capacity(), 8u);
  EXPECT_EQ(RingBuffer<int>(1).capacity(), 2u);
}

TEST(RingBufferTest, ConcurrentProducersLoseNothingWhenSized) {
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 1000;
  RingBuffer<int> ring(kProducers * kPerProducer);
  std::atomic<long> sum{0};
  std::thread consumer([&] {
    int seen = 0;
    while (seen < kProducers * kPerProducer) {
      if (auto v = ring.try_pop()) {
        sum += *v;
        ++seen;
      } else {
        std::this_thread::yield();
      }
    }
  });
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p)
    producers.emplace_back([&ring, p] {
      for (int i = 0; i < kPerProducer; ++i)
        while (!ring.try_push(p * kPerProducer + i)) std::this_thread::yield();
    });
  for (auto& t : producers) t.join();
  consumer.join();
  const long n = kProducers * kPerProducer;
  EXPECT_EQ(sum.load(), n * (n - 1) / 2);
}

// ---------------------------------------------------------------------------
// Recorder

TEST(RecorderTest, AssemblesCanonicalStreams) {
  TraceConfig cfg;
  cfg.enabled = true;
  cfg.categories = static_cast<std::uint32_t>(TraceCategory::kAll);
  TraceRecorder rec(cfg, {ComponentId(2), ComponentId(1), ComponentId(2)});
  rec.record(ComponentId(1), TraceEventKind::kDispatch, VirtualTime(10),
             WireId(0), 0, 0xAB);
  rec.record(ComponentId(2), TraceEventKind::kEmit, VirtualTime(20), WireId(1),
             1);
  rec.record(ComponentId(1), TraceEventKind::kCheckpoint, VirtualTime(30),
             WireId::invalid(), 1);
  rec.record(ComponentId(9), TraceEventKind::kDispatch, VirtualTime(40),
             WireId(0));  // unregistered: ignored
  rec.finalize();

  const Trace& t = rec.trace();
  ASSERT_EQ(t.components.size(), 2u);  // deduped, ascending
  EXPECT_EQ(t.components[0].component, ComponentId(1));
  EXPECT_EQ(t.components[1].component, ComponentId(2));
  ASSERT_EQ(t.components[0].events.size(), 2u);
  EXPECT_EQ(t.components[0].events[0].kind, TraceEventKind::kDispatch);
  EXPECT_EQ(t.components[0].events[0].seq, 0u);
  EXPECT_EQ(t.components[0].events[1].kind, TraceEventKind::kCheckpoint);
  EXPECT_EQ(t.components[0].events[1].seq, 1u);
  EXPECT_EQ(rec.total_recorded(), 3u);
  EXPECT_EQ(rec.total_dropped(), 0u);

  // Idempotent finalize; records after finalize are ignored.
  rec.record(ComponentId(1), TraceEventKind::kDispatch, VirtualTime(99),
             WireId(0));
  rec.finalize();
  EXPECT_EQ(rec.trace().total_events(), 3u);
}

TEST(RecorderTest, MaskedCategoryIsNotRecorded) {
  TraceConfig cfg;
  cfg.enabled = true;  // default mask: scheduling only
  TraceRecorder rec(cfg, {ComponentId(0)});
  EXPECT_FALSE(rec.wants(TraceEventKind::kStallBegin));
  EXPECT_TRUE(rec.wants(TraceEventKind::kDispatch));
  rec.record(ComponentId(0), TraceEventKind::kStallBegin, VirtualTime(1),
             WireId(0));
  rec.record(ComponentId(0), TraceEventKind::kDispatch, VirtualTime(2),
             WireId(0));
  rec.finalize();
  ASSERT_EQ(rec.trace().total_events(), 1u);
  EXPECT_EQ(rec.trace().components[0].events[0].kind,
            TraceEventKind::kDispatch);
}

TEST(RecorderTest, OverflowDropsAndCounts) {
  TraceConfig cfg;
  cfg.enabled = true;
  cfg.ring_capacity = 2;
  // Long drain interval: the writer won't empty the ring mid-test.
  cfg.drain_interval = std::chrono::microseconds(5'000'000);
  TraceRecorder rec(cfg, {ComponentId(0)});
  for (int i = 0; i < 10; ++i)
    rec.record(ComponentId(0), TraceEventKind::kDispatch, VirtualTime(i),
               WireId(0));
  EXPECT_GT(rec.dropped(ComponentId(0)), 0u);
  EXPECT_EQ(rec.recorded(ComponentId(0)) + rec.dropped(ComponentId(0)), 10u);
  rec.finalize();
  EXPECT_EQ(rec.trace().total_events(), rec.recorded(ComponentId(0)));
}

TEST(RecorderTest, WritesFileAtFinalize) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "tart_rec_out.trc").string();
  {
    TraceConfig cfg;
    cfg.enabled = true;
    cfg.path = path;
    TraceRecorder rec(cfg, {ComponentId(5)});
    rec.record(ComponentId(5), TraceEventKind::kDispatch, VirtualTime(7),
               WireId(3), 0, 0xFEED);
    rec.finalize();
  }
  const Trace t = TraceReader::read_file(path);
  ASSERT_EQ(t.total_events(), 1u);
  EXPECT_EQ(t.components[0].events[0].payload_hash, 0xFEEDu);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Diff

ComponentTrace stream(ComponentId c,
                      std::vector<std::pair<TraceEventKind, std::int64_t>>
                          kinds_and_vts) {
  ComponentTrace ct;
  ct.component = c;
  std::uint64_t seq = 0;
  for (const auto& [kind, vt] : kinds_and_vts) {
    TraceEvent e;
    e.component = c;
    e.seq = seq++;
    e.kind = kind;
    e.vt = VirtualTime(vt);
    e.wire = WireId(0);
    ct.events.push_back(e);
  }
  return ct;
}

Trace one_component(ComponentTrace ct) {
  Trace t;
  t.categories = static_cast<std::uint32_t>(TraceCategory::kAll);
  t.components.push_back(std::move(ct));
  return t;
}

constexpr auto kD = TraceEventKind::kDispatch;
constexpr auto kE = TraceEventKind::kEmit;
constexpr auto kR = TraceEventKind::kRecoveryStart;
constexpr auto kC = TraceEventKind::kCheckpoint;

TEST(DiffTest, StrictIdentical) {
  const Trace a = one_component(stream(ComponentId(0), {{kD, 1}, {kE, 2}}));
  const auto r = diff_traces(a, a);
  EXPECT_TRUE(r.identical());
  EXPECT_EQ(r.compared, 2u);
}

TEST(DiffTest, StrictIgnoresDiagnosticEvents) {
  const Trace a = one_component(stream(ComponentId(0), {{kD, 1}}));
  Trace b = a;
  TraceEvent probe;
  probe.component = ComponentId(0);
  probe.seq = 1;
  probe.kind = TraceEventKind::kCuriosityProbe;
  probe.vt = VirtualTime(999);
  b.components[0].events.push_back(probe);
  EXPECT_TRUE(diff_traces(a, b).identical());
}

TEST(DiffTest, StrictReportsFirstMismatch) {
  const Trace a =
      one_component(stream(ComponentId(4), {{kD, 1}, {kD, 2}, {kD, 3}}));
  const Trace b =
      one_component(stream(ComponentId(4), {{kD, 1}, {kD, 7}, {kD, 3}}));
  const auto r = diff_traces(a, b);
  ASSERT_FALSE(r.identical());
  EXPECT_EQ(r.divergence->component, ComponentId(4));
  EXPECT_EQ(r.divergence->index_a, 1u);
  EXPECT_EQ(r.divergence->expected->vt, VirtualTime(2));
  EXPECT_EQ(r.divergence->actual->vt, VirtualTime(7));
  // describe() names the component, wire and virtual time.
  const std::string d = r.divergence->describe();
  EXPECT_NE(d.find("#4"), std::string::npos);
  EXPECT_NE(d.find("VT(7)"), std::string::npos);
  EXPECT_NE(d.find("wire"), std::string::npos);
}

TEST(DiffTest, StrictReportsLengthMismatch) {
  const Trace a = one_component(stream(ComponentId(0), {{kD, 1}, {kD, 2}}));
  const Trace b = one_component(stream(ComponentId(0), {{kD, 1}}));
  const auto r = diff_traces(a, b);
  ASSERT_FALSE(r.identical());
  EXPECT_NE(r.divergence->reason.find("ended early"), std::string::npos);
}

TEST(DiffTest, ReportsMissingComponent) {
  Trace a = one_component(stream(ComponentId(0), {{kD, 1}}));
  Trace b = a;
  b.components[0].component = ComponentId(1);
  ASSERT_FALSE(diff_traces(a, b).identical());
}

TEST(DiffTest, RecoveryToleratesReplayedSuffix) {
  const Trace a = one_component(
      stream(ComponentId(0), {{kD, 1}, {kD, 2}, {kD, 3}, {kD, 4}}));
  // B: dispatches 1-3, checkpoint cadence artifacts, crash, recovery, then
  // replays 2-3 (stutter) and continues with 4.
  const Trace b = one_component(stream(
      ComponentId(0), {{kD, 1},
                       {kC, 1},
                       {kD, 2},
                       {kD, 3},
                       {TraceEventKind::kCrash, -1},
                       {kR, 1},
                       {kD, 2},
                       {kD, 3},
                       {kD, 4}}));
  const auto r = diff_traces(a, b, {.allow_stutter = true});
  EXPECT_TRUE(r.identical()) << r.divergence->describe();
  EXPECT_EQ(r.compared, 4u);
  EXPECT_EQ(r.stutter_records, 2u);
  EXPECT_GT(r.skipped, 0u);
}

TEST(DiffTest, RecoveryRejectsUnlicensedRepeat) {
  const Trace a = one_component(stream(ComponentId(0), {{kD, 1}, {kD, 2}}));
  const Trace b =
      one_component(stream(ComponentId(0), {{kD, 1}, {kD, 1}, {kD, 2}}));
  EXPECT_FALSE(diff_traces(a, b, {.allow_stutter = true}).identical());
}

TEST(DiffTest, RecoveryRejectsNovelDecision) {
  const Trace a = one_component(stream(ComponentId(0), {{kD, 1}, {kD, 2}}));
  const Trace b = one_component(
      stream(ComponentId(0), {{kD, 1}, {kR, 1}, {kD, 99}}));
  const auto r = diff_traces(a, b, {.allow_stutter = true});
  ASSERT_FALSE(r.identical());
  EXPECT_NE(r.divergence->reason.find("neither"), std::string::npos);
}

TEST(DiffTest, RecoveryRejectsUnfinishedReplay) {
  const Trace a = one_component(stream(ComponentId(0), {{kD, 1}, {kD, 2}}));
  const Trace b = one_component(stream(ComponentId(0), {{kD, 1}}));
  const auto r = diff_traces(a, b, {.allow_stutter = true});
  ASSERT_FALSE(r.identical());
  EXPECT_NE(r.divergence->reason.find("never reached"), std::string::npos);
}

}  // namespace
}  // namespace tart::trace
