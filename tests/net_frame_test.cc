// Wire-format hardening: malformed bytes must surface as typed errors
// (NetError / serde::DecodeError), never UB — the properties the two-process
// transport relies on when an arbitrary TCP peer (or a bit-flipping cable)
// feeds it garbage. Runs under TART_SANITIZE=address in CI, so any
// out-of-bounds read in the decoders fails loudly here.
#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "common/virtual_time.h"
#include "net/wire_format.h"
#include "transport/frame.h"
#include "wire/message.h"

using namespace tart;
using namespace tart::net;

namespace {

transport::Frame sample_frame() {
  Message m;
  m.wire = WireId(7);
  m.vt = VirtualTime(1234);
  m.seq = 9;
  m.payload = Payload(std::string("hello across processes"));
  return transport::DataFrame{m};
}

std::vector<std::byte> sample_message() {
  return encode_frame_message(sample_frame());
}

// Feeds `bytes` in one go and pulls one message.
std::optional<NetMessage> decode_one(const std::vector<std::byte>& bytes) {
  StreamDecoder d;
  d.feed(bytes);
  return d.next();
}

}  // namespace

// --- Round trips ------------------------------------------------------------

TEST(NetFrameTest, FrameMessageRoundTrips) {
  const auto msg = decode_one(sample_message());
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->type, NetMsgType::kFrame);
  const transport::Frame f = decode_frame_payload(msg->payload);
  const auto* data = std::get_if<transport::DataFrame>(&f);
  ASSERT_NE(data, nullptr);
  EXPECT_EQ(data->msg.wire, WireId(7));
  EXPECT_EQ(data->msg.vt, VirtualTime(1234));
  EXPECT_EQ(data->msg.payload.as_string(), "hello across processes");
}

TEST(NetFrameTest, EveryFrameVariantRoundTrips) {
  const std::vector<transport::Frame> frames = {
      sample_frame(),
      transport::SilenceFrame{WireId(3), VirtualTime(99), 12},
      transport::ProbeFrame{WireId(4)},
      transport::ReplayRequestFrame{WireId(5), VirtualTime(50), 6},
      transport::StabilityFrame{WireId(6), VirtualTime(77)},
  };
  for (const auto& f : frames) {
    const auto msg = decode_one(encode_frame_message(f));
    ASSERT_TRUE(msg.has_value());
    const transport::Frame back = decode_frame_payload(msg->payload);
    EXPECT_EQ(transport::frame_wire(back), transport::frame_wire(f));
    EXPECT_EQ(back.index(), f.index());
  }
}

TEST(NetFrameTest, MessagesSurviveArbitrarySegmentation) {
  // TCP may deliver any byte-split; the decoder must reassemble.
  const auto one = sample_message();
  std::vector<std::byte> three;
  for (int i = 0; i < 3; ++i) three.insert(three.end(), one.begin(), one.end());
  for (std::size_t chunk = 1; chunk <= 7; ++chunk) {
    StreamDecoder d;
    std::size_t decoded = 0;
    for (std::size_t off = 0; off < three.size(); off += chunk) {
      const std::size_t n = std::min(chunk, three.size() - off);
      d.feed(three.data() + off, n);
      while (d.next().has_value()) ++decoded;
    }
    EXPECT_EQ(decoded, 3u) << "chunk size " << chunk;
  }
}

// --- Truncation -------------------------------------------------------------

TEST(NetFrameTest, EveryTruncationPrefixJustWaits) {
  // A prefix is indistinguishable from "more bytes in flight": next() must
  // return nullopt (not throw, not read past the end) for every cut point.
  const auto full = sample_message();
  for (std::size_t len = 0; len < full.size(); ++len) {
    StreamDecoder d;
    d.feed(full.data(), len);
    EXPECT_FALSE(d.next().has_value()) << "prefix length " << len;
  }
}

TEST(NetFrameTest, TruncatedFramePayloadThrowsDecodeError) {
  // Envelope intact, serde body cut short: the frame decoder must throw.
  const auto payload_full = [] {
    serde::Writer w;
    transport::encode_frame(w, sample_frame());
    return w.take();
  }();
  for (std::size_t len = 0; len < payload_full.size(); ++len) {
    const std::vector<std::byte> cut(payload_full.begin(),
                                     payload_full.begin() + len);
    EXPECT_THROW((void)decode_frame_payload(cut), serde::DecodeError)
        << "payload prefix " << len;
  }
}

// --- Corruption -------------------------------------------------------------

TEST(NetFrameTest, BadMagicIsConnectionFatal) {
  auto bytes = sample_message();
  bytes[0] ^= std::byte{0x01};
  StreamDecoder d;
  d.feed(bytes);
  EXPECT_THROW((void)d.next(), NetError);
  // Poisoned: the stream cannot be trusted past the first violation.
  d.feed(sample_message());
  EXPECT_THROW((void)d.next(), NetError);
}

TEST(NetFrameTest, UnknownVersionIsConnectionFatal) {
  auto bytes = sample_message();
  bytes[4] = std::byte{0x7F};
  EXPECT_THROW((void)decode_one(bytes), NetError);
}

TEST(NetFrameTest, OversizedLengthIsConnectionFatalNotAnAllocation) {
  auto bytes = sample_message();
  // Length field at offset 6..10: claim ~4 GiB.
  bytes[6] = bytes[7] = bytes[8] = bytes[9] = std::byte{0xFF};
  EXPECT_THROW((void)decode_one(bytes), NetError);
}

TEST(NetFrameTest, EveryPossibleBitFlipIsCaught) {
  // Flip each bit of the envelope in turn. Every flip must either be
  // caught (NetError from the envelope checks or the CRC; DecodeError from
  // the body decoder) or — never — change the decoded frame silently.
  // Header flips surface immediately; payload flips are caught by the CRC.
  const auto good = sample_message();
  int caught = 0, clean = 0;
  for (std::size_t byte_i = 0; byte_i < good.size(); ++byte_i) {
    for (int bit = 0; bit < 8; ++bit) {
      auto bytes = good;
      bytes[byte_i] ^= std::byte{static_cast<unsigned char>(1u << bit)};
      StreamDecoder d;
      d.feed(bytes);
      try {
        const auto msg = d.next();
        if (!msg.has_value()) {
          ++clean;  // length shrank; remainder looks in-flight
          continue;
        }
        const transport::Frame f = decode_frame_payload(msg->payload);
        // A decoded frame here means the flip defeated the CRC — report it.
        ADD_FAILURE() << "bit flip at byte " << byte_i << " bit " << bit
                      << " decoded silently (wire "
                      << transport::frame_wire(f) << ")";
      } catch (const NetError&) {
        ++caught;
      } catch (const serde::DecodeError&) {
        ++caught;
      }
    }
  }
  EXPECT_GT(caught, 0);
  // "Looks truncated" is acceptable only for flips in the length field.
  EXPECT_LE(clean, 32);
}

TEST(NetFrameTest, BadFrameTagInPayloadIsCaught) {
  serde::Writer w;
  w.write_u8(0xEE);  // no such frame variant
  w.write_u32(1);
  EXPECT_THROW((void)decode_frame_payload(w.take()), serde::DecodeError);
}

TEST(NetFrameTest, TrailingGarbageAfterFrameBodyIsCaught) {
  serde::Writer w;
  transport::encode_frame(w, sample_frame());
  w.write_u8(0x00);  // one stray byte
  EXPECT_THROW((void)decode_frame_payload(w.take()), serde::DecodeError);
}

// --- The existing in-process framing path, same adversary ------------------

TEST(TransportFrameFuzzTest, TruncationNeverUB) {
  const auto bytes = transport::frame_to_bytes(sample_frame());
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    const std::vector<std::byte> cut(bytes.begin(), bytes.begin() + len);
    EXPECT_THROW((void)transport::frame_from_bytes(cut), serde::DecodeError);
  }
}

TEST(TransportFrameFuzzTest, BitFlipsEitherDecodeOrThrowTyped) {
  // frame_to_bytes has no CRC (in-process paths trust memory), so a flip
  // may legitimately decode to a different frame — the property under ASan
  // is merely: no crash, no unbounded allocation, only DecodeError escapes.
  const auto good = transport::frame_to_bytes(sample_frame());
  for (std::size_t byte_i = 0; byte_i < good.size(); ++byte_i) {
    for (int bit = 0; bit < 8; ++bit) {
      auto bytes = good;
      bytes[byte_i] ^= std::byte{static_cast<unsigned char>(1u << bit)};
      try {
        (void)transport::frame_from_bytes(bytes);
      } catch (const serde::DecodeError&) {
        // typed failure: fine
      }
    }
  }
}

TEST(NetFrameTest, HelloBodyRoundTripsAndRejectsTrailing) {
  const HelloBody hello{"left", 0xDEADBEEFCAFEF00Dull};
  auto bytes = hello.encode();
  const HelloBody back = HelloBody::decode(bytes);
  EXPECT_EQ(back.node, "left");
  EXPECT_EQ(back.deployment_fp, hello.deployment_fp);
  bytes.push_back(std::byte{0});
  EXPECT_THROW((void)HelloBody::decode(bytes), serde::DecodeError);
}
