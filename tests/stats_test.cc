// Unit tests for the statistics substrate (regression drives estimator
// calibration; the Fig-2 reproduction depends on these being right).
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "serde/archive.h"
#include "stats/histogram.h"
#include "stats/online_stats.h"
#include "stats/regression.h"

namespace tart::stats {
namespace {

// --- OnlineStats -----------------------------------------------------------

TEST(OnlineStatsTest, EmptyIsZero) {
  OnlineStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
}

TEST(OnlineStatsTest, KnownMoments) {
  OnlineStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_EQ(s.count(), 8u);
}

TEST(OnlineStatsTest, MergeMatchesSequential) {
  Rng rng(17);
  OnlineStats all, a, b;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(5, 2);
    all.add(x);
    (i % 2 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-6);
}

TEST(OnlineStatsTest, MergeWithEmpty) {
  OnlineStats a, b;
  a.add(3.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 1u);
  b.merge(a);
  EXPECT_EQ(b.count(), 1u);
  EXPECT_EQ(b.mean(), 3.0);
}

// --- Regression --------------------------------------------------------------

TEST(RegressionTest, PerfectLineWithIntercept) {
  std::vector<double> x, y;
  for (int i = 0; i < 50; ++i) {
    x.push_back(i);
    y.push_back(3.0 + 2.0 * i);
  }
  const LinearFit fit = fit_linear(x, y);
  EXPECT_NEAR(fit.intercept, 3.0, 1e-9);
  EXPECT_NEAR(fit.slope, 2.0, 1e-9);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
}

TEST(RegressionTest, ThroughOriginRecoversPaperCoefficient) {
  // Reproduce the shape of Equation 2: tau = 61827 * xi_1 with noise.
  Rng rng(2009);
  std::vector<double> x, y;
  for (int i = 0; i < 10000; ++i) {
    const double iters = static_cast<double>(rng.uniform_int(1, 19));
    const double noise = rng.lognormal(std::log(2000.0), 0.8);
    x.push_back(iters);
    y.push_back(61827.0 * iters + noise - 2000.0 * 1.38);
  }
  const LinearFit fit = fit_through_origin(x, y);
  EXPECT_NEAR(fit.slope, 61827.0, 500.0);
  EXPECT_EQ(fit.intercept, 0.0);
  EXPECT_GT(fit.r_squared, 0.9);
}

TEST(RegressionTest, DegenerateInputs) {
  EXPECT_EQ(fit_linear({}, {}).n, 0u);
  EXPECT_EQ(fit_linear({1.0}, {2.0}).slope, 0.0);
  // All-equal x: slope undefined, returns zero fit.
  const LinearFit fit = fit_linear({2, 2, 2}, {1, 2, 3});
  EXPECT_EQ(fit.slope, 0.0);
  const LinearFit fo = fit_through_origin({0, 0}, {1, 2});
  EXPECT_EQ(fo.slope, 0.0);
}

TEST(RegressionTest, PredictUsesBothTerms) {
  LinearFit fit;
  fit.intercept = 10;
  fit.slope = 2;
  EXPECT_DOUBLE_EQ(fit.predict(5), 20.0);
}

TEST(RegressionTest, PearsonPerfectAndZero) {
  std::vector<double> x, y_pos, y_neg;
  Rng rng(4);
  std::vector<double> y_rand;
  for (int i = 0; i < 2000; ++i) {
    x.push_back(i);
    y_pos.push_back(2.0 * i + 1);
    y_neg.push_back(-0.5 * i);
    y_rand.push_back(rng.uniform());
  }
  EXPECT_NEAR(pearson(x, y_pos), 1.0, 1e-12);
  EXPECT_NEAR(pearson(x, y_neg), -1.0, 1e-12);
  EXPECT_NEAR(pearson(x, y_rand), 0.0, 0.05);
}

TEST(RegressionTest, SkewnessSigns) {
  Rng rng(8);
  std::vector<double> right, sym;
  for (int i = 0; i < 50000; ++i) {
    right.push_back(rng.lognormal(0, 1));
    sym.push_back(rng.normal(0, 1));
  }
  EXPECT_GT(skewness(right), 1.0);  // "highly right-skewed"
  EXPECT_NEAR(skewness(sym), 0.0, 0.08);
}

TEST(RegressionTest, MultivariateExactFit) {
  // y = 5 + 2*x1 + 7*x2, rows [1, x1, x2].
  std::vector<std::vector<double>> rows;
  std::vector<double> y;
  Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    const double x1 = rng.uniform(0, 20);
    const double x2 = rng.uniform(0, 5);
    rows.push_back({1.0, x1, x2});
    y.push_back(5.0 + 2.0 * x1 + 7.0 * x2);
  }
  const auto beta = fit_multivariate(rows, y);
  ASSERT_EQ(beta.size(), 3u);
  EXPECT_NEAR(beta[0], 5.0, 1e-8);
  EXPECT_NEAR(beta[1], 2.0, 1e-9);
  EXPECT_NEAR(beta[2], 7.0, 1e-9);
}

TEST(RegressionTest, MultivariateSingularReturnsEmpty) {
  // Two identical columns -> singular normal equations.
  std::vector<std::vector<double>> rows{{1, 1}, {2, 2}, {3, 3}};
  std::vector<double> y{1, 2, 3};
  EXPECT_TRUE(fit_multivariate(rows, y).empty());
}

TEST(RegressionTest, MultivariateShapeMismatch) {
  EXPECT_TRUE(fit_multivariate({{1.0}}, {1.0, 2.0}).empty());
  EXPECT_TRUE(fit_multivariate({}, {}).empty());
}

TEST(RegressionTest, OnlineOriginFitMatchesBatch) {
  Rng rng(21);
  std::vector<double> x, y;
  OnlineOriginFit online;
  for (int i = 0; i < 5000; ++i) {
    const double xi = static_cast<double>(rng.uniform_int(1, 19));
    const double yi = 61827.0 * xi + rng.normal(0, 5000);
    x.push_back(xi);
    y.push_back(yi);
    online.add(xi, yi);
  }
  const LinearFit batch = fit_through_origin(x, y);
  EXPECT_NEAR(online.slope(), batch.slope, 1e-6);
  EXPECT_NEAR(online.r_squared(), batch.r_squared, 1e-9);
  EXPECT_EQ(online.n(), 5000u);
}

// --- Histogram ---------------------------------------------------------------

TEST(HistogramTest, PercentilesOfUniform) {
  Histogram h(10.0, 100);
  Rng rng(6);
  for (int i = 0; i < 100000; ++i) h.add(rng.uniform(0, 1000));
  EXPECT_NEAR(h.percentile(50), 500, 15);
  EXPECT_NEAR(h.percentile(95), 950, 15);
  EXPECT_NEAR(h.percentile(99), 990, 15);
}

TEST(HistogramTest, OverflowBucket) {
  Histogram h(1.0, 10);
  h.add(5.0);
  h.add(1e9);  // overflow
  EXPECT_EQ(h.count(), 2u);
  EXPECT_GE(h.percentile(99), 5.0);
}

TEST(HistogramTest, EmptyPercentileIsZero) {
  Histogram h(1.0, 10);
  EXPECT_EQ(h.percentile(50), 0.0);
}

TEST(HistogramTest, NegativeClampsToZero) {
  Histogram h(1.0, 10);
  h.add(-5.0);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_LE(h.percentile(100), 1.0);
}

TEST(HistogramTest, RenderProducesRows) {
  Histogram h(1.0, 10);
  for (int i = 0; i < 100; ++i) h.add(i % 5);
  const std::string out = h.render();
  EXPECT_NE(out.find('#'), std::string::npos);
}

TEST(HistogramTest, MergeMatchesSequential) {
  Histogram a(1.0, 10);
  Histogram b(1.0, 10);
  Histogram both(1.0, 10);
  for (const double x : {0.5, 1.5, 3.25, 9.9}) {
    a.add(x);
    both.add(x);
  }
  for (const double x : {2.5, 7.75, 42.0}) {  // 42 lands in overflow
    b.add(x);
    both.add(x);
  }
  ASSERT_TRUE(a.merge(b));
  EXPECT_EQ(a.count(), both.count());
  EXPECT_EQ(a.buckets(), both.buckets());
  EXPECT_DOUBLE_EQ(a.sum(), both.sum());
  EXPECT_DOUBLE_EQ(a.max_seen(), both.max_seen());
  EXPECT_DOUBLE_EQ(a.percentile(50), both.percentile(50));
}

TEST(HistogramTest, MergeEmptyIsIdentity) {
  Histogram a(1.0, 4);
  a.add(2.5);
  Histogram empty(1.0, 4);
  ASSERT_TRUE(a.merge(empty));
  EXPECT_EQ(a.count(), 1u);
  EXPECT_DOUBLE_EQ(a.max_seen(), 2.5);

  // Merging INTO an empty histogram adopts the other's contents.
  Histogram target(1.0, 4);
  ASSERT_TRUE(target.merge(a));
  EXPECT_EQ(target.count(), 1u);
  EXPECT_DOUBLE_EQ(target.sum(), 2.5);
}

TEST(HistogramTest, MergeSingleBucket) {
  Histogram a(10.0, 1);  // one bucket + overflow
  Histogram b(10.0, 1);
  a.add(5.0);
  b.add(15.0);
  ASSERT_TRUE(a.merge(b));
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.buckets().size(), 2u);
  EXPECT_EQ(a.buckets()[1], 1u);  // 15 overflowed
}

TEST(HistogramTest, MergeRejectsMismatchedBounds) {
  Histogram a(1.0, 10);
  a.add(0.5);
  Histogram wider(2.0, 10);
  wider.add(0.5);
  Histogram shorter(1.0, 5);
  shorter.add(0.5);
  EXPECT_FALSE(a.merge(wider));
  EXPECT_FALSE(a.merge(shorter));
  // The refusal left the target untouched.
  EXPECT_EQ(a.count(), 1u);
  EXPECT_DOUBLE_EQ(a.sum(), 0.5);
}

TEST(HistogramTest, SerdeRoundTrip) {
  Histogram h(0.25, 12);
  Rng rng(99);
  for (int i = 0; i < 200; ++i)
    h.add(rng.uniform(0.0, 5.0));  // some overflow past 3.0

  serde::Writer w;
  h.encode(w);
  const auto bytes = w.take();
  serde::Reader r(bytes);
  const Histogram back = Histogram::decode(r);
  EXPECT_TRUE(r.at_end());
  EXPECT_DOUBLE_EQ(back.bucket_width(), h.bucket_width());
  EXPECT_EQ(back.buckets(), h.buckets());
  EXPECT_EQ(back.count(), h.count());
  EXPECT_DOUBLE_EQ(back.sum(), h.sum());
  EXPECT_DOUBLE_EQ(back.max_seen(), h.max_seen());
  EXPECT_DOUBLE_EQ(back.percentile(99), h.percentile(99));
}

TEST(HistogramTest, SerdeRoundTripEmpty) {
  Histogram h(1.0, 3);
  serde::Writer w;
  h.encode(w);
  const auto bytes = w.take();
  serde::Reader r(bytes);
  const Histogram back = Histogram::decode(r);
  EXPECT_EQ(back.count(), 0u);
  EXPECT_DOUBLE_EQ(back.percentile(50), 0.0);
}

}  // namespace
}  // namespace tart::stats
