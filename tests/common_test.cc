// Unit tests for virtual time, strong ids, and the deterministic RNG.
#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "common/ids.h"
#include "common/rng.h"
#include "common/virtual_time.h"

namespace tart {
namespace {

// --- VirtualTime / TickDuration ------------------------------------------

TEST(VirtualTimeTest, DefaultIsZero) {
  EXPECT_EQ(VirtualTime().ticks(), 0);
  EXPECT_EQ(VirtualTime::zero(), VirtualTime(0));
}

TEST(VirtualTimeTest, UnitConversions) {
  EXPECT_EQ(TickDuration::micros(1).ticks(), 1000);
  EXPECT_EQ(TickDuration::millis(1).ticks(), 1'000'000);
  EXPECT_EQ(TickDuration::seconds(1).ticks(), 1'000'000'000);
  EXPECT_DOUBLE_EQ(TickDuration::micros(400).to_micros(), 400.0);
}

TEST(VirtualTimeTest, PaperExampleArithmetic) {
  // "messages sent to Merger will have respective virtual times of
  // 50000+3*61000 = 233000, and 80000+2*61000 = 202000"
  const VirtualTime in1(50000);
  const VirtualTime in2(80000);
  const TickDuration per_iter(61000);
  EXPECT_EQ((in1 + per_iter * 3).ticks(), 233000);
  EXPECT_EQ((in2 + per_iter * 2).ticks(), 202000);
  EXPECT_LT(in1 + per_iter * 3, VirtualTime(233001));
  EXPECT_GT(in1 + per_iter * 3, in2 + per_iter * 2);
}

TEST(VirtualTimeTest, OrderingAndMinMax) {
  const VirtualTime a(5), b(9);
  EXPECT_EQ(max(a, b), b);
  EXPECT_EQ(min(a, b), a);
  EXPECT_EQ(max(a, a), a);
}

TEST(VirtualTimeTest, InfinitySaturates) {
  const VirtualTime inf = VirtualTime::infinity();
  EXPECT_TRUE(inf.is_infinite());
  EXPECT_EQ(inf.next(), inf);
  EXPECT_EQ(inf.prev(), inf);
  EXPECT_GT(inf, VirtualTime(1'000'000'000'000));
}

TEST(VirtualTimeTest, PrevNext) {
  EXPECT_EQ(VirtualTime(7).next(), VirtualTime(8));
  EXPECT_EQ(VirtualTime(7).prev(), VirtualTime(6));
  EXPECT_EQ(VirtualTime(-1).next(), VirtualTime(0));
}

TEST(VirtualTimeTest, DurationArithmetic) {
  TickDuration d = TickDuration::micros(60);
  d += TickDuration::micros(40);
  EXPECT_EQ(d, TickDuration::micros(100));
  d -= TickDuration::micros(100);
  EXPECT_EQ(d.ticks(), 0);
  EXPECT_EQ(TickDuration(10) * 3, TickDuration(30));
  EXPECT_EQ(3 * TickDuration(10), TickDuration(30));
}

TEST(VirtualTimeTest, DifferenceOfPoints) {
  EXPECT_EQ(VirtualTime(500) - VirtualTime(200), TickDuration(300));
  EXPECT_EQ(VirtualTime(500) - TickDuration(100), VirtualTime(400));
}

TEST(VirtualTimeTest, Streaming) {
  std::ostringstream os;
  os << VirtualTime(42) << ' ' << VirtualTime::infinity();
  EXPECT_EQ(os.str(), "VT(42) VT(+inf)");
  EXPECT_EQ(to_string(VirtualTime(7)), "7");
  EXPECT_EQ(to_string(VirtualTime::infinity()), "+inf");
}

// --- Strong ids ------------------------------------------------------------

TEST(IdsTest, InvalidByDefault) {
  EXPECT_FALSE(ComponentId().is_valid());
  EXPECT_TRUE(ComponentId(0).is_valid());
  EXPECT_FALSE(WireId::invalid().is_valid());
}

TEST(IdsTest, OrderingIsByValue) {
  EXPECT_LT(WireId(1), WireId(2));
  EXPECT_EQ(WireId(3), WireId(3));
}

TEST(IdsTest, Hashable) {
  std::set<WireId> wires{WireId(1), WireId(2), WireId(1)};
  EXPECT_EQ(wires.size(), 2u);
  const std::hash<WireId> h;
  EXPECT_EQ(h(WireId(9)), h(WireId(9)));
}

// --- RNG ---------------------------------------------------------------------

TEST(RngTest, DeterministicFromSeed) {
  Rng a(123), b(123), c(124);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
  bool differs = false;
  Rng a2(123);
  for (int i = 0; i < 100; ++i)
    if (a2.next() != c.next()) differs = true;
  EXPECT_TRUE(differs);
}

TEST(RngTest, UniformRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformIntInclusiveBounds) {
  Rng rng(7);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 20000; ++i) {
    const auto v = rng.uniform_int(1, 19);
    EXPECT_GE(v, 1);
    EXPECT_LE(v, 19);
    saw_lo |= v == 1;
    saw_hi |= v == 19;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NormalMoments) {
  Rng rng(99);
  double sum = 0, sum2 = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(10.0, 2.0);
    sum += x;
    sum2 += x * x;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(var, 4.0, 0.15);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(5);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(1000.0);
  EXPECT_NEAR(sum / n, 1000.0, 15.0);
}

TEST(RngTest, LognormalIsPositiveAndRightSkewed) {
  Rng rng(11);
  double sum = 0;
  std::vector<double> xs;
  for (int i = 0; i < 50000; ++i) {
    const double x = rng.lognormal(0.0, 1.0);
    EXPECT_GT(x, 0.0);
    xs.push_back(x);
    sum += x;
  }
  const double mean = sum / static_cast<double>(xs.size());
  std::sort(xs.begin(), xs.end());
  const double median = xs[xs.size() / 2];
  EXPECT_GT(mean, median);  // right skew
}

TEST(RngTest, ChanceProbability) {
  Rng rng(3);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.chance(0.25) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.01);
}

TEST(RngTest, ForkIndependentButDeterministic) {
  Rng a(42), b(42);
  Rng fa = a.fork(), fb = b.fork();
  for (int i = 0; i < 50; ++i) EXPECT_EQ(fa.next(), fb.next());
}

TEST(RngTest, BoundedZeroAndOne) {
  Rng rng(1);
  EXPECT_EQ(rng.bounded(0), 0u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.bounded(1), 0u);
}

}  // namespace
}  // namespace tart
