// Tests for estimators, calibration, determinism faults, comm-delay
// estimators, and the hyper-aggressive bias policy.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "estimator/bias.h"
#include "estimator/calibrator.h"
#include "estimator/comm_delay.h"
#include "estimator/estimator.h"
#include "estimator/estimator_manager.h"
#include "log/fault_log.h"

namespace tart::estimator {
namespace {

BlockCounters iters(std::uint64_t n) {
  BlockCounters c;
  c.count(0, n);
  return c;
}

// --- BlockCounters --------------------------------------------------------

TEST(BlockCountersTest, GrowsOnDemand) {
  BlockCounters c;
  c.count(5, 3);
  EXPECT_EQ(c.get(5), 3u);
  EXPECT_EQ(c.get(0), 0u);
  EXPECT_EQ(c.get(99), 0u);
  EXPECT_EQ(c.num_blocks(), 6u);
  c.reset();
  EXPECT_EQ(c.get(5), 0u);
}

// --- Estimators -------------------------------------------------------------

TEST(EstimatorTest, ConstantIgnoresCounters) {
  const ConstantEstimator e(TickDuration::micros(600));
  EXPECT_EQ(e.estimate(iters(1)), TickDuration::micros(600));
  EXPECT_EQ(e.estimate(iters(19)), TickDuration::micros(600));
  EXPECT_EQ(e.min_estimate(), TickDuration::micros(600));
}

TEST(EstimatorTest, ConstantFloorsAtOneTick) {
  const ConstantEstimator e(TickDuration(0));
  EXPECT_EQ(e.estimate(iters(1)), TickDuration(1));
}

TEST(EstimatorTest, LinearMatchesEquationTwo) {
  // tau = 61827 * xi_1 (Equation 2).
  const LinearEstimator e({0.0, 61827.0});
  EXPECT_EQ(e.estimate(iters(3)), TickDuration(3 * 61827));
  EXPECT_EQ(e.estimate(iters(2)), TickDuration(2 * 61827));
  EXPECT_EQ(e.min_estimate(), TickDuration(61827));
}

TEST(EstimatorTest, LinearWithInterceptAndTwoBlocks) {
  // Equation 1: tau = beta0 + beta1 xi1 + beta2 xi2.
  const LinearEstimator e({100.0, 61000.0, 500.0});
  BlockCounters c;
  c.count(0, 3);  // xi1
  c.count(1, 2);  // xi2
  EXPECT_EQ(e.estimate(c), TickDuration(100 + 3 * 61000 + 2 * 500));
}

TEST(EstimatorTest, LinearFloorsAtOneTick) {
  const LinearEstimator e({0.0, 5.0});
  EXPECT_EQ(e.estimate(BlockCounters{}), TickDuration(1));
}

TEST(EstimatorTest, CloneIsIndependentCopy) {
  const LinearEstimator e({0.0, 61827.0});
  const auto c = e.clone();
  EXPECT_EQ(c->estimate(iters(2)), e.estimate(iters(2)));
  EXPECT_EQ(c->coefficients(), e.coefficients());
}

TEST(EstimatorTest, PerIterationHelper) {
  const auto e = per_iteration_estimator(60000.0);
  EXPECT_EQ(e->estimate(iters(10)), TickDuration::micros(600));
}

// --- Calibrator ----------------------------------------------------------------

TEST(CalibratorTest, NoProposalBeforeMinSamples) {
  CalibratorConfig cfg;
  cfg.min_samples = 100;
  Calibrator cal(cfg);
  for (int i = 0; i < 99; ++i) cal.add_sample(iters(10), 620000.0);
  EXPECT_FALSE(cal.propose({0.0, 61000.0}).has_value());
}

TEST(CalibratorTest, ProposesDriftedCoefficient) {
  // Active estimator says 61000/iter, measurements say ~62000/iter
  // (the §II.G.4 example).
  CalibratorConfig cfg;
  cfg.min_samples = 200;
  cfg.drift_threshold = 0.01;
  Calibrator cal(cfg);
  Rng rng(1);
  for (int i = 0; i < 300; ++i) {
    const auto n = static_cast<std::uint64_t>(rng.uniform_int(1, 19));
    cal.add_sample(iters(n),
                   62000.0 * static_cast<double>(n) + rng.normal(0, 100));
  }
  const auto proposal = cal.propose({0.0, 61000.0});
  ASSERT_TRUE(proposal.has_value());
  ASSERT_EQ(proposal->size(), 2u);
  EXPECT_NEAR((*proposal)[1], 62000.0, 200.0);
}

TEST(CalibratorTest, NoProposalWhenWithinThreshold) {
  CalibratorConfig cfg;
  cfg.min_samples = 100;
  cfg.drift_threshold = 0.05;
  Calibrator cal(cfg);
  Rng rng(2);
  for (int i = 0; i < 200; ++i) {
    const auto n = static_cast<std::uint64_t>(rng.uniform_int(1, 19));
    cal.add_sample(iters(n), 61200.0 * static_cast<double>(n));
  }
  EXPECT_FALSE(cal.propose({0.0, 61000.0}).has_value());  // 0.3% drift
}

TEST(CalibratorTest, InterceptFitWhenConfigured) {
  CalibratorConfig cfg;
  cfg.min_samples = 50;
  cfg.drift_threshold = 0.01;
  cfg.fit_intercept = true;
  Calibrator cal(cfg);
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    const auto n = static_cast<std::uint64_t>(rng.uniform_int(1, 19));
    cal.add_sample(iters(n), 5000.0 + 61827.0 * static_cast<double>(n));
  }
  const auto proposal = cal.propose({0.0, 61827.0});
  ASSERT_TRUE(proposal.has_value());
  EXPECT_NEAR((*proposal)[0], 5000.0, 50.0);
  EXPECT_NEAR((*proposal)[1], 61827.0, 50.0);
}

TEST(CalibratorTest, ResetDiscardsSamples) {
  CalibratorConfig cfg;
  cfg.min_samples = 10;
  Calibrator cal(cfg);
  for (int i = 0; i < 20; ++i) cal.add_sample(iters(10), 99999.0);
  cal.reset();
  EXPECT_EQ(cal.sample_count(), 0u);
  EXPECT_FALSE(cal.propose({0.0, 61000.0}).has_value());
}

// --- EstimatorManager & determinism faults -------------------------------------

TEST(EstimatorManagerTest, UsesInitialEstimator) {
  log::DeterminismFaultLog fault_log;
  EstimatorManager mgr(ComponentId(0), per_iteration_estimator(61000),
                       &fault_log);
  EXPECT_EQ(mgr.estimate(iters(3), VirtualTime(0)), TickDuration(183000));
  EXPECT_EQ(mgr.latest_version(), 0u);
}

TEST(EstimatorManagerTest, RecalibrationIsLoggedBeforeInstall) {
  log::DeterminismFaultLog fault_log;
  CalibratorConfig cfg;
  cfg.min_samples = 50;
  cfg.drift_threshold = 0.01;
  EstimatorManager mgr(ComponentId(0), per_iteration_estimator(61000),
                       &fault_log, cfg);
  std::optional<log::FaultRecord> fault;
  VirtualTime vt(0);
  Rng rng(7);
  for (int i = 0; i < 200 && !fault; ++i) {
    const auto n = static_cast<std::uint64_t>(rng.uniform_int(1, 19));
    vt = vt + TickDuration(61000 * static_cast<std::int64_t>(n));
    fault = mgr.add_sample(iters(n), 62000.0 * static_cast<double>(n), vt);
  }
  ASSERT_TRUE(fault.has_value());
  EXPECT_EQ(fault->version, 1u);
  EXPECT_GT(fault->effective_vt, vt);
  EXPECT_EQ(fault_log.latest_version(ComponentId(0)), 1u);

  // Old estimator is used strictly before effective_vt, new at/after it
  // ("the component must be careful to use the old estimator until
  // reaching [the logged time]").
  const VirtualTime before = fault->effective_vt.prev();
  EXPECT_EQ(mgr.estimate(iters(10), before), TickDuration(610000));
  const auto after = mgr.estimate(iters(10), fault->effective_vt);
  EXPECT_NEAR(static_cast<double>(after.ticks()), 620000.0, 2000.0);
}

TEST(EstimatorManagerTest, ReplayRebuildsVersionsFromLog) {
  log::DeterminismFaultLog fault_log;
  log::FaultRecord rec;
  rec.component = ComponentId(0);
  rec.version = 1;
  rec.effective_vt = VirtualTime(1000000);
  rec.coefficients = {0.0, 62000.0};
  fault_log.append(rec);

  // A recovering replica constructs its manager fresh; the logged fault
  // must be re-applied at exactly the logged virtual time.
  EstimatorManager mgr(ComponentId(0), per_iteration_estimator(61000),
                       &fault_log);
  EXPECT_EQ(mgr.estimate(iters(1), VirtualTime(999999)),
            TickDuration(61000));
  EXPECT_EQ(mgr.estimate(iters(1), VirtualTime(1000000)),
            TickDuration(62000));
  EXPECT_EQ(mgr.latest_version(), 1u);
}

TEST(EstimatorManagerTest, RestoreToVersionReappliesLoggedTail) {
  log::DeterminismFaultLog fault_log;
  CalibratorConfig cfg;
  cfg.min_samples = 10;
  cfg.drift_threshold = 0.01;
  cfg.refit_interval = 10;
  EstimatorManager mgr(ComponentId(0), per_iteration_estimator(61000),
                       &fault_log, cfg);
  VirtualTime vt(0);
  std::optional<log::FaultRecord> fault;
  for (int i = 0; i < 100 && !fault; ++i) {
    vt = vt + TickDuration(61000);
    fault = mgr.add_sample(iters(1), 65000.0, vt);
  }
  ASSERT_TRUE(fault.has_value());

  // Restore to the checkpointed version 0: the logged fault must come back.
  mgr.restore_to_version(0);
  EXPECT_EQ(mgr.latest_version(), 1u);
  EXPECT_EQ(mgr.version_at(fault->effective_vt), 1u);
  EXPECT_EQ(mgr.version_at(fault->effective_vt.prev()), 0u);
}

TEST(EstimatorManagerTest, NoFaultLogMeansNoRecalibration) {
  EstimatorManager mgr(ComponentId(0), per_iteration_estimator(61000),
                       nullptr);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_FALSE(
        mgr.add_sample(iters(1), 99999.0, VirtualTime(i)).has_value());
  }
  EXPECT_EQ(mgr.latest_version(), 0u);
}

TEST(EstimatorManagerTest, FutureMinCoversPendingVersions) {
  log::DeterminismFaultLog fault_log;
  log::FaultRecord rec;
  rec.component = ComponentId(0);
  rec.version = 1;
  rec.effective_vt = VirtualTime(1000);
  rec.coefficients = {0.0, 100.0};  // much smaller minimum
  fault_log.append(rec);
  EstimatorManager mgr(ComponentId(0), per_iteration_estimator(61000),
                       &fault_log);
  // Active min at vt 0 is 61000 but a pending version drops it to 100:
  // horizons must use the lower bound.
  EXPECT_EQ(mgr.min_estimate(VirtualTime(0)), TickDuration(61000));
  EXPECT_EQ(mgr.future_min_estimate(VirtualTime(0)), TickDuration(100));
  EXPECT_EQ(mgr.future_min_estimate(VirtualTime(1000)), TickDuration(100));
}

// --- Comm delay -------------------------------------------------------------------

TEST(CommDelayTest, LocalIsOneTick) {
  LocalDelayEstimator d;
  EXPECT_EQ(d.delay(VirtualTime(123)), TickDuration(1));
  EXPECT_EQ(d.min_delay(), TickDuration(1));
}

TEST(CommDelayTest, ConstantIsConstant) {
  ConstantDelayEstimator d(TickDuration::micros(150));
  EXPECT_EQ(d.delay(VirtualTime(0)), TickDuration::micros(150));
  EXPECT_EQ(d.min_delay(), TickDuration::micros(150));
}

TEST(CommDelayTest, RateBasedGrowsWithBacklog) {
  RateBasedDelayEstimator d(TickDuration::micros(100),
                            TickDuration::micros(10),
                            TickDuration::micros(1000));
  // First message: no recent history.
  EXPECT_EQ(d.delay(VirtualTime(0)), TickDuration::micros(100));
  // Burst within the window: each send sees a longer queue.
  EXPECT_EQ(d.delay(VirtualTime(100)), TickDuration::micros(110));
  EXPECT_EQ(d.delay(VirtualTime(200)), TickDuration::micros(120));
  // After the window passes, history evicts.
  EXPECT_EQ(d.delay(VirtualTime(2'000'000)), TickDuration::micros(100));
}

TEST(CommDelayTest, RateBasedIsDeterministicGivenHistory) {
  RateBasedDelayEstimator d1(TickDuration(100), TickDuration(10),
                             TickDuration(1000));
  RateBasedDelayEstimator d2(TickDuration(100), TickDuration(10),
                             TickDuration(1000));
  for (int i = 0; i < 50; ++i) {
    const VirtualTime vt(i * 37);
    EXPECT_EQ(d1.delay(vt), d2.delay(vt));
  }
}

TEST(CommDelayTest, RateBasedCaptureRestore) {
  RateBasedDelayEstimator d1(TickDuration(100), TickDuration(10),
                             TickDuration(10000));
  for (int i = 0; i < 5; ++i) (void)d1.delay(VirtualTime(i * 10));
  serde::Writer w;
  d1.capture(w);
  RateBasedDelayEstimator d2(TickDuration(100), TickDuration(10),
                             TickDuration(10000));
  serde::Reader r(w.bytes());
  d2.restore(r);
  // Identical history -> identical next estimates.
  EXPECT_EQ(d1.delay(VirtualTime(60)), d2.delay(VirtualTime(60)));
}

// --- Bias ----------------------------------------------------------------------

TEST(BiasTest, DisabledIsIdentity) {
  const BiasPolicy none;
  EXPECT_FALSE(none.enabled());
  EXPECT_EQ(none.adjust(VirtualTime(123)), VirtualTime(123));
  EXPECT_EQ(none.eager_promise(VirtualTime(123)), VirtualTime(123));
}

TEST(BiasTest, RoundsUpToGridBoundary) {
  const BiasPolicy bias(TickDuration(99));  // window = 100
  EXPECT_EQ(bias.adjust(VirtualTime(1)), VirtualTime(100));
  EXPECT_EQ(bias.adjust(VirtualTime(100)), VirtualTime(100));
  EXPECT_EQ(bias.adjust(VirtualTime(101)), VirtualTime(200));
}

TEST(BiasTest, EagerPromiseNeverCoversAdjustedData) {
  const BiasPolicy bias(TickDuration(99));
  for (std::int64_t t : {0, 1, 50, 99, 100, 101, 250}) {
    const VirtualTime current(t);
    const VirtualTime promise = bias.eager_promise(current);
    // Any message the sender emits after `current` lands strictly past the
    // promised silence.
    const VirtualTime earliest_data = bias.adjust(current.next());
    EXPECT_LT(promise, earliest_data);
    EXPECT_GE(promise, current);
  }
}

}  // namespace
}  // namespace tart::estimator
