// Stall-forensics tests: the decomposition math against hand-computed
// values, episode reconstruction from hand-built traces (tie-break relief,
// external wires, positional blame matching after episode-id restarts,
// multi-trace cross-node correlation), and an end-to-end run where a
// pessimistic hold is forced, traced, analyzed, and cross-linked to the
// registry's histogram exemplars.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <thread>

#include "apps/wordcount.h"
#include "core/runtime.h"
#include "obs/registry.h"
#include "trace/forensics.h"
#include "trace/trace_file.h"

namespace tart::trace {
namespace {

using namespace std::chrono_literals;

// ---------------------------------------------------------------------------
// decompose(): pure math against hand-computed values.

TEST(Decompose, SplitsAreExclusiveAndExhaustive) {
  // Receiver starts waiting at wall 1'000; the covering promise publishes
  // at wall 601'000; total stall 1'000'000 ns.
  const Decomposition d = decompose(/*stall_ns=*/1'000'000,
                                    /*begin_wall_ns=*/1'000,
                                    /*promise_wall_ns=*/601'000,
                                    /*needed_ticks=*/9, /*h_begin_ticks=*/7,
                                    /*next_emit_ticks=*/12);
  EXPECT_EQ(d.estimator_error_ns, 600'000);
  EXPECT_EQ(d.propagation_lag_ns, 400'000);
  EXPECT_EQ(d.estimator_error_ns + d.propagation_lag_ns, 1'000'000);
  EXPECT_EQ(d.deficit_ticks, 2);
  // Next data emit at 12: ticks 8..9 carried no data, so a perfect
  // estimator would have promised both at episode begin.
  EXPECT_EQ(d.estimator_error_ticks, 2);
}

TEST(Decompose, NoPromiseChargesTheEstimatorFully) {
  const Decomposition d = decompose(500, 100, /*promise_wall_ns=*/-1,
                                    /*needed=*/10, /*h_begin=*/10,
                                    /*next_emit=*/-1);
  EXPECT_EQ(d.estimator_error_ns, 500);
  EXPECT_EQ(d.propagation_lag_ns, 0);
  EXPECT_EQ(d.deficit_ticks, 0);
  EXPECT_EQ(d.estimator_error_ticks, 0);
}

TEST(Decompose, PromiseBeforeBeginIsAllPropagation) {
  // The covering horizon was already published before the receiver began
  // waiting: the sender's estimator was blameless, the promise just took
  // its time to land.
  const Decomposition d = decompose(1'000, /*begin=*/5'000, /*promise=*/4'000,
                                    20, 10, -1);
  EXPECT_EQ(d.estimator_error_ns, 0);
  EXPECT_EQ(d.propagation_lag_ns, 1'000);
}

TEST(Decompose, LatePromiseClampsToTheStall) {
  const Decomposition d = decompose(1'000, /*begin=*/0, /*promise=*/50'000,
                                    20, 10, -1);
  EXPECT_EQ(d.estimator_error_ns, 1'000);
  EXPECT_EQ(d.propagation_lag_ns, 0);
}

TEST(Decompose, TickShadowStopsAtTheSendersNextEmit) {
  // Sender's next data emit was at h_begin + 1: no silent deficit tick was
  // promisable, the wait was for data, not a better estimator.
  const Decomposition d = decompose(100, 0, 50, /*needed=*/15,
                                    /*h_begin=*/10, /*next_emit=*/11);
  EXPECT_EQ(d.deficit_ticks, 5);
  EXPECT_EQ(d.estimator_error_ticks, 0);
  // No emit at all: every deficit tick was silent, all promisable.
  const Decomposition e = decompose(100, 0, 50, 15, 10, /*next_emit=*/-1);
  EXPECT_EQ(e.estimator_error_ticks, 5);
}

// ---------------------------------------------------------------------------
// Episode reconstruction from hand-built traces.

TraceEvent ev(std::uint64_t seq, TraceEventKind kind, std::int64_t vt,
              WireId wire, std::uint64_t aux, std::uint64_t payload_hash) {
  TraceEvent e;
  e.seq = seq;
  e.kind = kind;
  e.vt = VirtualTime(vt);
  e.wire = wire;
  e.aux = aux;
  e.payload_hash = payload_hash;
  return e;
}

Trace wrap(std::vector<ComponentTrace> components) {
  Trace t;
  t.categories = static_cast<std::uint32_t>(TraceCategory::kAll);
  for (auto& ct : components) {
    for (auto& e : ct.events) e.component = ct.component;
    t.components.push_back(std::move(ct));
  }
  return t;
}

/// A receiver (component 1) that held vt 10 from wire 5 for 1 ms, blocked
/// by wire 6 (horizon 7 at episode begin, wall stamp 1'000); the sender
/// (component 2) on wire 6 promised horizon 8 early, then a covering
/// horizon 10 at wall 601'000, then emitted data at vt 12 (seq 42).
std::vector<ComponentTrace> tie_break_scenario() {
  ComponentTrace receiver;
  receiver.component = ComponentId(1);
  receiver.events = {
      ev(0, TraceEventKind::kStallBegin, 10, WireId(5), 0, 0),
      ev(1, TraceEventKind::kStallResolved, 10, WireId(6), /*episode=*/7,
         /*stall_ns=*/1'000'000),
      ev(2, TraceEventKind::kStallBlame, /*h_begin=*/7, WireId(6), 7,
         /*begin_wall=*/1'000),
  };
  ComponentTrace sender;
  sender.component = ComponentId(2);
  sender.events = {
      ev(0, TraceEventKind::kSilencePromise, 8, WireId(6),
         /*wall=*/200'000, 0),
      ev(1, TraceEventKind::kSilencePromise, 10, WireId(6),
         /*wall=*/601'000, 0),
      ev(2, TraceEventKind::kEmit, 12, WireId(6), /*seq=*/42, 0),
  };
  return {std::move(receiver), std::move(sender)};
}

void check_tie_break_report(const ForensicsReport& report) {
  ASSERT_EQ(report.episodes.size(), 1u);
  const Episode& ep = report.episodes[0];
  EXPECT_EQ(ep.component, ComponentId(1));
  EXPECT_EQ(ep.id, 7u);
  EXPECT_EQ(ep.held_vt, VirtualTime(10));
  EXPECT_EQ(ep.held_wire, WireId(5));
  EXPECT_EQ(ep.blocking_wire, WireId(6));
  EXPECT_EQ(ep.sender, ComponentId(2));
  EXPECT_EQ(ep.stall_ns, 1'000'000);
  EXPECT_EQ(ep.begin_wall_ns, 1'000);
  EXPECT_EQ(ep.h_begin, VirtualTime(7));
  // Wire 6 > held wire 5 loses the vt tie-break, so horizon 9 suffices.
  EXPECT_EQ(ep.needed, VirtualTime(9));
  ASSERT_TRUE(ep.promise_wall_ns.has_value());
  EXPECT_EQ(*ep.promise_wall_ns, 601'000);  // vt 10 is the first covering 9
  ASSERT_TRUE(ep.resolving_emit_seq.has_value());
  EXPECT_EQ(*ep.resolving_emit_seq, 42u);
  EXPECT_TRUE(ep.attributed);
  EXPECT_EQ(ep.split.estimator_error_ns, 600'000);
  EXPECT_EQ(ep.split.propagation_lag_ns, 400'000);
  EXPECT_EQ(ep.split.deficit_ticks, 2);
  EXPECT_EQ(ep.split.estimator_error_ticks, 2);

  ASSERT_EQ(report.blame.size(), 1u);
  EXPECT_EQ(report.blame[0].sender, ComponentId(2));
  EXPECT_EQ(report.blame[0].episodes, 1u);
  EXPECT_EQ(report.blame[0].stall_ns, 1'000'000);
  EXPECT_EQ(report.total_stall_ns, 1'000'000);
  EXPECT_EQ(report.attributed_stall_ns, 1'000'000);
  EXPECT_DOUBLE_EQ(report.attributed_fraction(), 1.0);
  EXPECT_NE(report.find(ComponentId(1), 7), nullptr);
  EXPECT_EQ(report.find(ComponentId(1), 8), nullptr);
}

TEST(Forensics, ReconstructsATieBreakEpisode) {
  check_tie_break_report(analyze({wrap(tie_break_scenario())}));
}

TEST(Forensics, CorrelatesSenderAndReceiverAcrossTraces) {
  // Same scenario, but receiver and sender live in different nodes'
  // traces — wire ids are deployment-global, so the join is free.
  auto streams = tie_break_scenario();
  const Trace node_a = wrap({streams[0]});
  const Trace node_b = wrap({streams[1]});
  check_tie_break_report(analyze({node_a, node_b}));
}

TEST(Forensics, NoTieBreakReliefWhenBlockingWireWins) {
  // Blocking wire 6 < held wire 9: the blocking wire wins equal-vt merges,
  // so its horizon must reach the held vt itself.
  ComponentTrace receiver;
  receiver.component = ComponentId(1);
  receiver.events = {
      ev(0, TraceEventKind::kStallBegin, 10, WireId(9), 0, 0),
      ev(1, TraceEventKind::kStallResolved, 10, WireId(6), 0, 500),
      ev(2, TraceEventKind::kStallBlame, 7, WireId(6), 0, 100),
  };
  const ForensicsReport report = analyze({wrap({std::move(receiver)})});
  ASSERT_EQ(report.episodes.size(), 1u);
  EXPECT_EQ(report.episodes[0].needed, VirtualTime(10));
}

TEST(Forensics, ExternalWireChargesTheEstimatorFully) {
  // No component ever emits on wire 3: it is an external input. There is
  // no sender stream, no promise — "nobody ever promised".
  ComponentTrace receiver;
  receiver.component = ComponentId(4);
  receiver.events = {
      ev(0, TraceEventKind::kStallBegin, 50, WireId(2), 0, 0),
      ev(1, TraceEventKind::kStallResolved, 50, WireId(3), 1, 9'000),
      ev(2, TraceEventKind::kStallBlame, 10, WireId(3), 1, 77),
  };
  const ForensicsReport report = analyze({wrap({std::move(receiver)})});
  ASSERT_EQ(report.episodes.size(), 1u);
  const Episode& ep = report.episodes[0];
  EXPECT_FALSE(ep.sender.is_valid());
  EXPECT_FALSE(ep.promise_wall_ns.has_value());
  EXPECT_TRUE(ep.attributed);
  EXPECT_EQ(ep.split.estimator_error_ns, 9'000);
  EXPECT_EQ(ep.split.propagation_lag_ns, 0);
  ASSERT_EQ(report.blame.size(), 1u);
  EXPECT_FALSE(report.blame[0].sender.is_valid());
}

TEST(Forensics, MissingBlameLeavesTheEpisodeUnattributed) {
  ComponentTrace receiver;
  receiver.component = ComponentId(1);
  receiver.events = {
      ev(0, TraceEventKind::kStallResolved, 10, WireId(6), 0, 800),
  };
  const ForensicsReport report = analyze({wrap({std::move(receiver)})});
  ASSERT_EQ(report.episodes.size(), 1u);
  EXPECT_FALSE(report.episodes[0].attributed);
  EXPECT_EQ(report.total_stall_ns, 800);
  EXPECT_EQ(report.attributed_stall_ns, 0);
  EXPECT_DOUBLE_EQ(report.attributed_fraction(), 0.0);
  EXPECT_TRUE(report.blame.empty());
}

TEST(Forensics, BlameMatchesPositionallyAfterEpisodeIdRestart) {
  // After crash/recover the runner's episode counter restarts while the
  // trace stream continues: two episodes with id 0 in one stream. Each
  // must bind the first blame record *after* its own resolution.
  ComponentTrace receiver;
  receiver.component = ComponentId(1);
  receiver.events = {
      ev(0, TraceEventKind::kStallResolved, 10, WireId(6), 0, 100),
      ev(1, TraceEventKind::kStallBlame, 5, WireId(6), 0, /*wall=*/111),
      ev(2, TraceEventKind::kStallResolved, 20, WireId(6), 0, 200),
      ev(3, TraceEventKind::kStallBlame, 15, WireId(6), 0, /*wall=*/222),
  };
  const ForensicsReport report = analyze({wrap({std::move(receiver)})});
  ASSERT_EQ(report.episodes.size(), 2u);
  EXPECT_EQ(report.episodes[0].begin_wall_ns, 111);
  EXPECT_EQ(report.episodes[0].h_begin, VirtualTime(5));
  EXPECT_EQ(report.episodes[1].begin_wall_ns, 222);
  EXPECT_EQ(report.episodes[1].h_begin, VirtualTime(15));
  EXPECT_TRUE(report.episodes[0].attributed);
  EXPECT_TRUE(report.episodes[1].attributed);
  // Both roll into one blame row.
  ASSERT_EQ(report.blame.size(), 1u);
  EXPECT_EQ(report.blame[0].episodes, 2u);
  EXPECT_EQ(report.blame[0].stall_ns, 300);
}

// ---------------------------------------------------------------------------
// Open episodes: a stream that ends (crash, truncation) mid-stall must
// not silently drop the accumulated wait from the totals.

TEST(Forensics, StreamEndingMidEpisodeReportsItOpen) {
  // The begin carries its wall stamp (v2); a later event elsewhere in the
  // traces pins the end-of-recording bound at wall 5'000.
  ComponentTrace receiver;
  receiver.component = ComponentId(1);
  receiver.events = {
      ev(0, TraceEventKind::kStallBegin, 10, WireId(5), 2, /*wall=*/1'000),
  };
  ComponentTrace other;
  other.component = ComponentId(2);
  other.events = {
      ev(0, TraceEventKind::kHopDispatch, 99, WireId(8), 0, /*wall=*/5'000),
  };
  const ForensicsReport report =
      analyze({wrap({std::move(receiver), std::move(other)})});
  ASSERT_EQ(report.episodes.size(), 1u);
  const Episode& ep = report.episodes[0];
  EXPECT_TRUE(ep.open);
  EXPECT_FALSE(ep.attributed);
  EXPECT_EQ(ep.id, 2u);
  EXPECT_EQ(ep.held_wire, WireId(5));
  EXPECT_EQ(ep.held_vt, VirtualTime(10));
  // Lower bound: latest wall stamp anywhere minus the begin stamp.
  EXPECT_EQ(ep.stall_ns, 4'000);
  EXPECT_EQ(report.open_episodes, 1u);
  EXPECT_EQ(report.open_stall_ns, 4'000);
  EXPECT_EQ(report.total_stall_ns, 4'000);
}

TEST(Forensics, SupersededBeginIsNotOpen) {
  // The held head changed mid-wait (begin, begin, resolved): the wait
  // continued under the newer episode id, so only one episode exists and
  // nothing is open.
  ComponentTrace receiver;
  receiver.component = ComponentId(1);
  receiver.events = {
      ev(0, TraceEventKind::kStallBegin, 10, WireId(5), 0, 1'000),
      ev(1, TraceEventKind::kStallBegin, 12, WireId(5), 1, 2'000),
      ev(2, TraceEventKind::kStallResolved, 12, WireId(6), 1, 700),
  };
  const ForensicsReport report = analyze({wrap({std::move(receiver)})});
  ASSERT_EQ(report.episodes.size(), 1u);
  EXPECT_FALSE(report.episodes[0].open);
  EXPECT_EQ(report.open_episodes, 0u);
  EXPECT_EQ(report.total_stall_ns, 700);
}

TEST(Forensics, CrashMarkerFlushesThePendingBegin) {
  // A kCrash mid-stream orphans the in-flight episode even though the
  // stream continues afterwards with a fresh, properly resolved one.
  ComponentTrace receiver;
  receiver.component = ComponentId(1);
  receiver.events = {
      ev(0, TraceEventKind::kStallBegin, 10, WireId(5), 0, 1'000),
      ev(1, TraceEventKind::kCrash, 0, WireId(), 0, 0),
      ev(2, TraceEventKind::kStallBegin, 20, WireId(5), 0, 6'000),
      ev(3, TraceEventKind::kStallResolved, 20, WireId(6), 0, 300),
      ev(4, TraceEventKind::kStallBlame, 15, WireId(6), 0, /*wall=*/6'000),
  };
  const ForensicsReport report = analyze({wrap({std::move(receiver)})});
  ASSERT_EQ(report.episodes.size(), 2u);
  std::size_t open_count = 0;
  for (const Episode& ep : report.episodes)
    if (ep.open) ++open_count;
  EXPECT_EQ(open_count, 1u);
  EXPECT_EQ(report.open_episodes, 1u);
  // The open lower bound: latest stamp (blame wall 6'000) minus begin.
  EXPECT_EQ(report.open_stall_ns, 5'000);
  EXPECT_EQ(report.total_stall_ns, 5'000 + 300);
}

TEST(Forensics, PreV2BeginWithoutStampIsSkipped) {
  // v1 recorders stamped no wall clock into kStallBegin (payload 0): an
  // orphaned v1 begin carries no usable bound and is silently dropped
  // rather than synthesizing a bogus zero-length episode.
  ComponentTrace receiver;
  receiver.component = ComponentId(1);
  receiver.events = {
      ev(0, TraceEventKind::kStallBegin, 10, WireId(5), 0, /*wall=*/0),
  };
  const ForensicsReport report = analyze({wrap({std::move(receiver)})});
  EXPECT_TRUE(report.episodes.empty());
  EXPECT_EQ(report.open_episodes, 0u);
  EXPECT_EQ(report.total_stall_ns, 0);
}

TEST(Forensics, EmptyReportAttributesEverything) {
  const ForensicsReport report = analyze({});
  EXPECT_TRUE(report.episodes.empty());
  EXPECT_DOUBLE_EQ(report.attributed_fraction(), 1.0);
  EXPECT_TRUE(report.top(5).empty());
}

// ---------------------------------------------------------------------------
// End to end: force a pessimistic hold, trace it, analyze it, and check
// the registry exemplars point at episodes the report can explain.

TEST(Forensics, ExplainsARealStallAndLinksExemplars) {
  core::Topology topo;
  const ComponentId a =
      topo.add("a", [] { return std::make_unique<apps::Passthrough>(); });
  const ComponentId b =
      topo.add("b", [] { return std::make_unique<apps::Passthrough>(); });
  const ComponentId c =
      topo.add("c", [] { return std::make_unique<apps::TotalingMerger>(); });
  const WireId in_a = topo.external_input(a, PortId(0));
  const WireId in_b = topo.external_input(b, PortId(0));
  (void)topo.connect(a, PortId(0), c, PortId(0));
  const WireId b_to_c = topo.connect(b, PortId(0), c, PortId(1));
  (void)topo.external_output(c, PortId(0));

  const std::string path =
      (std::filesystem::temp_directory_path() / "tart_forensics_e2e.trc")
          .string();
  core::RuntimeConfig config;
  config.trace.enabled = true;
  config.trace.path = path;
  config.trace.categories = static_cast<std::uint32_t>(TraceCategory::kAll);

  std::vector<obs::BucketExemplar> exemplars;
  {
    core::Runtime rt(topo,
                     {{a, EngineId(0)}, {b, EngineId(0)}, {c, EngineId(1)}},
                     std::move(config));
    rt.start();
    // A's message reaches the merger quickly; B's input wire stays silent,
    // so the merger pessimistically holds the head for real wall time.
    rt.inject_at(in_a, VirtualTime(100'000), Payload(std::int64_t{1}));
    std::this_thread::sleep_for(30ms);
    rt.inject_at(in_b, VirtualTime(300'000), Payload(std::int64_t{2}));
    ASSERT_TRUE(rt.drain(60s));
    for (const obs::Sample& s : rt.registry().samples())
      if (s.name == "tart_pessimism_stall_seconds")
        exemplars.insert(exemplars.end(), s.exemplars.begin(),
                         s.exemplars.end());
    rt.stop();
  }

  const Trace trace = TraceReader::read_file(path);
  const ForensicsReport report = analyze({trace});

  // The forced hold shows up as an attributed episode blaming B's wire
  // into the merger, with most of the ~30 ms wall wait recorded.
  ASSERT_FALSE(report.episodes.empty());
  const Episode* forced = nullptr;
  for (const Episode& ep : report.episodes)
    if (ep.component == c && ep.blocking_wire == b_to_c &&
        (forced == nullptr || ep.stall_ns > forced->stall_ns))
      forced = &ep;
  ASSERT_NE(forced, nullptr);
  EXPECT_TRUE(forced->attributed);
  EXPECT_EQ(forced->sender, b);
  EXPECT_GE(forced->stall_ns, 15'000'000) << "expected a ~30 ms hold";

  // Decomposition invariant on every episode: the parts sum to the stall.
  for (const Episode& ep : report.episodes) {
    EXPECT_EQ(ep.split.estimator_error_ns + ep.split.propagation_lag_ns,
              ep.stall_ns)
        << "episode " << ep.id;
    EXPECT_GE(ep.split.estimator_error_ns, 0);
    EXPECT_GE(ep.split.propagation_lag_ns, 0);
  }

  // Every exemplar the stall histograms stashed names an episode the
  // report can explain — the link `tart-trace explain --episode` follows.
  EXPECT_FALSE(exemplars.empty());
  for (const obs::BucketExemplar& be : exemplars) {
    const Episode* ep =
        report.find(ComponentId(be.ex.component), be.ex.episode);
    ASSERT_NE(ep, nullptr) << "exemplar episode " << be.ex.episode;
    EXPECT_NEAR(be.ex.value, static_cast<double>(ep->stall_ns) * 1e-9,
                1e-9);
  }

  std::remove(path.c_str());
}

}  // namespace
}  // namespace tart::trace
