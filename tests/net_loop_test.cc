// In-process exercises of the socket transport: the event loop's timer /
// post / fd plumbing, and pairs of ConnectionManagers talking over
// loopback TCP — handshake, frame exchange, link-down on shutdown,
// reconnect with a replacement peer, heartbeat-miss detection against a
// silent fake peer, and backpressure accounting.
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

#include "common/virtual_time.h"
#include "net/connection_manager.h"
#include "net/event_loop.h"
#include "net/socket.h"
#include "net/wire_format.h"
#include "transport/frame.h"

using namespace tart;
using namespace tart::net;
using namespace std::chrono_literals;

namespace {

/// Waits until `pred` holds, polling; the net layer is asynchronous by
/// nature, so tests assert on eventually-visible state.
template <typename Pred>
bool eventually(Pred pred, std::chrono::milliseconds timeout = 5s) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (!pred()) {
    if (std::chrono::steady_clock::now() > deadline) return false;
    std::this_thread::sleep_for(2ms);
  }
  return true;
}

transport::Frame probe(std::uint32_t wire) {
  return transport::ProbeFrame{WireId(wire)};
}

/// Tracks link + frame arrivals for one manager under test.
struct Sink {
  std::mutex mu;
  std::vector<std::uint32_t> wires;  // frame_wire of every arrival
  int ups = 0;
  int downs = 0;

  ConnectionManager::FrameHandler frame_handler() {
    return [this](const std::string&, transport::Frame f) {
      const std::lock_guard<std::mutex> lk(mu);
      wires.push_back(transport::frame_wire(f).value());
    };
  }
  ConnectionManager::LinkHandler link_handler() {
    return [this](const std::string&, bool up) {
      const std::lock_guard<std::mutex> lk(mu);
      (up ? ups : downs)++;
    };
  }
  int up_count() {
    const std::lock_guard<std::mutex> lk(mu);
    return ups;
  }
  int down_count() {
    const std::lock_guard<std::mutex> lk(mu);
    return downs;
  }
  std::vector<std::uint32_t> seen() {
    const std::lock_guard<std::mutex> lk(mu);
    return wires;
  }
};

NetTuning fast_tuning() {
  NetTuning t;
  t.heartbeat_interval = 30ms;
  t.heartbeat_miss_limit = 3;
  t.reconnect_min = 10ms;
  t.reconnect_max = 100ms;
  return t;
}

}  // namespace

// --- EventLoop ---------------------------------------------------------------

TEST(EventLoopTest, PostRunsOnLoopThreadAndStopReturns) {
  EventLoop loop;
  std::thread t([&] { loop.run(); });
  std::atomic<int> ran{0};
  for (int i = 0; i < 10; ++i) loop.post([&] { ran.fetch_add(1); });
  ASSERT_TRUE(eventually([&] { return ran.load() == 10; }));
  loop.stop();
  t.join();
}

TEST(EventLoopTest, TimersFireInDeadlineOrder) {
  EventLoop loop;
  std::thread t([&] { loop.run(); });
  std::mutex mu;
  std::vector<int> order;
  std::atomic<bool> done{false};
  loop.post([&] {
    const auto now = EventLoop::Clock::now();
    loop.add_timer(now + 30ms, [&] {
      const std::lock_guard<std::mutex> lk(mu);
      order.push_back(2);
      done.store(true);
    });
    loop.add_timer(now + 10ms, [&] {
      const std::lock_guard<std::mutex> lk(mu);
      order.push_back(1);
    });
  });
  ASSERT_TRUE(eventually([&] { return done.load(); }));
  loop.stop();
  t.join();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(EventLoopTest, CancelledTimerNeverFires) {
  EventLoop loop;
  std::thread t([&] { loop.run(); });
  std::atomic<bool> fired{false};
  std::atomic<bool> sentinel{false};
  loop.post([&] {
    const auto id = loop.add_timer(EventLoop::Clock::now() + 20ms,
                                   [&] { fired.store(true); });
    loop.cancel_timer(id);
    loop.add_timer(EventLoop::Clock::now() + 60ms,
                   [&] { sentinel.store(true); });
  });
  ASSERT_TRUE(eventually([&] { return sentinel.load(); }));
  EXPECT_FALSE(fired.load());
  loop.stop();
  t.join();
}

// --- ConnectionManager pairs -------------------------------------------------

TEST(ConnectionManagerTest, PairConnectsAndExchangesFrames) {
  Sink sink_a, sink_b;
  // Smaller name dials: a dials b, b accepts. b still lists a as a peer —
  // inbound HELLOs are validated against the peer table.
  ConnectionManager::Options bo;
  bo.node = "b";
  bo.listen = "127.0.0.1:0";
  bo.peers["a"] = "127.0.0.1:1";  // never dialed from b's side
  bo.tuning = fast_tuning();
  ConnectionManager b(bo, sink_b.frame_handler(), sink_b.link_handler());
  ASSERT_NE(b.listen_port(), 0);

  ConnectionManager::Options ao;
  ao.node = "a";
  ao.listen = "127.0.0.1:0";
  ao.peers["b"] = "127.0.0.1:" + std::to_string(b.listen_port());
  ao.tuning = fast_tuning();
  ConnectionManager a(ao, sink_a.frame_handler(), sink_a.link_handler());
  ASSERT_TRUE(eventually([&] { return a.peer_up("b"); }))
      << "dialer never saw link-up";

  for (std::uint32_t i = 0; i < 100; ++i) ASSERT_TRUE(a.send("b", probe(i)));
  ASSERT_TRUE(eventually([&] { return sink_b.seen().size() == 100; }));
  const auto seen = sink_b.seen();
  for (std::uint32_t i = 0; i < 100; ++i) EXPECT_EQ(seen[i], i);  // FIFO

  const auto ca = a.counters();
  EXPECT_EQ(ca.frames_out, 100u);
  EXPECT_GT(ca.bytes_out, 0u);
  EXPECT_EQ(ca.connects, 1u);
  EXPECT_EQ(ca.reconnects, 0u);

  a.shutdown();
  b.shutdown();
}

TEST(ConnectionManagerTest, AcceptorValidatesHelloFromKnownPeer) {
  Sink sink_a, sink_b;
  ConnectionManager::Options bo;
  bo.node = "b";
  bo.listen = "127.0.0.1:0";
  bo.tuning = fast_tuning();
  ConnectionManager b_wrong(bo, sink_b.frame_handler(),
                            sink_b.link_handler());
  // b has no peer "a" in its table: the inbound HELLO must be refused,
  // so a never reaches link-up.
  ConnectionManager::Options ao;
  ao.node = "a";
  ao.peers["b"] = "127.0.0.1:" + std::to_string(b_wrong.listen_port());
  ao.tuning = fast_tuning();
  ConnectionManager a(ao, sink_a.frame_handler(), sink_a.link_handler());
  std::this_thread::sleep_for(300ms);
  EXPECT_FALSE(a.peer_up("b"));
  EXPECT_FALSE(a.send("b", probe(1)));
  EXPECT_GT(a.counters().frames_refused, 0u);
  a.shutdown();
  b_wrong.shutdown();
}

TEST(ConnectionManagerTest, FingerprintMismatchIsRefused) {
  Sink sink_a, sink_b;
  ConnectionManager::Options bo;
  bo.node = "b";
  bo.listen = "127.0.0.1:0";
  bo.deployment_fp = 1111;
  bo.tuning = fast_tuning();
  ConnectionManager b(bo, sink_b.frame_handler(), sink_b.link_handler());
  bo.peers["a"] = "unused";

  ConnectionManager::Options ao;
  ao.node = "a";
  ao.peers["b"] = "127.0.0.1:" + std::to_string(b.listen_port());
  ao.deployment_fp = 2222;  // different config build
  ao.tuning = fast_tuning();
  ConnectionManager a(ao, sink_a.frame_handler(), sink_a.link_handler());
  std::this_thread::sleep_for(300ms);
  EXPECT_FALSE(a.peer_up("b"));
  a.shutdown();
  b.shutdown();
}

TEST(ConnectionManagerTest, DialerReconnectsAfterPeerRestart) {
  Sink sink_a;
  ConnectionManager::Options ao;
  ao.node = "a";
  ao.tuning = fast_tuning();

  std::uint16_t port = 0;
  {
    Sink sink_b;
    ConnectionManager::Options bo;
    bo.node = "b";
    bo.listen = "127.0.0.1:0";
    bo.peers["a"] = "127.0.0.1:1";  // never dialed (b > a accepts)
    bo.tuning = fast_tuning();
    ConnectionManager b(bo, sink_b.frame_handler(), sink_b.link_handler());
    port = b.listen_port();

    ao.peers["b"] = "127.0.0.1:" + std::to_string(port);
    // (a constructed below, after b's port is known)
  }
  // First incarnation of b is gone; a dials into the void, backing off.
  ConnectionManager::Options bo2;
  bo2.node = "b";
  bo2.listen = "127.0.0.1:" + std::to_string(port);
  bo2.peers["a"] = "127.0.0.1:1";
  bo2.tuning = fast_tuning();

  Sink sink_a2;
  ConnectionManager a(ao, sink_a2.frame_handler(), sink_a2.link_handler());
  std::this_thread::sleep_for(100ms);  // let a fail a few dials
  EXPECT_FALSE(a.peer_up("b"));

  Sink sink_b2;
  ConnectionManager b2(bo2, sink_b2.frame_handler(), sink_b2.link_handler());
  ASSERT_TRUE(eventually([&] { return a.peer_up("b"); }))
      << "dialer never recovered after peer came (back) up";
  EXPECT_GE(sink_a2.up_count(), 1);

  // Kill and restart the acceptor: a must notice the drop and redial.
  b2.shutdown();
  ASSERT_TRUE(eventually([&] { return !a.peer_up("b"); }));
  EXPECT_GE(sink_a2.down_count(), 1);

  Sink sink_b3;
  ConnectionManager b3(bo2, sink_b3.frame_handler(), sink_b3.link_handler());
  ASSERT_TRUE(eventually([&] { return a.peer_up("b"); }));
  EXPECT_GE(a.counters().reconnects, 1u) << "second link-up must count as "
                                            "a reconnect";
  ASSERT_TRUE(a.send("b", probe(42)));
  ASSERT_TRUE(eventually([&] { return sink_b3.seen().size() == 1; }));

  a.shutdown();
  b3.shutdown();
}

TEST(ConnectionManagerTest, HeartbeatMissAgainstSilentPeer) {
  // A fake peer that completes the HELLO handshake, then goes silent
  // forever (reads but never writes): the manager must declare the link
  // down via heartbeat misses, not hang.
  std::string err;
  Fd listener = listen_tcp(*SockAddr::parse("127.0.0.1:0"), &err);
  ASSERT_TRUE(listener.valid()) << err;
  const std::uint16_t port = local_port(listener.get());

  std::atomic<bool> stop{false};
  std::thread fake([&] {
    Fd conn;
    while (!stop.load() && !conn.valid()) {
      conn = accept_tcp(listener.get());
      std::this_thread::sleep_for(5ms);
    }
    if (!conn.valid()) return;
    // Send a valid HELLO, then nothing — not even heartbeats.
    const auto hello =
        encode_message(NetMsgType::kHello, HelloBody{"b", 0}.encode());
    (void)::write(conn.get(), hello.data(), hello.size());
    while (!stop.load()) {
      std::byte buf[4096];
      (void)::read(conn.get(), buf, sizeof(buf));  // drain, stay silent
      std::this_thread::sleep_for(5ms);
    }
  });

  Sink sink;
  ConnectionManager::Options ao;
  ao.node = "a";
  ao.peers["b"] = "127.0.0.1:" + std::to_string(port);
  ao.tuning = fast_tuning();
  ConnectionManager a(ao, sink.frame_handler(), sink.link_handler());
  ASSERT_TRUE(eventually([&] { return sink.up_count() >= 1; }));
  ASSERT_TRUE(eventually([&] { return sink.down_count() >= 1; }, 10s))
      << "silent peer never declared down";
  EXPECT_GE(a.counters().heartbeat_misses, 1u);

  stop.store(true);
  a.shutdown();
  fake.join();
}

TEST(ConnectionManagerTest, SendToDownPeerRefusesAndCounts) {
  Sink sink;
  ConnectionManager::Options ao;
  ao.node = "a";
  ao.peers["b"] = "127.0.0.1:1";  // nothing listens there
  ao.tuning = fast_tuning();
  ConnectionManager a(ao, sink.frame_handler(), sink.link_handler());
  EXPECT_FALSE(a.send("b", probe(1)));
  EXPECT_FALSE(a.send("nonexistent", probe(2)));
  EXPECT_GE(a.counters().frames_refused, 2u);
  a.shutdown();
  EXPECT_FALSE(a.send("b", probe(3)));  // after shutdown: still safe
}

TEST(ConnectionManagerTest, MalformedInboundBytesDropConnectionNotProcess) {
  // Connect a raw socket to the acceptor and write garbage: the manager
  // must count a decode error and drop the connection; the process lives.
  Sink sink;
  ConnectionManager::Options bo;
  bo.node = "b";
  bo.listen = "127.0.0.1:0";
  bo.peers["a"] = "127.0.0.1:1";
  bo.tuning = fast_tuning();
  ConnectionManager b(bo, sink.frame_handler(), sink.link_handler());

  bool in_progress = false;
  std::string err;
  Fd raw = connect_tcp(*SockAddr::parse("127.0.0.1:" +
                                        std::to_string(b.listen_port())),
                       &in_progress, &err);
  ASSERT_TRUE(raw.valid()) << err;
  std::this_thread::sleep_for(50ms);
  const char garbage[] = "GET / HTTP/1.1\r\n\r\n";
  (void)::write(raw.get(), garbage, sizeof(garbage));
  ASSERT_TRUE(eventually([&] { return b.counters().decode_errors >= 1; }))
      << "garbage never surfaced as a decode error";
  b.shutdown();
}

// ---------------------------------------------------------------------------
// Address parsing + resolution: numeric IPv4, bracketed IPv6, hostnames.

TEST(SockAddrTest, ParsesNumericIPv4) {
  const auto a = SockAddr::parse("10.0.0.2:7100");
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->host, "10.0.0.2");
  EXPECT_EQ(a->port, 7100);
  EXPECT_EQ(a->to_string(), "10.0.0.2:7100");
}

TEST(SockAddrTest, ParsesBracketedIPv6AndRoundTripsBrackets) {
  const auto a = SockAddr::parse("[::1]:9000");
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->host, "::1");  // brackets stripped internally
  EXPECT_EQ(a->port, 9000);
  EXPECT_EQ(a->to_string(), "[::1]:9000");

  const auto b = SockAddr::parse("[fe80::2:1]:7101");
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(b->host, "fe80::2:1");
  EXPECT_EQ(b->port, 7101);
}

TEST(SockAddrTest, ParsesHostnames) {
  const auto a = SockAddr::parse("db-2.rack1:7101");
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->host, "db-2.rack1");
  EXPECT_EQ(a->port, 7101);

  // localhost normalizes to the v4 loopback literal so single-machine
  // deployments never depend on resolver configuration.
  const auto l = SockAddr::parse("localhost:80");
  ASSERT_TRUE(l.has_value());
  EXPECT_EQ(l->host, "127.0.0.1");
}

TEST(SockAddrTest, RejectsMalformedSpecs) {
  EXPECT_FALSE(SockAddr::parse("::1:9000"));       // bare v6: ambiguous
  EXPECT_FALSE(SockAddr::parse("[not-v6]:9000"));  // brackets imply v6
  EXPECT_FALSE(SockAddr::parse("[::1]9000"));      // missing separator
  EXPECT_FALSE(SockAddr::parse("host.example"));   // no port
  EXPECT_FALSE(SockAddr::parse("host:"));          // empty port
  EXPECT_FALSE(SockAddr::parse(":7100"));          // empty host
  EXPECT_FALSE(SockAddr::parse("host:99999"));     // port overflow
  EXPECT_FALSE(SockAddr::parse("host:7x1"));       // non-numeric port
  EXPECT_FALSE(SockAddr::parse("ba d.host:7100")); // bad hostname charset
}

TEST(SockAddrTest, HostnameListenAndConnectOverLoopback) {
  // End-to-end through getaddrinfo: listen on the v4 loopback, dial it by
  // hostname ("localhost" pre-normalizes, so use the literal for listen
  // and the name for connect).
  std::string err;
  Fd lfd = listen_tcp(*SockAddr::parse("127.0.0.1:0"), &err);
  ASSERT_TRUE(lfd.valid()) << err;
  const std::uint16_t port = local_port(lfd.get());
  ASSERT_NE(port, 0);

  bool in_progress = false;
  Fd cfd = connect_tcp(*SockAddr::parse("localhost:" + std::to_string(port)),
                       &in_progress, &err);
  ASSERT_TRUE(cfd.valid()) << err;
  ASSERT_TRUE(eventually([&] { return accept_tcp(lfd.get()).valid(); }));
}

TEST(SockAddrTest, IPv6LoopbackListenAndConnect) {
  // Bind the v6 loopback if the kernel offers it (skip otherwise: minimal
  // containers sometimes ship v4-only network namespaces).
  std::string err;
  Fd lfd = listen_tcp(*SockAddr::parse("[::1]:0"), &err);
  if (!lfd.valid()) GTEST_SKIP() << "no IPv6 loopback: " << err;
  const std::uint16_t port = local_port(lfd.get());
  ASSERT_NE(port, 0);

  bool in_progress = false;
  Fd cfd = connect_tcp(*SockAddr::parse("[::1]:" + std::to_string(port)),
                       &in_progress, &err);
  ASSERT_TRUE(cfd.valid()) << err;
  ASSERT_TRUE(eventually([&] { return accept_tcp(lfd.get()).valid(); }));
}
