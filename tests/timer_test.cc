// Tests for deterministic virtual-time timers (the paper's §IV "time-aware
// components with user-generated timestamps" extension): self-loop wires
// carrying send_delayed messages, merged with ordinary inputs in
// virtual-time order, deterministic across runs, and recoverable across
// failover like any other wire.
#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "apps/wordcount.h"
#include "core/runtime.h"
#include "estimator/estimator.h"

namespace tart::core {
namespace {

using namespace std::chrono_literals;

/// Emits a tick to itself every `period` virtual ticks, `count` times,
/// forwarding each tick's virtual time downstream.
class Ticker : public Component {
 public:
  Ticker(TickDuration period, int count) : period_(period), count_(count) {}

  void on_message(Context& ctx, PortId port, const Payload& payload) override {
    ctx.count_block(0);
    if (port == PortId(0)) {
      // External kick-off: start the timer chain.
      fired_.set(0);
      ctx.send_delayed(PortId(9), period_, Payload());
      return;
    }
    // Timer tick (port 1).
    (void)payload;
    fired_.mutate([](std::int64_t& f) { ++f; });
    ctx.send(PortId(0), Payload(ctx.now().ticks()));
    if (fired_.get() < count_)
      ctx.send_delayed(PortId(9), period_, Payload());
  }

  void capture_full(serde::Writer& w) const override {
    fired_.capture_full(w);
  }
  void restore_full(serde::Reader& r) override { fired_.restore_full(r); }

 private:
  TickDuration period_;
  int count_;
  checkpoint::CheckpointedValue<std::int64_t> fired_{0};
};

struct TickerApp {
  Topology topo;
  ComponentId ticker;
  WireId in, out, timer_wire;

  explicit TickerApp(int count = 5) {
    ticker = topo.add("ticker", [count] {
      return std::make_unique<Ticker>(TickDuration::millis(1), count);
    });
    topo.set_estimator(ticker, [] {
      return std::make_unique<estimator::ConstantEstimator>(
          TickDuration::micros(10));
    });
    in = topo.external_input(ticker, PortId(0));
    timer_wire = topo.timer(ticker, PortId(9), PortId(1));
    out = topo.external_output(ticker, PortId(0));
  }
};

TEST(TimerTest, FiresAtExactVirtualOffsets) {
  TickerApp app;
  Runtime rt(app.topo, {{app.ticker, EngineId(0)}}, RuntimeConfig{});
  rt.start();
  rt.inject_at(app.in, VirtualTime(1'000'000), Payload());
  ASSERT_TRUE(rt.drain());
  const auto records = rt.output_records(app.out);
  ASSERT_EQ(records.size(), 5u);
  // Kick-off dequeues at 1ms, charges 10us, schedules +1ms: first tick at
  // 1ms + 10us + 1ms; each subsequent tick adds 10us (charge) + 1ms.
  std::int64_t expected = 1'000'000 + 10'000 + 1'000'000;
  for (const auto& r : records) {
    EXPECT_EQ(r.payload.as_int(), expected);
    expected += 10'000 + 1'000'000;
  }
  rt.stop();
}

TEST(TimerTest, DeterministicAcrossRuns) {
  auto run = [] {
    TickerApp app;
    Runtime rt(app.topo, {{app.ticker, EngineId(0)}}, RuntimeConfig{});
    rt.start();
    rt.inject_at(app.in, VirtualTime(777), Payload());
    EXPECT_TRUE(rt.drain());
    std::vector<std::int64_t> ticks;
    for (const auto& r : rt.output_records(app.out))
      ticks.push_back(r.payload.as_int());
    rt.stop();
    return ticks;
  };
  EXPECT_EQ(run(), run());
}

TEST(TimerTest, TimerMergesWithExternalInputInVtOrder) {
  // A second external message lands between timer ticks: the component
  // must observe it at its virtual position, interleaved with the ticks.
  Topology topo;
  std::vector<std::int64_t> order;  // observed dequeue vts via output

  const auto ticker = topo.add("t", [] {
    return std::make_unique<Ticker>(TickDuration::millis(1), 3);
  });
  topo.set_estimator(ticker, [] {
    return std::make_unique<estimator::ConstantEstimator>(
        TickDuration::micros(10));
  });
  const auto in = topo.external_input(ticker, PortId(0));
  topo.timer(ticker, PortId(9), PortId(1));
  const auto out = topo.external_output(ticker, PortId(0));

  Runtime rt(topo, {{ticker, EngineId(0)}}, RuntimeConfig{});
  rt.start();
  rt.inject_at(in, VirtualTime(1'000'000), Payload());
  // Restart the chain mid-way: lands between tick 1 (~2ms) and tick 2
  // (~3ms); resets fired_ to 0 so three MORE ticks follow it.
  rt.inject_at(in, VirtualTime(2'500'000), Payload());
  ASSERT_TRUE(rt.drain());
  const auto records = rt.output_records(out);
  // Tick 1 at ~2ms; the restart at 2.5ms starts a SECOND chain, so two
  // interleaved chains tick until the shared counter reaches 3: ticks at
  // ~3.0, ~3.5, ~4.0, ~4.5 ms. Output vts strictly increase throughout —
  // the timer stream merges with the external stream in vt order.
  ASSERT_EQ(records.size(), 5u);
  for (std::size_t i = 1; i < records.size(); ++i)
    EXPECT_GT(records[i].vt, records[i - 1].vt);
  EXPECT_LT(records[0].payload.as_int(), 2'500'000);
  EXPECT_GT(records[1].payload.as_int(), 2'500'000);
  rt.stop();
}

TEST(TimerTest, PendingTimersSurviveFailover) {
  TickerApp clean_app(8);
  RuntimeConfig config;
  config.checkpoint.every_n_messages = 2;
  std::vector<std::int64_t> expected;
  {
    Runtime rt(clean_app.topo, {{clean_app.ticker, EngineId(0)}}, config);
    rt.start();
    rt.inject_at(clean_app.in, VirtualTime(1000), Payload());
    ASSERT_TRUE(rt.drain());
    for (const auto& r : rt.output_records(clean_app.out))
      expected.push_back(r.payload.as_int());
    rt.stop();
  }
  ASSERT_EQ(expected.size(), 8u);

  TickerApp app(8);
  Runtime rt(app.topo, {{app.ticker, EngineId(0)}}, config);
  rt.start();
  rt.inject_at(app.in, VirtualTime(1000), Payload());
  std::this_thread::sleep_for(10ms);  // some ticks + checkpoints land
  rt.crash_engine(EngineId(0));
  rt.recover_engine(EngineId(0));  // timer chain resumes from checkpoint
  ASSERT_TRUE(rt.drain());
  std::vector<std::int64_t> ticks;
  std::set<std::int64_t> seen;
  for (const auto& r : rt.output_records(app.out))
    if (seen.insert(r.vt.ticks()).second) ticks.push_back(r.payload.as_int());
  EXPECT_EQ(ticks, expected);
  rt.stop();
}

TEST(TimerTest, ExplicitDelayRespectsWireMinimum) {
  // send_delayed with a sub-minimum delay is clamped (soundness of
  // previously published horizons).
  Topology topo;
  const auto ticker = topo.add("t", [] {
    return std::make_unique<Ticker>(TickDuration(0), 1);  // 0-tick period
  });
  const auto in = topo.external_input(ticker, PortId(0));
  topo.timer(ticker, PortId(9), PortId(1));
  const auto out = topo.external_output(ticker, PortId(0));
  Runtime rt(topo, {{ticker, EngineId(0)}}, RuntimeConfig{});
  rt.start();
  rt.inject_at(in, VirtualTime(100), Payload());
  ASSERT_TRUE(rt.drain());
  const auto records = rt.output_records(out);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_GT(records[0].vt, VirtualTime(100));
  rt.stop();
}

}  // namespace
}  // namespace tart::core
