// Property tests for the pessimistic-merge inbox against an oracle: no
// matter how message arrivals and (sound) silence announcements
// interleave in real time, the delivery sequence is exactly the global
// (virtual time, wire id) sorted merge of all streams — complete, ordered,
// duplicate-free, and never early (a message is only released once every
// other wire provably cannot preempt it).
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "common/rng.h"
#include "wire/inbox.h"

namespace tart {
namespace {

struct Stream {
  WireId wire;
  std::vector<Message> messages;  // strictly increasing vt, seq 0..n-1
  std::size_t offered = 0;        // next index to offer
  VirtualTime announced{-1};      // explicit silence announced so far
};

std::vector<Stream> generate_streams(Rng& rng, int num_wires) {
  std::vector<Stream> streams;
  for (int w = 0; w < num_wires; ++w) {
    Stream s;
    s.wire = WireId(static_cast<std::uint32_t>(w));
    std::int64_t vt = 0;
    const auto count = rng.uniform_int(5, 40);
    for (std::uint64_t seq = 0; seq < static_cast<std::uint64_t>(count);
         ++seq) {
      vt += rng.uniform_int(1, 500);
      Message m;
      m.wire = s.wire;
      m.vt = VirtualTime(vt);
      m.seq = seq;
      m.payload = Payload(static_cast<std::int64_t>(seq));
      s.messages.push_back(m);
    }
    streams.push_back(std::move(s));
  }
  return streams;
}

class InboxOracleProperty : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(InboxOracleProperty, DeliversTheGlobalSortedMerge) {
  Rng rng(GetParam());
  const int num_wires = static_cast<int>(rng.uniform_int(2, 6));
  std::vector<Stream> streams = generate_streams(rng, num_wires);

  Inbox inbox;
  for (const auto& s : streams) inbox.add_wire(s.wire);

  // Oracle: the globally sorted merge by (vt, wire).
  std::vector<Message> oracle;
  for (const auto& s : streams)
    oracle.insert(oracle.end(), s.messages.begin(), s.messages.end());
  std::sort(oracle.begin(), oracle.end(),
            [](const Message& a, const Message& b) { return a.key() < b.key(); });

  std::vector<Message> delivered;
  auto drain_eligible = [&] {
    while (auto m = inbox.pop()) delivered.push_back(*m);
  };

  // Random interleaving of arrivals and sound silence announcements.
  std::size_t remaining = oracle.size();
  while (remaining > 0) {
    auto& s = streams[rng.bounded(streams.size())];
    if (s.offered < s.messages.size() && rng.chance(0.7)) {
      // Next arrival on this wire (FIFO per wire).
      EXPECT_EQ(inbox.offer(s.messages[s.offered]), AcceptResult::kAccepted);
      ++s.offered;
      --remaining;
    } else {
      // A sound silence announcement: anything up to one tick before the
      // next unoffered message (or infinity when the stream is done).
      const VirtualTime bound =
          s.offered < s.messages.size()
              ? s.messages[s.offered].vt.prev()
              : VirtualTime::infinity();
      VirtualTime through = bound;
      if (!bound.is_infinite() && bound.ticks() > 0 && rng.chance(0.5))
        through = VirtualTime(rng.uniform_int(0, bound.ticks()));
      EXPECT_FALSE(inbox.announce_silence(s.wire, through,
                                          s.offered));
      s.announced = max(s.announced, through);
    }
    // Occasionally re-offer an old message: must be discarded.
    if (rng.chance(0.1)) {
      auto& d = streams[rng.bounded(streams.size())];
      if (d.offered > 0) {
        EXPECT_EQ(inbox.offer(d.messages[rng.bounded(d.offered)]),
                  AcceptResult::kDuplicate);
      }
    }
    drain_eligible();

    // Invariant: whatever has been delivered so far is a prefix of the
    // oracle sequence.
    ASSERT_LE(delivered.size(), oracle.size());
    for (std::size_t i = 0; i < delivered.size(); ++i) {
      ASSERT_EQ(delivered[i].key(), oracle[i].key())
          << "divergence at delivery " << i;
    }
  }

  // Close every wire; everything must drain in oracle order.
  for (auto& s : streams)
    (void)inbox.announce_silence(s.wire, VirtualTime::infinity(),
                                 s.messages.size());
  drain_eligible();
  ASSERT_EQ(delivered.size(), oracle.size());
  for (std::size_t i = 0; i < oracle.size(); ++i)
    EXPECT_EQ(delivered[i].key(), oracle[i].key());
  EXPECT_TRUE(inbox.exhausted());
}

TEST_P(InboxOracleProperty, NeverDeliversEarly) {
  // Adversarial check of pessimism: offer a message on one wire, never
  // announce anything on a sibling wire with a smaller id, and verify the
  // head stays blocked no matter how many pops are attempted.
  Rng rng(GetParam() ^ 0xDEAD);
  Inbox inbox;
  inbox.add_wire(WireId(0));
  inbox.add_wire(WireId(1));
  Message m;
  m.wire = WireId(1);
  m.vt = VirtualTime(rng.uniform_int(1, 1'000'000));
  m.seq = 0;
  ASSERT_EQ(inbox.offer(m), AcceptResult::kAccepted);
  for (int i = 0; i < 10; ++i) EXPECT_FALSE(inbox.pop().has_value());
  // Silence strictly below the head is still not enough (wire 0 wins ties).
  (void)inbox.announce_silence(WireId(0), m.vt.prev(), 0);
  EXPECT_FALSE(inbox.pop().has_value());
  (void)inbox.announce_silence(WireId(0), m.vt, 0);
  EXPECT_TRUE(inbox.pop().has_value());
}

INSTANTIATE_TEST_SUITE_P(RandomInterleavings, InboxOracleProperty,
                         ::testing::Range<std::uint64_t>(1, 21));

}  // namespace
}  // namespace tart
