// Test alias for the reference application components (the paper's
// Figure-1 word-count pipeline and call-based services), which live in the
// library's apps module so examples and benches share them.
#pragma once

#include "apps/wordcount.h"

namespace tart::testing {

using apps::CallingComponent;
using apps::Passthrough;
using apps::ScalingService;
using apps::TotalingMerger;
using apps::WordCountSender;
using apps::sentence;

}  // namespace tart::testing
