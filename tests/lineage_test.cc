// Request-lineage tests (docs/TRACING.md "Request lineage"):
//
//   - hand-built traces with hand-computed latency decompositions (the
//     five post-ack buckets must be exclusive and exhaustive by
//     construction, and sum to exactly t_end - t_ack);
//   - causal-DAG mechanics: fan-out, stall cross-links to forensics
//     episodes, terminal classification (output / opaque wire /
//     incomplete), and (wire, seq) joins across per-node traces the way
//     migration splits a component's streams;
//   - a real lineage-enabled runtime run where every injected input must
//     resolve to a complete DAG with an exact decomposition;
//   - SIGKILL + restart-from-log: the recovered incarnation's replay must
//     reconstruct lineage equivalent to the failure-free reference (same
//     hop identities, same outputs), even though the crashed run's trace
//     file never survived.
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <filesystem>
#include <set>
#include <thread>

#include "core/runtime.h"
#include "durability/replay.h"
#include "estimator/estimator.h"
#include "test_components.h"
#include "trace/lineage.h"
#include "trace/trace_file.h"

namespace tart::trace {
namespace {

using namespace std::chrono_literals;
namespace testing_ = tart::testing;
using core::kEdgeTraceComponent;

// ---------------------------------------------------------------------------
// Hand-built traces.

TraceEvent ev(std::uint64_t seq, TraceEventKind kind, std::int64_t vt,
              WireId wire, std::uint64_t aux, std::uint64_t payload_hash) {
  TraceEvent e;
  e.seq = seq;
  e.kind = kind;
  e.vt = VirtualTime(vt);
  e.wire = wire;
  e.aux = aux;
  e.payload_hash = payload_hash;
  return e;
}

Trace wrap(std::vector<ComponentTrace> components) {
  Trace t;
  t.categories = static_cast<std::uint32_t>(TraceCategory::kAll);
  for (auto& ct : components) {
    for (auto& e : ct.events) e.component = ct.component;
    t.components.push_back(std::move(ct));
  }
  return t;
}

/// Edge stream for one input on wire 10 seq 0: arrive @100, durable @200,
/// ack @300; plus the final output delivery on wire 30 @800.
ComponentTrace edge_stream() {
  ComponentTrace edge;
  edge.component = kEdgeTraceComponent;
  edge.events = {
      ev(0, TraceEventKind::kIngestArrive, 5, WireId(10), 0, 100),
      ev(1, TraceEventKind::kIngestDurable, 5, WireId(10), 0, 200),
      ev(2, TraceEventKind::kIngestAck, 5, WireId(10), 0, 300),
      ev(3, TraceEventKind::kOutputDeliver, 6, WireId(30), 0, 800),
  };
  return edge;
}

/// Component A consumes the input (dispatch @400, done @500) and emits
/// (wire 20, seq 0).
ComponentTrace comp_a() {
  ComponentTrace a;
  a.component = ComponentId(1);
  a.events = {
      ev(0, TraceEventKind::kDispatch, 5, WireId(10), 0, 0),
      ev(1, TraceEventKind::kHopDispatch, 5, WireId(10), 0, 400),
      ev(2, TraceEventKind::kEmit, 6, WireId(20), 0, 0),
      ev(3, TraceEventKind::kHopDone, 5, WireId(10), 0, 500),
  };
  return a;
}

/// Component B consumes (wire 20, seq 0) (dispatch @600, done @700) and
/// emits the external output (wire 30, seq 0).
ComponentTrace comp_b() {
  ComponentTrace b;
  b.component = ComponentId(2);
  b.events = {
      ev(0, TraceEventKind::kDispatch, 6, WireId(20), 0, 0),
      ev(1, TraceEventKind::kHopDispatch, 6, WireId(20), 0, 600),
      ev(2, TraceEventKind::kEmit, 6, WireId(30), 0, 0),
      ev(3, TraceEventKind::kHopDone, 6, WireId(20), 0, 700),
  };
  return b;
}

TEST(LineageSynthetic, ChainDecomposesExactly) {
  const Trace t = wrap({edge_stream(), comp_a(), comp_b()});
  const LineageReport report = analyze_lineage({t});
  ASSERT_EQ(report.inputs.size(), 1u);
  EXPECT_EQ(report.acked, 1u);
  EXPECT_EQ(report.resolved, 1u);
  EXPECT_DOUBLE_EQ(report.resolved_fraction(), 1.0);

  const InputLineage* in = report.find(WireId(10), 0);
  ASSERT_NE(in, nullptr);
  EXPECT_TRUE(in->acked);
  EXPECT_TRUE(in->complete);
  ASSERT_EQ(in->hops.size(), 2u);
  EXPECT_EQ(in->hops[0].component, ComponentId(1));
  EXPECT_EQ(in->hops[0].depth, 0u);
  EXPECT_EQ(in->hops[1].component, ComponentId(2));
  EXPECT_EQ(in->hops[1].depth, 1u);
  ASSERT_EQ(in->outputs.size(), 1u);
  EXPECT_EQ(in->outputs[0].wire, WireId(30));
  EXPECT_EQ(in->outputs[0].deliver_wall_ns, 800);

  // Hand-computed decomposition: ack@300 .. end@800.
  //   durability  arrive 100 -> ack 300            = 200
  //   ingress     ack 300 -> A dispatch 400        = 100
  //   processing  A 400..500 plus B 600..700       = 200
  //   network     A done 500 -> B dispatch 600     = 100
  //   output lag  B done 700 -> delivery 800       = 100
  const LatencyBreakdown& b = in->breakdown;
  EXPECT_EQ(b.durability_wait_ns, 200);
  EXPECT_EQ(b.ingress_queue_ns, 100);
  EXPECT_EQ(b.stall_wait_ns, 0);
  EXPECT_EQ(b.processing_ns, 200);
  EXPECT_EQ(b.network_ns, 100);
  EXPECT_EQ(b.output_lag_ns, 100);
  EXPECT_EQ(b.ack_to_end_ns, 500);
  EXPECT_EQ(b.total_ns, 700);
  // Exclusive and exhaustive: the five post-ack buckets telescope.
  EXPECT_EQ(b.ingress_queue_ns + b.stall_wait_ns + b.processing_ns +
                b.network_ns + b.output_lag_ns,
            b.ack_to_end_ns);
  EXPECT_EQ(b.durability_wait_ns + b.ack_to_end_ns, b.total_ns);
}

TEST(LineageSynthetic, FanOutReachesEveryBranch) {
  // A emits to both wire 20 (component B) and wire 21 (component C);
  // each branch delivers its own external output.
  ComponentTrace a = comp_a();
  a.events.insert(a.events.begin() + 3,
                  ev(9, TraceEventKind::kEmit, 6, WireId(21), 0, 0));
  ComponentTrace c;
  c.component = ComponentId(3);
  c.events = {
      ev(0, TraceEventKind::kDispatch, 6, WireId(21), 0, 0),
      ev(1, TraceEventKind::kHopDispatch, 6, WireId(21), 0, 610),
      ev(2, TraceEventKind::kEmit, 6, WireId(31), 0, 0),
      ev(3, TraceEventKind::kHopDone, 6, WireId(21), 0, 710),
  };
  ComponentTrace edge = edge_stream();
  edge.events.push_back(
      ev(4, TraceEventKind::kOutputDeliver, 6, WireId(31), 0, 820));

  const Trace t = wrap({edge, a, comp_b(), c});
  const InputLineage in = trace_input({t}, WireId(10), 0);
  EXPECT_TRUE(in.complete);
  ASSERT_EQ(in.hops.size(), 3u);  // A, then B and C at depth 1.
  EXPECT_EQ(in.hops[0].children.size(), 2u);
  EXPECT_EQ(in.hops[1].depth, 1u);
  EXPECT_EQ(in.hops[2].depth, 1u);
  ASSERT_EQ(in.outputs.size(), 2u);
  // t_end is the last delivery (820).
  EXPECT_EQ(in.breakdown.ack_to_end_ns, 520);
}

TEST(LineageSynthetic, StallEpisodesCrossLinkAndCount) {
  // B's head (vt 6 on wire 20) was held 50 ns by a pessimism stall
  // (episode id 3, blocked on wire 10) before its dispatch @600.
  ComponentTrace b = comp_b();
  b.events.insert(b.events.begin(),
                  ev(8, TraceEventKind::kStallBegin, 6, WireId(20), 3, 550));
  b.events.insert(b.events.begin() + 1,
                  ev(9, TraceEventKind::kStallResolved, 6, WireId(10), 3, 50));

  const Trace t = wrap({edge_stream(), comp_a(), b});
  const InputLineage in = trace_input({t}, WireId(10), 0);
  ASSERT_TRUE(in.complete);
  ASSERT_EQ(in.hops.size(), 2u);
  EXPECT_EQ(in.hops[1].stall_ns, 50);

  // The episode is cross-linked by id so `tart-trace explain --episode`
  // can pick it up.
  ASSERT_EQ(in.stalls.size(), 1u);
  EXPECT_EQ(in.stalls[0].component, ComponentId(2));
  EXPECT_EQ(in.stalls[0].episode_id, 3u);
  EXPECT_EQ(in.stalls[0].stall_ns, 50);

  // The 100 ns gap before B's dispatch now splits: 50 stall, 50 network.
  const LatencyBreakdown& br = in.breakdown;
  EXPECT_EQ(br.stall_wait_ns, 50);
  EXPECT_EQ(br.network_ns, 50);
  EXPECT_EQ(br.ingress_queue_ns, 100);
  EXPECT_EQ(br.processing_ns, 200);
  EXPECT_EQ(br.output_lag_ns, 100);
  EXPECT_EQ(br.ack_to_end_ns, 500);  // Still exact.
}

TEST(LineageSynthetic, OpaqueWireTerminatesCleanly) {
  // A also emits on wire 99, which nothing in the loaded traces consumes
  // (a reply wire leaving the deployment): the edge terminates cleanly
  // and the DAG still counts as complete.
  ComponentTrace a = comp_a();
  a.events.insert(a.events.begin() + 3,
                  ev(9, TraceEventKind::kEmit, 6, WireId(99), 0, 0));
  const Trace t = wrap({edge_stream(), a, comp_b()});
  const InputLineage in = trace_input({t}, WireId(10), 0);
  EXPECT_TRUE(in.complete);
  EXPECT_EQ(in.hops.size(), 2u);
}

TEST(LineageSynthetic, MissingConsumerSeqMarksIncomplete) {
  // A emits (wire 20, seq 7). Wire 20 demonstrably has a consumer (B
  // dispatches seq 0 on it), but seq 7 never landed anywhere: the DAG has
  // a dangling edge and must not claim completeness.
  ComponentTrace a = comp_a();
  a.events.insert(a.events.begin() + 3,
                  ev(9, TraceEventKind::kEmit, 6, WireId(20), 7, 0));
  const Trace t = wrap({edge_stream(), a, comp_b()});
  const InputLineage in = trace_input({t}, WireId(10), 0);
  EXPECT_FALSE(in.complete);
  // The resolvable part of the DAG is still walked.
  EXPECT_EQ(in.hops.size(), 2u);
}

TEST(LineageSynthetic, SplitStreamsJoinAcrossTraces) {
  // The same DAG split the way a two-node deployment (or a migration
  // cutover) splits it: ingest + A in node-left's trace, B + the output
  // delivery in node-right's trace. The (wire, seq) join must produce the
  // identical complete DAG.
  ComponentTrace edge_left;
  edge_left.component = kEdgeTraceComponent;
  edge_left.events = {
      ev(0, TraceEventKind::kIngestArrive, 5, WireId(10), 0, 100),
      ev(1, TraceEventKind::kIngestDurable, 5, WireId(10), 0, 200),
      ev(2, TraceEventKind::kIngestAck, 5, WireId(10), 0, 300),
  };
  ComponentTrace edge_right;
  edge_right.component = kEdgeTraceComponent;
  edge_right.events = {
      ev(0, TraceEventKind::kOutputDeliver, 6, WireId(30), 0, 800),
  };
  const Trace left = wrap({edge_left, comp_a()});
  const Trace right = wrap({edge_right, comp_b()});

  const LineageReport report = analyze_lineage({left, right});
  ASSERT_EQ(report.inputs.size(), 1u);
  const InputLineage& in = report.inputs[0];
  EXPECT_TRUE(in.acked);
  EXPECT_TRUE(in.complete);
  ASSERT_EQ(in.hops.size(), 2u);
  EXPECT_EQ(in.hops[0].component, ComponentId(1));
  EXPECT_EQ(in.hops[1].component, ComponentId(2));
  ASSERT_EQ(in.outputs.size(), 1u);
  EXPECT_EQ(in.breakdown.total_ns, 700);
}

// ---------------------------------------------------------------------------
// Real runtime.

/// Figure-1 word-count app (two senders into a totaling merger).
struct App {
  core::Topology topo;
  ComponentId s1, s2, merger;
  WireId in1, in2, out;

  App() {
    s1 = topo.add("sender1", [] {
      return std::make_unique<testing_::WordCountSender>();
    });
    s2 = topo.add("sender2", [] {
      return std::make_unique<testing_::WordCountSender>();
    });
    merger = topo.add("merger", [] {
      return std::make_unique<testing_::TotalingMerger>();
    });
    for (const auto c : {s1, s2}) {
      topo.set_estimator(c, [] {
        return estimator::per_iteration_estimator(61000.0);
      });
    }
    topo.set_estimator(merger, [] {
      return std::make_unique<estimator::ConstantEstimator>(
          TickDuration::micros(400));
    });
    in1 = topo.external_input(s1, PortId(0));
    in2 = topo.external_input(s2, PortId(0));
    topo.connect(s1, PortId(0), merger, PortId(0));
    topo.connect(s2, PortId(0), merger, PortId(0));
    out = topo.external_output(merger, PortId(0));
  }

  [[nodiscard]] std::map<ComponentId, EngineId> placement() const {
    return {{s1, EngineId(0)}, {s2, EngineId(0)}, {merger, EngineId(1)}};
  }

  void inject(core::Runtime& rt, int count) const {
    for (int i = 0; i < count; ++i) {
      rt.inject_at(in1, VirtualTime(1000 + i * 100000),
                   testing_::sentence({"the", "cat", "sat"}));
      rt.inject_at(in2, VirtualTime(500 + i * 90000),
                   testing_::sentence({"dog", "ran"}));
    }
  }
};

core::RuntimeConfig lineage_config(const std::string& trace_path) {
  core::RuntimeConfig config;
  config.trace.enabled = true;
  config.trace.path = trace_path;
  config.trace.categories = static_cast<std::uint32_t>(TraceCategory::kAll);
  return config;
}

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(LineageRuntime, WordCountInputsResolveCompletely) {
  const std::string path = temp_path("tart_lineage_e2e.trc");
  constexpr int kPerSender = 6;
  {
    App app;
    core::Runtime rt(app.topo, app.placement(), lineage_config(path));
    rt.start();
    app.inject(rt, kPerSender);
    ASSERT_TRUE(rt.drain(60s));
    rt.stop();
  }

  const Trace t = TraceReader::read_file(path);
  const LineageReport report = analyze_lineage({t});
  // In-process runs have no gateway ack, so nothing counts as acked and
  // resolution is judged per input through `complete`.
  EXPECT_EQ(report.acked, 0u);
  ASSERT_EQ(report.inputs.size(), 2u * kPerSender);

  std::size_t with_outputs = 0;
  for (const InputLineage& in : report.inputs) {
    EXPECT_TRUE(in.complete)
        << "input " << in.wire.value() << ":" << in.seq;
    EXPECT_GE(in.arrive_wall_ns, 0);
    EXPECT_FALSE(in.hops.empty());
    // The decomposition is exclusive and exhaustive for every input.
    const LatencyBreakdown& b = in.breakdown;
    EXPECT_EQ(b.ingress_queue_ns + b.stall_wait_ns + b.processing_ns +
                  b.network_ns + b.output_lag_ns,
              b.ack_to_end_ns);
    EXPECT_EQ(b.durability_wait_ns + b.ack_to_end_ns, b.total_ns);
    EXPECT_GE(b.ack_to_end_ns, 0);
    if (!in.outputs.empty()) ++with_outputs;
  }
  // The merger emits a running total: the workload demonstrably produced
  // externally visible descendants to trace.
  EXPECT_GT(with_outputs, 0u);
  std::remove(path.c_str());
}

/// Hop identity without the wall stamps: what deterministic replay must
/// reproduce exactly.
using HopIdentity = std::set<std::tuple<std::uint32_t, std::uint32_t,
                                        std::uint64_t, std::int64_t>>;

HopIdentity hop_identity(const InputLineage& in) {
  HopIdentity ids;
  for (const LineageHop& h : in.hops)
    ids.insert({h.component.value(), h.wire.value(), h.seq, h.vt.ticks()});
  return ids;
}

std::multiset<std::tuple<std::uint32_t, std::uint64_t, std::int64_t>>
output_identity(const InputLineage& in) {
  std::multiset<std::tuple<std::uint32_t, std::uint64_t, std::int64_t>> ids;
  for (const LineageOutput& o : in.outputs)
    ids.insert({o.wire.value(), o.seq, o.vt.ticks()});
  return ids;
}

std::string make_temp_dir() {
  char tmpl[] = "/tmp/tart_lineage_crash_XXXXXX";
  const char* dir = mkdtemp(tmpl);
  return dir == nullptr ? std::string() : std::string(dir);
}

core::RuntimeConfig durable_lineage_config(const std::string& log_dir,
                                           const std::string& trace_path) {
  core::RuntimeConfig config = lineage_config(trace_path);
  config.log_dir = log_dir;
  config.durability.enabled = true;
  return config;
}

/// Child body for the SIGKILL test: ingest, drain, write the marker, then
/// pause until the parent's SIGKILL. Its trace file is never finalized —
/// the recovered incarnation's replay is what reconstructs lineage.
[[noreturn]] void crashing_child(const std::string& dir, int per_sender,
                                 const std::string& marker) {
  App app;
  core::Runtime rt(app.topo, app.placement(),
                   durable_lineage_config(dir, dir + "/never_finalized.trc"));
  rt.start();
  app.inject(rt, per_sender);
  if (!rt.drain(120s)) _exit(3);
  std::FILE* f = std::fopen(marker.c_str(), "w");
  if (f == nullptr) _exit(4);
  std::fclose(f);
  for (;;) std::this_thread::sleep_for(1s);
}

TEST(LineageRuntime, RecoveryReplayYieldsEquivalentLineage) {
  constexpr int kPerSender = 5;
  const std::string crash_dir = make_temp_dir();
  const std::string ref_dir = make_temp_dir();
  ASSERT_FALSE(crash_dir.empty());
  ASSERT_FALSE(ref_dir.empty());
  const std::string marker = crash_dir + "/ingested";

  // Fork the victim first (before this process grows runtime threads).
  const pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) crashing_child(crash_dir, kPerSender, marker);

  // Failure-free reference run over the identical injection plan.
  const std::string ref_trc = temp_path("tart_lineage_ref.trc");
  {
    App app;
    core::Runtime rt(app.topo, app.placement(),
                     durable_lineage_config(ref_dir, ref_trc));
    rt.start();
    app.inject(rt, kPerSender);
    ASSERT_TRUE(rt.drain(120s));
    rt.stop();
  }

  // Fail-stop the victim once its log is durable.
  const auto deadline = std::chrono::steady_clock::now() + 180s;
  while (!std::filesystem::exists(marker)) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "child never finished ingesting";
    std::this_thread::sleep_for(2ms);
  }
  kill(pid, SIGKILL);
  waitpid(pid, nullptr, 0);

  // Restart from the log with lineage tracing on and replay to quiescence.
  const std::string rec_trc = temp_path("tart_lineage_rec.trc");
  {
    App app;
    core::Runtime rt(app.topo, app.placement(),
                     durable_lineage_config(crash_dir, rec_trc));
    rt.start();
    const auto stats = durability::ReplayDriver::catch_up(rt, 120s);
    ASSERT_TRUE(stats.caught_up);
    // Close the inputs so pessimism releases the final held heads — the
    // reference run's drain() did the same.
    ASSERT_TRUE(rt.drain(120s));
    rt.stop();
  }

  const Trace ref = TraceReader::read_file(ref_trc);
  const Trace rec = TraceReader::read_file(rec_trc);

  // Replayed messages keep their original (wire, seq), so the recovered
  // trace must yield, for every input, a DAG with the same hop identities
  // and the same outputs as the failure-free reference. The recovered run
  // has no ingest events (nothing was re-injected), hence the force-walk.
  App app;
  for (const WireId in_wire : {app.in1, app.in2}) {
    for (int i = 0; i < kPerSender; ++i) {
      const auto seq = static_cast<std::uint64_t>(i);
      const InputLineage a = trace_input({ref}, in_wire, seq);
      const InputLineage b = trace_input({rec}, in_wire, seq);
      EXPECT_TRUE(a.complete) << in_wire.value() << ":" << seq;
      EXPECT_TRUE(b.complete) << in_wire.value() << ":" << seq;
      EXPECT_EQ(hop_identity(a), hop_identity(b))
          << "hop DAG diverged for " << in_wire.value() << ":" << seq;
      EXPECT_EQ(output_identity(a), output_identity(b))
          << "outputs diverged for " << in_wire.value() << ":" << seq;
    }
  }

  std::remove(ref_trc.c_str());
  std::remove(rec_trc.c_str());
  std::filesystem::remove_all(crash_dir);
  std::filesystem::remove_all(ref_dir);
}

}  // namespace
}  // namespace tart::trace
