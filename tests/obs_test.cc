// Unit coverage for the telemetry layer: registry cell semantics,
// cross-node sample aggregation, Prometheus exposition + its lint, the
// status JSON, and the X-macro guarantees of core::MetricsSnapshot.
#include <gtest/gtest.h>

#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/metrics.h"
#include "core/status.h"
#include "obs/exposition.h"
#include "obs/registry.h"
#include "obs/sampler.h"
#include "serde/archive.h"

namespace tart::obs {
namespace {

// --- Registry ---------------------------------------------------------------

TEST(Registry, FindOrCreateReturnsTheSameCell) {
  Registry reg;
  Counter& a = reg.counter("tart_x_total", "x", {{"component", "c1"}});
  Counter& b = reg.counter("tart_x_total", "x", {{"component", "c1"}});
  EXPECT_EQ(&a, &b);
  a.inc(3);
  EXPECT_EQ(b.value(), 3u);

  // Different labels = different cell.
  Counter& other = reg.counter("tart_x_total", "x", {{"component", "c2"}});
  EXPECT_NE(&a, &other);
  EXPECT_EQ(other.value(), 0u);
}

TEST(Registry, LabelLookupIsOrderInsensitive) {
  Registry reg;
  Counter& a = reg.counter("tart_x_total", "x",
                           {{"wire", "w1"}, {"component", "c"}});
  Counter& b = reg.counter("tart_x_total", "x",
                           {{"component", "c"}, {"wire", "w1"}});
  EXPECT_EQ(&a, &b);
}

TEST(Registry, KindMismatchThrows) {
  Registry reg;
  (void)reg.counter("tart_x_total", "x");
  EXPECT_THROW((void)reg.gauge("tart_x_total", "x"), std::logic_error);
  EXPECT_THROW((void)reg.histogram("tart_x_total", "x", {}, 1.0, 4),
               std::logic_error);
}

TEST(Registry, SamplesSortedByNameThenLabels) {
  Registry reg;
  reg.counter("tart_b_total", "b").inc();
  reg.counter("tart_a_total", "a", {{"component", "z"}}).inc();
  reg.counter("tart_a_total", "a", {{"component", "k"}}).inc();
  const auto samples = reg.samples();
  ASSERT_EQ(samples.size(), 3u);
  EXPECT_EQ(samples[0].name, "tart_a_total");
  EXPECT_EQ(samples[0].labels[0].value, "k");
  EXPECT_EQ(samples[1].name, "tart_a_total");
  EXPECT_EQ(samples[1].labels[0].value, "z");
  EXPECT_EQ(samples[2].name, "tart_b_total");
}

TEST(Registry, HistogramCellSnapshots) {
  Registry reg;
  Histogram& h = reg.histogram("tart_lat_seconds", "lat", {}, 0.5, 4);
  h.record(0.1);
  h.record(0.1);
  h.record(0.7);
  h.record(100.0);  // overflow bucket
  const stats::Histogram snap = h.snapshot();
  EXPECT_EQ(snap.count(), 4u);
  EXPECT_DOUBLE_EQ(snap.max_seen(), 100.0);
  EXPECT_NEAR(snap.sum(), 100.9, 1e-9);
  EXPECT_GT(snap.percentile(50), 0.0);
}

TEST(Registry, GaugeMaxWith) {
  Registry reg;
  Gauge& g = reg.gauge("tart_high_water", "hw");
  g.max_with(5);
  g.max_with(3);
  EXPECT_EQ(g.value(), 5);
  g.max_with(9);
  EXPECT_EQ(g.value(), 9);
}

// --- Sample serde + merge ---------------------------------------------------

std::vector<Sample> round_trip(const std::vector<Sample>& in) {
  serde::Writer w;
  encode_samples(w, in);
  const auto bytes = w.take();
  serde::Reader r(bytes);
  return decode_samples(r);
}

TEST(Samples, SerdeRoundTrip) {
  Registry reg;
  reg.counter("tart_c_total", "help c", {{"component", "x"}}, 1e-9).inc(42);
  reg.gauge("tart_g", "help g").set(-7);
  Histogram& h = reg.histogram("tart_h_seconds", "help h", {}, 0.25, 8);
  h.record(0.3);
  h.record(1.9);

  const auto before = reg.samples();
  const auto after = round_trip(before);
  ASSERT_EQ(after.size(), before.size());
  for (std::size_t i = 0; i < before.size(); ++i) {
    EXPECT_EQ(after[i].name, before[i].name);
    EXPECT_EQ(after[i].help, before[i].help);
    EXPECT_EQ(after[i].kind, before[i].kind);
    EXPECT_EQ(after[i].scale, before[i].scale);
    EXPECT_EQ(after[i].labels, before[i].labels);
    EXPECT_EQ(after[i].counter_value, before[i].counter_value);
    EXPECT_EQ(after[i].gauge_value, before[i].gauge_value);
    EXPECT_EQ(after[i].hist.has_value(), before[i].hist.has_value());
    if (after[i].hist) {
      EXPECT_EQ(after[i].hist->count(), before[i].hist->count());
      EXPECT_EQ(after[i].hist->buckets(), before[i].hist->buckets());
      EXPECT_DOUBLE_EQ(after[i].hist->sum(), before[i].hist->sum());
      EXPECT_DOUBLE_EQ(after[i].hist->max_seen(),
                       before[i].hist->max_seen());
    }
  }
}

TEST(Samples, MergeAcrossNodes) {
  Registry node_a;
  Registry node_b;
  node_a.counter("tart_c_total", "c", {{"component", "x"}}).inc(2);
  node_b.counter("tart_c_total", "c", {{"component", "x"}}).inc(5);
  node_b.counter("tart_c_total", "c", {{"component", "y"}}).inc(1);
  node_a.gauge("tart_high_water", "hw").set(4);
  node_b.gauge("tart_high_water", "hw").set(9);
  node_a.histogram("tart_h_seconds", "h", {}, 1.0, 4).record(0.5);
  node_b.histogram("tart_h_seconds", "h", {}, 1.0, 4).record(2.5);

  const auto merged = merge_samples({node_a.samples(), node_b.samples()});
  ASSERT_EQ(merged.size(), 4u);  // c{x}, c{y}, high_water, h
  for (const auto& s : merged) {
    if (s.name == "tart_c_total" && !s.labels.empty() &&
        s.labels[0].value == "x") {
      EXPECT_EQ(s.counter_value, 7u);  // counters sum
    } else if (s.name == "tart_c_total") {
      EXPECT_EQ(s.counter_value, 1u);
    } else if (s.name == "tart_high_water") {
      EXPECT_EQ(s.gauge_value, 9);  // gauges take the max
    } else if (s.name == "tart_h_seconds") {
      ASSERT_TRUE(s.hist.has_value());
      EXPECT_EQ(s.hist->count(), 2u);  // histograms merge bucketwise
      EXPECT_DOUBLE_EQ(s.hist->max_seen(), 2.5);
    }
  }
}

TEST(Samples, MergeKeepsFirstOnBucketShapeMismatch) {
  Registry node_a;
  Registry node_b;
  node_a.histogram("tart_h_seconds", "h", {}, 1.0, 4).record(0.5);
  node_b.histogram("tart_h_seconds", "h", {}, 2.0, 4).record(3.5);
  const auto merged = merge_samples({node_a.samples(), node_b.samples()});
  ASSERT_EQ(merged.size(), 1u);
  ASSERT_TRUE(merged[0].hist.has_value());
  // Incompatible scales are never blended: the first wins, untouched.
  EXPECT_EQ(merged[0].hist->count(), 1u);
  EXPECT_DOUBLE_EQ(merged[0].hist->bucket_width(), 1.0);
}

// --- Exemplars --------------------------------------------------------------

TEST(Exemplars, DisabledUnlessEnabled) {
  Registry reg;
  Histogram& h = reg.histogram("tart_h_seconds", "h", {}, 1.0, 4);
  EXPECT_FALSE(h.exemplars_enabled());
  h.record(0.5, Exemplar{0.5, 7, 1, 2});  // attachment is a no-op...
  EXPECT_TRUE(h.exemplars().empty());
  EXPECT_EQ(h.count(), 1u);  // ...but the observation still counts
}

TEST(Exemplars, RingBoundsAndEviction) {
  Registry reg;
  Histogram& h = reg.histogram("tart_h_seconds", "h", {}, 1.0, 4);
  h.enable_exemplars(2);
  h.enable_exemplars(8);  // idempotent: first capacity wins
  ASSERT_TRUE(h.exemplars_enabled());

  // Three exemplars into bucket 0: ring capacity 2, oldest evicted.
  h.record(0.1, Exemplar{0.1, 10, 1, 5});
  h.record(0.2, Exemplar{0.2, 11, 1, 5});
  h.record(0.3, Exemplar{0.3, 12, 1, 5});
  // One into the overflow bucket.
  h.record(99.0, Exemplar{99.0, 13, 1, 6});

  const auto exs = h.exemplars();
  ASSERT_EQ(exs.size(), 3u);
  EXPECT_EQ(exs[0].bucket, 0u);
  EXPECT_EQ(exs[0].ex.episode, 11u);  // oldest-first; episode 10 evicted
  EXPECT_EQ(exs[1].bucket, 0u);
  EXPECT_EQ(exs[1].ex.episode, 12u);
  EXPECT_EQ(exs[2].bucket, 4u);  // overflow bucket
  EXPECT_EQ(exs[2].ex.episode, 13u);
  EXPECT_EQ(exs[2].ex.wire, 6u);
}

TEST(Exemplars, TravelThroughSerdeAndMerge) {
  Registry node_a;
  Registry node_b;
  Histogram& ha = node_a.histogram("tart_h_seconds", "h", {}, 1.0, 4);
  ha.enable_exemplars(4);
  ha.record(0.5, Exemplar{0.5, 1, 10, 20});
  Histogram& hb = node_b.histogram("tart_h_seconds", "h", {}, 1.0, 4);
  hb.enable_exemplars(4);
  hb.record(2.5, Exemplar{2.5, 2, 11, 21});

  const auto round = round_trip(node_a.samples());
  ASSERT_EQ(round.size(), 1u);
  ASSERT_EQ(round[0].exemplars.size(), 1u);
  EXPECT_EQ(round[0].exemplars[0], (BucketExemplar{0, {0.5, 1, 10, 20}}));

  const auto merged = merge_samples({node_a.samples(), node_b.samples()});
  ASSERT_EQ(merged.size(), 1u);
  ASSERT_EQ(merged[0].exemplars.size(), 2u);
  EXPECT_EQ(merged[0].exemplars[0].ex.episode, 1u);
  EXPECT_EQ(merged[0].exemplars[1].ex.episode, 2u);
}

// --- Exposition + lint ------------------------------------------------------

TEST(Exposition, RegistrySeriesRenderWithHelpAndType) {
  Registry reg;
  reg.counter("tart_msgs_total", "Messages.", {{"component", "mapper"}})
      .inc(12);
  reg.histogram("tart_stall_seconds", "Stall.", {{"component", "mapper"}},
                1e-3, 16)
      .record(5e-3);
  const std::string page = render_prometheus_samples(reg.samples());
  EXPECT_NE(page.find("# HELP tart_msgs_total Messages."), std::string::npos);
  EXPECT_NE(page.find("# TYPE tart_msgs_total counter"), std::string::npos);
  EXPECT_NE(page.find("tart_msgs_total{component=\"mapper\"} 12"),
            std::string::npos)
      << page;
  EXPECT_NE(page.find("# TYPE tart_stall_seconds summary"),
            std::string::npos);
  EXPECT_NE(
      page.find("tart_stall_seconds{component=\"mapper\",quantile=\"0.5\"}"),
      std::string::npos)
      << page;
  EXPECT_NE(page.find("tart_stall_seconds_count{component=\"mapper\"} 1"),
            std::string::npos);
  EXPECT_NE(page.find("# TYPE tart_stall_seconds_max gauge"),
            std::string::npos);
  EXPECT_EQ(lint_exposition(page), std::nullopt) << *lint_exposition(page);
}

TEST(Exposition, SnapshotPageLintsCleanWithAndWithoutRegistry) {
  core::MetricsSnapshot snap;
  snap.messages_processed = 3;
  snap.pessimism_wait_ns = 1'500'000'000;  // renders as 1.5 seconds
  const std::string bare = render_prometheus(snap, nullptr);
  EXPECT_EQ(lint_exposition(bare), std::nullopt) << *lint_exposition(bare);
  EXPECT_NE(bare.find("tart_pessimism_wait_seconds_total 1.5"),
            std::string::npos)
      << bare;

  Registry reg;
  reg.counter("tart_messages_processed_total", "Messages",
              {{"component", "m"}})
      .inc(3);
  const std::string page = render_prometheus(snap, &reg);
  EXPECT_EQ(lint_exposition(page), std::nullopt) << *lint_exposition(page);
  // With a registry the per-component families come from it, labelled;
  // the unlabelled snapshot rendering must NOT appear beside them.
  EXPECT_NE(page.find("tart_messages_processed_total{component=\"m\"} 3"),
            std::string::npos)
      << page;
  EXPECT_EQ(page.find("tart_messages_processed_total 3"), std::string::npos)
      << page;
}

TEST(ExpositionLint, CatchesConventionViolations) {
  EXPECT_TRUE(lint_exposition("# HELP bad_name x\n# TYPE bad_name counter\n")
                  .has_value());
  EXPECT_TRUE(
      lint_exposition("# HELP tart_x x\n# TYPE tart_x counter\ntart_x 1\n")
          .has_value())
      << "counter family without _total must fail";
  EXPECT_TRUE(lint_exposition("tart_x_total 1\n").has_value())
      << "sample before its TYPE line must fail";
  EXPECT_TRUE(lint_exposition("# TYPE tart_x_total counter\ntart_x_total 1\n")
                  .has_value())
      << "family without HELP must fail";
  EXPECT_TRUE(lint_exposition("# HELP tart_x_total x\n"
                              "# TYPE tart_x_total counter\n"
                              "tart_x_total notanumber\n")
                  .has_value());
  EXPECT_EQ(lint_exposition("# HELP tart_x_total x\n"
                            "# TYPE tart_x_total counter\n"
                            "tart_x_total{component=\"a b\"} 1\n"),
            std::nullopt);
}

TEST(Exposition, ExemplarsRenderOnlyWhenAskedAndLintClean) {
  Registry reg;
  Histogram& h = reg.histogram("tart_stall_seconds", "Stall.",
                               {{"component", "merger"}}, 1e-3, 16);
  h.enable_exemplars(4);
  h.record(2.5e-3, Exemplar{2.5e-3, 42, 3, 7});
  h.record(99.0, Exemplar{99.0, 43, 3, 8});  // overflow -> le="+Inf"

  const std::string plain = render_prometheus_samples(reg.samples());
  EXPECT_EQ(plain.find(" # {"), std::string::npos) << plain;
  EXPECT_EQ(lint_exposition(plain), std::nullopt) << *lint_exposition(plain);

  const std::string page =
      render_prometheus_samples(reg.samples(), /*with_exemplars=*/true);
  EXPECT_NE(page.find("tart_stall_seconds_bucket{component=\"merger\","),
            std::string::npos)
      << page;
  EXPECT_NE(page.find("# {episode=\"42\",component=\"3\",wire=\"7\"} 0.0025"),
            std::string::npos)
      << page;
  EXPECT_NE(page.find("le=\"+Inf\""), std::string::npos) << page;
  EXPECT_NE(page.find("episode=\"43\""), std::string::npos) << page;
  EXPECT_EQ(lint_exposition(page), std::nullopt) << *lint_exposition(page);
}

TEST(ExpositionLint, ExemplarSyntax) {
  const std::string framing =
      "# HELP tart_h_seconds h\n"
      "# TYPE tart_h_seconds summary\n";
  // Valid: exemplar suffix on a _bucket sample.
  EXPECT_EQ(lint_exposition(framing +
                            "tart_h_seconds_bucket{le=\"1\"} 1 "
                            "# {episode=\"4\",component=\"1\",wire=\"2\"} "
                            "0.5\n"),
            std::nullopt);
  // Exemplars belong to buckets only.
  EXPECT_TRUE(lint_exposition(framing +
                              "tart_h_seconds_count 1 "
                              "# {episode=\"4\"} 0.5\n")
                  .has_value());
  // Unterminated label set.
  EXPECT_TRUE(lint_exposition(framing +
                              "tart_h_seconds_bucket{le=\"1\"} 1 "
                              "# {episode=\"4\" 0.5\n")
                  .has_value());
  // Missing exemplar value.
  EXPECT_TRUE(lint_exposition(framing +
                              "tart_h_seconds_bucket{le=\"1\"} 1 "
                              "# {episode=\"4\"}\n")
                  .has_value());
}

// --- Status JSON ------------------------------------------------------------

TEST(StatusJson, RendersWavefront) {
  core::StatusReport report;
  core::ComponentStatus c;
  c.id = ComponentId(2);
  c.name = "merger";
  c.vt_ticks = 123;
  c.pending = 4;
  c.held = true;
  c.held_vt = 456;
  c.held_wire = WireId(7);
  core::WireStatus open_wire;
  open_wire.wire = WireId(7);
  open_wire.sender = "mapper";
  open_wire.horizon_ticks = 100;
  open_wire.pending = 4;
  open_wire.blocking = true;
  core::WireStatus closed_wire;
  closed_wire.wire = WireId(8);
  closed_wire.sender = "external";
  closed_wire.horizon_ticks = VirtualTime::infinity().ticks();
  c.inputs = {open_wire, closed_wire};
  report.components.push_back(c);

  const std::string json = render_status_json(report);
  EXPECT_NE(json.find("\"name\":\"merger\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"held\":true"), std::string::npos);
  EXPECT_NE(json.find("\"held_vt\":456"), std::string::npos);
  EXPECT_NE(json.find("\"blocking\":true"), std::string::npos);
  // Infinite horizons render as the string "inf", not a 64-bit literal no
  // JSON parser can hold.
  EXPECT_NE(json.find("\"horizon\":\"inf\""), std::string::npos) << json;
  EXPECT_EQ(json.find("9223372036854775807"), std::string::npos);
}

TEST(StatusJson, HeldFieldsOmittedWhenNotHeld) {
  core::StatusReport report;
  core::ComponentStatus c;
  c.id = ComponentId(0);
  c.name = "idle";
  report.components.push_back(c);
  const std::string json = render_status_json(report);
  EXPECT_EQ(json.find("held_vt"), std::string::npos) << json;
  EXPECT_NE(json.find("\"held\":false"), std::string::npos);
}

// --- MetricsSnapshot X-macro guarantees -------------------------------------

TEST(MetricsSnapshot, FieldCountMatchesStructSize) {
  // Mirrors the compile-time guard: every field is enumerated exactly once.
  EXPECT_EQ(sizeof(core::MetricsSnapshot),
            core::detail::kMetricsFieldCount * sizeof(std::uint64_t));
}

TEST(MetricsSnapshot, AggregationFollowsDeclaredSemantics) {
  core::MetricsSnapshot a;
  core::MetricsSnapshot b;
  a.messages_processed = 10;
  b.messages_processed = 5;
  a.net_queue_high_water = 3;  // MAX field
  b.net_queue_high_water = 8;
  a.gw_commit_batch_max = 9;  // MAX field
  b.gw_commit_batch_max = 2;
  a += b;
  EXPECT_EQ(a.messages_processed, 15u);   // SUM
  EXPECT_EQ(a.net_queue_high_water, 8u);  // MAX
  EXPECT_EQ(a.gw_commit_batch_max, 9u);   // MAX
}

TEST(MetricsSnapshot, EveryPromNameIsUniqueAndPrefixed) {
  std::vector<std::string> names;
#define TART_OBS_TEST_NAME(field, prom, help, agg, scale) \
  names.push_back(prom);
  TART_METRICS_SCALAR_FIELDS(TART_OBS_TEST_NAME)
#undef TART_OBS_TEST_NAME
  EXPECT_EQ(names.size(), core::detail::kMetricsFieldCount);
  std::set<std::string> unique(names.begin(), names.end());
  EXPECT_EQ(unique.size(), names.size()) << "duplicate exposition name";
  for (const auto& n : names)
    EXPECT_EQ(n.rfind("tart_", 0), 0u) << n;
}

TEST(RunnerMetrics, CountsLandInLabelledRegistryCells) {
  Registry reg;
  core::RunnerMetrics rm(reg, "mapper");
  rm.messages_processed.inc(4);
  rm.probes_sent.inc();
  EXPECT_EQ(rm.snapshot().messages_processed, 4u);

  // A "recovered" RunnerMetrics re-attaches to the same cells.
  core::RunnerMetrics again(reg, "mapper");
  EXPECT_EQ(&again.messages_processed, &rm.messages_processed);
  EXPECT_EQ(again.snapshot().messages_processed, 4u);

  bool found = false;
  for (const auto& s : reg.samples()) {
    if (s.name != "tart_messages_processed_total") continue;
    ASSERT_EQ(s.labels.size(), 1u);
    EXPECT_EQ(s.labels[0].key, "component");
    EXPECT_EQ(s.labels[0].value, "mapper");
    EXPECT_EQ(s.counter_value, 4u);
    found = true;
  }
  EXPECT_TRUE(found);
}

// --- Sampler line -----------------------------------------------------------

TEST(Sampler, RenderLineIsOneJsonObject) {
  core::MetricsSnapshot snap;
  snap.messages_processed = 2;
  Registry reg;
  reg.counter("tart_c_total", "c", {{"component", "x"}}).inc(1);
  reg.histogram("tart_h_seconds", "h", {}, 1.0, 2).record(0.5);
  const std::string line = Sampler::render_line(1234, snap, reg.samples());
  EXPECT_EQ(line.back(), '\n');
  EXPECT_EQ(line.front(), '{');
  EXPECT_NE(line.find("\"ts_ms\":1234"), std::string::npos) << line;
  EXPECT_NE(line.find("\"messages_processed\":2"), std::string::npos) << line;
  EXPECT_NE(line.find("\"tart_c_total\""), std::string::npos) << line;
  EXPECT_NE(line.find("\"p50\""), std::string::npos) << line;
}

}  // namespace
}  // namespace tart::obs
