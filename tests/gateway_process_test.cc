// HTTP-only end-to-end over real processes: the ingress gateway's two big
// promises, checked against forked tart-node / tart-gateway binaries.
//
//   1. Placement transparency through the HTTP face: a two-node wordcount
//      deployment driven ONLY over HTTP (inject, drain, fetch outputs)
//      produces byte-for-byte the single-process in-process baseline —
//      including after SIGKILL-ing the ingress node mid-run and cold
//      restarting it over the same log directory (§II.F).
//   2. Log-before-ack under a crash DURING ingest: concurrent clients blast
//      unique tokens at a tart-gateway while it is SIGKILLed mid-load.
//      After restart + replay, every acked token is present exactly once
//      and every un-acked token is absent or present once — never
//      duplicated, because the ack is issued only after the fsync.
#include <gtest/gtest.h>
#include <signal.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <map>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "apps/wordcount.h"
#include "core/runtime.h"
#include "gateway/http_client.h"
#include "net/socket.h"
#include "net/topologies.h"

using namespace tart;
using namespace std::chrono_literals;
using gateway::BlockingHttpClient;

namespace {

std::uint16_t free_port() {
  std::string err;
  net::Fd fd = net::listen_tcp(*net::SockAddr::parse("127.0.0.1:0"), &err);
  EXPECT_TRUE(fd.valid()) << err;
  return net::local_port(fd.get());
}

std::string make_temp_dir() {
  char tmpl[] = "/tmp/tart_gw_XXXXXX";
  const char* dir = mkdtemp(tmpl);
  EXPECT_NE(dir, nullptr);
  return dir;
}

void write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << content;
}

/// One forked child running `binary args...`. SIGKILLs on destruction
/// unless reaped first.
class Proc {
 public:
  Proc(const char* binary, std::vector<std::string> args) {
    args.insert(args.begin(), binary);
    pid_ = fork();
    if (pid_ == 0) {
      std::vector<char*> argv;
      argv.reserve(args.size() + 1);
      for (auto& a : args) argv.push_back(a.data());
      argv.push_back(nullptr);
      execv(binary, argv.data());
      _exit(127);
    }
  }

  ~Proc() {
    if (pid_ > 0) {
      ::kill(pid_, SIGKILL);
      (void)reap();
    }
  }

  void kill9() const { ASSERT_EQ(::kill(pid_, SIGKILL), 0); }

  int reap() {
    if (pid_ <= 0) return -1;
    int status = 0;
    waitpid(pid_, &status, 0);
    pid_ = -1;
    return status;
  }

 private:
  pid_t pid_ = -1;
};

BlockingHttpClient http_or_die(const std::string& addr) {
  auto client = BlockingHttpClient::connect(addr, 15s);
  if (!client) {
    ADD_FAILURE() << "http connect to " << addr << " timed out";
    std::abort();
  }
  return std::move(*client);
}

/// Sums every sample of a Prometheus family in a /metrics body — labelled
/// ("tart_<name>{component=\"x\"} 3") and unlabelled ("tart_<name> 3")
/// lines alike; HELP/TYPE comment lines are skipped.
std::uint64_t metric(const std::string& body, const std::string& name) {
  const std::string family = "tart_" + name;
  std::uint64_t total = 0;
  std::istringstream in(body);
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind(family, 0) != 0) continue;
    const char next = line.size() > family.size() ? line[family.size()] : '\0';
    if (next != ' ' && next != '{') continue;
    const auto sp = line.rfind(' ');
    if (sp == std::string::npos) continue;
    total += static_cast<std::uint64_t>(
        std::strtoull(line.c_str() + sp + 1, nullptr, 10));
  }
  return total;
}

struct OutputLine {
  std::int64_t vt;
  bool stutter;
  std::string payload;
  bool operator==(const OutputLine&) const = default;
};

/// Parses a GET /outputs body: one "vt\tstutter\torigin\tpayload" line per
/// record. The origin column (the originating ingest's WIRE:SEQ lineage
/// tag, "-" when unstamped) must be well-formed but is dropped from the
/// comparison value: origins name gateway log positions, which differ
/// between a live run and its recovery replay while vt/payload must not.
std::vector<OutputLine> parse_outputs(const std::string& body) {
  std::vector<OutputLine> lines;
  std::istringstream in(body);
  std::string line;
  while (std::getline(in, line)) {
    const auto t1 = line.find('\t');
    const auto t2 = line.find('\t', t1 + 1);
    const auto t3 = line.find('\t', t2 + 1);
    EXPECT_NE(t1, std::string::npos) << line;
    EXPECT_NE(t2, std::string::npos) << line;
    EXPECT_NE(t3, std::string::npos) << line;
    const std::string origin = line.substr(t2 + 1, t3 - t2 - 1);
    EXPECT_TRUE(origin == "-" || origin.find(':') != std::string::npos)
        << line;
    lines.push_back({std::stoll(line.substr(0, t1)),
                     line.substr(t1 + 1, t2 - t1 - 1) == "1",
                     line.substr(t3 + 1)});
  }
  return lines;
}

std::vector<OutputLine> fresh_only(std::vector<OutputLine> lines) {
  std::erase_if(lines, [](const OutputLine& l) { return l.stutter; });
  return lines;
}

// --- 1: HTTP-only wordcount vs in-process baseline ---------------------------

struct Step {
  std::string input;
  std::int64_t vt;
  std::vector<std::string> words;
};

std::vector<Step> make_script(int n) {
  const std::vector<std::string> vocab = {"gateway", "ingest", "durable",
                                          "ack",     "commit", "replay"};
  std::vector<Step> steps;
  for (int i = 0; i < n; ++i) {
    Step s;
    s.input = (i % 2 == 0) ? "sender1" : "sender2";
    s.vt = 1000 * (i + 1);
    const int len = (i % 4) + 1;
    for (int w = 0; w < len; ++w)
      s.words.push_back(vocab[static_cast<std::size_t>((i + w) % 6)]);
    steps.push_back(std::move(s));
  }
  return steps;
}

std::string body_of(const Step& s) {
  std::string body;
  for (const auto& w : s.words) {
    if (!body.empty()) body += ' ';
    body += w;
  }
  return body;
}

/// Single-process ground truth, rendered the way the gateway renders it.
std::vector<OutputLine> baseline(const std::vector<Step>& steps) {
  auto built = net::build_topology("wordcount", {{"senders", "2"}});
  std::map<ComponentId, EngineId> placement;
  for (const auto& [name, id] : built.components) placement[id] = EngineId(0);
  core::Runtime rt(built.topology, placement, core::RuntimeConfig{});
  rt.start();
  for (const auto& s : steps)
    rt.inject_at(built.inputs.at(s.input), VirtualTime(s.vt),
                 apps::sentence(s.words));
  EXPECT_TRUE(rt.drain());
  std::vector<OutputLine> out;
  for (const auto& rec : rt.output_records(built.outputs.at("total")))
    if (!rec.stutter)
      out.push_back(
          {rec.vt.ticks(), false, std::to_string(rec.payload.as_int())});
  rt.stop();
  return out;
}

struct HttpDeployment {
  std::string config_path;
  std::string left_http;
  std::string right_http;
};

HttpDeployment write_deployment(const std::string& dir) {
  const auto p = [] { return std::to_string(free_port()); };
  HttpDeployment d;
  d.left_http = "127.0.0.1:" + p();
  d.right_http = "127.0.0.1:" + p();
  d.config_path = dir + "/deploy.conf";
  write_file(d.config_path,
             "topology = wordcount\n"
             "param senders = 2\n"
             "partition left = 127.0.0.1:" + p() +
             "\ncontrol left = 127.0.0.1:" + p() +
             "\npartition right = 127.0.0.1:" + p() +
             "\ncontrol right = 127.0.0.1:" + p() +
             "\nplace sender1 = left\n"
             "place sender2 = left\n"
             "place merger = right\n");
  return d;
}

std::vector<std::string> node_args(const HttpDeployment& d,
                                   const std::string& partition,
                                   const std::string& log_dir) {
  std::vector<std::string> args = {d.config_path, partition};
  args.push_back("--http=" +
                 (partition == "left" ? d.left_http : d.right_http));
  if (!log_dir.empty()) args.push_back("--log-dir=" + log_dir);
  return args;
}

void inject_over_http(BlockingHttpClient& http, const Step& s) {
  const auto resp =
      http.post("/inject/" + s.input + "?vt=" + std::to_string(s.vt),
                body_of(s), "text/plain");
  ASSERT_EQ(resp.status, 200) << resp.body;
  EXPECT_EQ(resp.body, "vt=" + std::to_string(s.vt) + "\n");
}

}  // namespace

TEST(GatewayProcessTest, HttpOnlyWordcountMatchesBaselineAndSurvivesSigkill) {
  const auto steps = make_script(60);
  const std::vector<OutputLine> expected = baseline(steps);
  ASSERT_FALSE(expected.empty());
  const std::string dir = make_temp_dir();

  // --- Run 1: clean two-node run, driven entirely over HTTP ----------------
  std::vector<OutputLine> clean_out;
  {
    const HttpDeployment d = write_deployment(dir);
    ASSERT_EQ(mkdir((dir + "/clean_left").c_str(), 0755), 0);
    Proc left(TART_NODE_BIN, node_args(d, "left", dir + "/clean_left"));
    Proc right(TART_NODE_BIN, node_args(d, "right", ""));

    auto left_http = http_or_die(d.left_http);
    auto right_http = http_or_die(d.right_http);
    EXPECT_EQ(left_http.get("/healthz").status, 200);
    EXPECT_EQ(right_http.get("/healthz").status, 200);
    // The gateway serves only its partition's adaptable wires.
    EXPECT_EQ(left_http.get("/outputs/total").status, 404);
    EXPECT_EQ(right_http.post("/inject/sender1", "x", "text/plain").status,
              404);

    for (const auto& s : steps) inject_over_http(left_http, s);
    ASSERT_EQ(left_http.post("/drain", "").status, 200);
    ASSERT_EQ(right_http.post("/drain", "").status, 200);
    clean_out = fresh_only(
        parse_outputs(right_http.get("/outputs/total?max=1000000").body));

    // Durability and transport demonstrably happened.
    const auto lm = left_http.get("/metrics").body;
    EXPECT_EQ(metric(lm, "store_records_written_total"), steps.size());
    EXPECT_GT(metric(lm, "store_flushes_total"), 0u);
    EXPECT_EQ(metric(lm, "gw_acked_total"), steps.size());
    EXPECT_GT(metric(lm, "net_frames_out_total"), 0u);

    EXPECT_EQ(left_http.post("/shutdown", "").status, 200);
    EXPECT_EQ(right_http.post("/shutdown", "").status, 200);
    EXPECT_EQ(left.reap(), 0);
    EXPECT_EQ(right.reap(), 0);
  }
  EXPECT_EQ(clean_out, expected)
      << "HTTP-driven two-node run diverged from the in-process baseline";

  // --- Run 2: SIGKILL the ingress node mid-run, restart from its log ------
  std::vector<OutputLine> kill_out;
  {
    const HttpDeployment d = write_deployment(dir);
    const std::string log_dir = dir + "/kill_left";
    ASSERT_EQ(mkdir(log_dir.c_str(), 0755), 0);
    Proc right(TART_NODE_BIN, node_args(d, "right", ""));
    auto right_http = http_or_die(d.right_http);
    const std::size_t half = steps.size() / 2;

    {
      Proc left(TART_NODE_BIN, node_args(d, "left", log_dir));
      auto left_http = http_or_die(d.left_http);
      for (std::size_t i = 0; i < half; ++i)
        inject_over_http(left_http, steps[i]);
      // Every first-half request was ACKED over HTTP, so each one is
      // durable: the restart below MUST reproduce all of them. Let the
      // merger see some of the stream first so replay produces duplicates
      // for it to discard, then pull the plug with no warning.
      const auto deadline = std::chrono::steady_clock::now() + 10s;
      while (metric(right_http.get("/metrics").body,
                    "messages_processed_total") < half / 2) {
        ASSERT_LT(std::chrono::steady_clock::now(), deadline)
            << "merger saw too little before the kill window";
        std::this_thread::sleep_for(5ms);
      }
      left.kill9();
      left.reap();
    }

    Proc left(TART_NODE_BIN, node_args(d, "left", log_dir));
    auto left_http = http_or_die(d.left_http);
    for (std::size_t i = half; i < steps.size(); ++i)
      inject_over_http(left_http, steps[i]);
    ASSERT_EQ(left_http.post("/drain", "").status, 200);
    ASSERT_EQ(right_http.post("/drain", "").status, 200);
    kill_out = fresh_only(
        parse_outputs(right_http.get("/outputs/total?max=1000000").body));

    EXPECT_EQ(left_http.post("/shutdown", "").status, 200);
    EXPECT_EQ(right_http.post("/shutdown", "").status, 200);
    EXPECT_EQ(left.reap(), 0);
    EXPECT_EQ(right.reap(), 0);
  }
  EXPECT_EQ(kill_out, expected)
      << "HTTP-driven output after SIGKILL + restart diverged from baseline";
}

// --- 2: crash DURING ingest — acked exactly once, un-acked absent-or-once ---

TEST(GatewayProcessTest, CrashDuringIngestKeepsAckedExactlyOnce) {
  const std::string dir = make_temp_dir();
  const std::string log_dir = dir + "/log";
  ASSERT_EQ(mkdir(log_dir.c_str(), 0755), 0);
  const std::string addr = "127.0.0.1:" + std::to_string(free_port());
  const std::vector<std::string> args = {"chain", "stages=2",
                                         "--http=" + addr,
                                         "--log-dir=" + log_dir};

  std::mutex mu;
  std::vector<std::string> acked;  // tokens whose 200 arrived
  std::vector<std::string> sent;   // every token that left a client
  std::atomic<std::uint64_t> ack_count{0};
  std::atomic<bool> stop{false};

  {
    Proc gw(TART_GATEWAY_BIN, args);
    {
      auto probe = http_or_die(addr);
      ASSERT_EQ(probe.get("/healthz").status, 200);
    }

    // Concurrent clients blast unique tokens until the server dies under
    // them. A request is "acked" only if its 200 was read off the socket.
    constexpr int kClients = 6;
    std::vector<std::thread> clients;
    for (int t = 0; t < kClients; ++t) {
      clients.emplace_back([&, t] {
        auto http = BlockingHttpClient::connect(addr, 5s);
        if (!http) return;
        for (int i = 0; !stop.load(); ++i) {
          const std::string token =
              "tok-" + std::to_string(t) + "-" + std::to_string(i);
          {
            std::lock_guard<std::mutex> lk(mu);
            sent.push_back(token);
          }
          try {
            const auto resp =
                http->post("/inject/in", token, "application/x-tart-string");
            if (resp.status != 200) break;
            std::lock_guard<std::mutex> lk(mu);
            acked.push_back(token);
            ack_count.fetch_add(1);
          } catch (const std::exception&) {
            break;  // connection died mid-request: token is un-acked
          }
        }
      });
    }

    // Let a healthy chunk of load through, then SIGKILL with requests in
    // flight — this is the crash-during-ingest window the log-before-ack
    // discipline exists for.
    const auto deadline = std::chrono::steady_clock::now() + 15s;
    while (ack_count.load() < 200) {
      ASSERT_LT(std::chrono::steady_clock::now(), deadline)
          << "only " << ack_count.load() << " acks before the kill window";
      std::this_thread::sleep_for(1ms);
    }
    gw.kill9();
    gw.reap();
    stop.store(true);
    for (auto& c : clients) c.join();
  }
  ASSERT_GE(acked.size(), 200u);
  EXPECT_GT(sent.size(), acked.size())
      << "the kill should have caught at least one request un-acked";

  // Cold restart over the same log: replay everything, then read outputs.
  Proc gw(TART_GATEWAY_BIN, args);
  auto http = http_or_die(addr);
  ASSERT_EQ(http.post("/drain", "").status, 200);
  const auto lines = fresh_only(
      parse_outputs(http.get("/outputs/out?max=1000000").body));

  std::map<std::string, int> times_seen;
  for (const auto& l : lines) ++times_seen[l.payload];

  // Every acked token survived the crash, exactly once.
  for (const auto& token : acked)
    EXPECT_EQ(times_seen[token], 1) << "acked token lost or duplicated: "
                                    << token;
  // Every token — acked or not — appears at most once (absent-or-once).
  for (const auto& [token, n] : times_seen)
    EXPECT_EQ(n, 1) << "token duplicated after replay: " << token;
  for (const auto& token : sent)
    EXPECT_LE(times_seen[token], 1) << token;
  // Output vts are strictly monotone: one wire, one record per tick.
  for (std::size_t i = 1; i < lines.size(); ++i)
    EXPECT_GT(lines[i].vt, lines[i - 1].vt);

  // The restarted process REPLAYS the log rather than re-writing it, so
  // store_records_written stays 0 — the proof of durability is the output
  // stream itself covering every ack.
  EXPECT_GE(lines.size(), acked.size());
  EXPECT_EQ(http.post("/shutdown", "").status, 200);
  EXPECT_EQ(gw.reap(), 0);
}
