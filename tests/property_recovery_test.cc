// Property tests for the recovery criterion (§II.A): despite fail-stop
// engine failures at arbitrary points, the behaviour equals some correct
// failure-free execution except for output stutter.
//
// Each parameterized case generates a random stream-operator DAG and
// workload from the seed, computes the failure-free reference, then
// re-runs the workload interleaved with a seed-derived schedule of engine
// crashes and recoveries, and checks:
//   - stutter-deduplicated outputs are exactly the reference outputs;
//   - every component's final state is bit-identical to the reference;
//   - non-stutter records never rewind (the consumer-visible stream is in
//     strict virtual-time order).
#include <gtest/gtest.h>

#include <chrono>
#include <set>
#include <thread>

#include "random_app.h"

namespace tart::core {
namespace {

using namespace std::chrono_literals;

struct Observation {
  std::vector<std::vector<std::pair<std::int64_t, std::vector<std::int64_t>>>>
      outputs;
  std::vector<std::uint64_t> fingerprints;
  bool operator==(const Observation&) const = default;
};

std::map<ComponentId, EngineId> two_engine_placement(
    const proptest::GeneratedApp& app) {
  std::map<ComponentId, EngineId> placement;
  for (std::size_t i = 0; i < app.components.size(); ++i)
    placement[app.components[i]] = EngineId(i % 2 == 0 ? 0 : 1);
  return placement;
}

/// Collects outputs deduplicated by virtual time plus state fingerprints.
Observation observe(Runtime& rt, const proptest::GeneratedApp& app) {
  Observation obs;
  for (const WireId out : app.outputs) {
    std::vector<std::pair<std::int64_t, std::vector<std::int64_t>>> records;
    std::set<std::int64_t> seen;
    VirtualTime last_clean(-1);
    for (const auto& r : rt.output_records(out)) {
      if (!r.stutter) {
        EXPECT_GT(r.vt, last_clean)
            << "non-stutter output rewound on wire " << out;
        last_clean = r.vt;
      }
      if (seen.insert(r.vt.ticks()).second)
        records.emplace_back(r.vt.ticks(), r.payload.as_ints());
    }
    obs.outputs.push_back(std::move(records));
  }
  for (const ComponentId c : app.components)
    obs.fingerprints.push_back(rt.state_fingerprint(c));
  return obs;
}

/// Pre-computes the workload so it can be injected in chunks around
/// crashes. Mirrors proptest::feed_random_workload exactly.
struct PlannedInjection {
  WireId wire;
  VirtualTime vt;
  Payload payload;
};

std::vector<PlannedInjection> plan_workload(
    const proptest::GeneratedApp& app, std::uint64_t seed) {
  Rng rng(seed * 31 + 7);
  std::vector<PlannedInjection> plan;
  for (const WireId in : app.inputs) {
    std::int64_t vt = 1000;
    const auto count = rng.uniform_int(20, 60);
    for (int i = 0; i < count; ++i) {
      vt += rng.uniform_int(1000, 200'000);
      plan.push_back({in, VirtualTime(vt),
                      apps::event(rng.uniform_int(0, 6),
                                  rng.uniform_int(-50, 900))});
    }
  }
  return plan;
}

class RecoveryProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RecoveryProperty, CrashScheduleIsInvisibleModuloStutter) {
  const std::uint64_t seed = GetParam();
  RuntimeConfig config;
  config.checkpoint.every_n_messages = 4;

  // Failure-free reference.
  Observation reference;
  {
    proptest::GeneratedApp app = proptest::generate_app(seed);
    Runtime rt(app.topo, two_engine_placement(app), config);
    rt.start();
    for (const auto& inj : plan_workload(app, seed))
      rt.inject_at(inj.wire, inj.vt, inj.payload);
    ASSERT_TRUE(rt.drain(60s));
    reference = observe(rt, app);
    rt.stop();
  }

  // Same workload with a random crash/recover schedule woven through it.
  proptest::GeneratedApp app = proptest::generate_app(seed);
  Runtime rt(app.topo, two_engine_placement(app), config);
  rt.start();
  const auto plan = plan_workload(app, seed);
  Rng chaos(seed ^ 0xC4A5u);
  const int crashes = static_cast<int>(chaos.uniform_int(1, 3));
  std::set<std::size_t> crash_points;
  for (int i = 0; i < crashes; ++i)
    crash_points.insert(chaos.bounded(plan.size()));

  for (std::size_t i = 0; i < plan.size(); ++i) {
    rt.inject_at(plan[i].wire, plan[i].vt, plan[i].payload);
    if (crash_points.contains(i)) {
      // Let some processing (and checkpointing) happen first.
      std::this_thread::sleep_for(5ms);
      const EngineId victim(static_cast<std::uint32_t>(chaos.bounded(2)));
      rt.crash_engine(victim);
      rt.recover_engine(victim);
    }
  }
  ASSERT_TRUE(rt.drain(60s));
  const Observation recovered = observe(rt, app);
  rt.stop();

  EXPECT_EQ(recovered.outputs, reference.outputs) << "seed " << seed;
  EXPECT_EQ(recovered.fingerprints, reference.fingerprints)
      << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(RandomCrashSchedules, RecoveryProperty,
                         ::testing::Range<std::uint64_t>(1, 11));

}  // namespace
}  // namespace tart::core
