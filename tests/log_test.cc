// Tests for the external message log and the determinism-fault log.
#include <gtest/gtest.h>

#include "log/fault_log.h"
#include "log/message_log.h"

namespace tart::log {
namespace {

Message external(WireId wire, std::int64_t vt, std::uint64_t seq,
                 const char* text) {
  Message m;
  m.wire = wire;
  m.vt = VirtualTime(vt);
  m.seq = seq;
  m.payload = Payload(text);
  return m;
}

TEST(MessageLogTest, AppendAndReplayAfterVt) {
  ExternalMessageLog log;
  const WireId w(0);
  log.append(external(w, 50000, 0, "a"));
  log.append(external(w, 80000, 1, "b"));
  log.append(external(w, 90000, 2, "c"));

  const auto replayed = log.replay_after(w, VirtualTime(50000));
  ASSERT_EQ(replayed.size(), 2u);
  EXPECT_EQ(replayed[0].payload.as_string(), "b");
  EXPECT_EQ(replayed[1].payload.as_string(), "c");
}

TEST(MessageLogTest, ReplayFromSeq) {
  ExternalMessageLog log;
  const WireId w(0);
  for (int i = 0; i < 5; ++i)
    log.append(external(w, 1000 * (i + 1), static_cast<std::uint64_t>(i), "x"));
  EXPECT_EQ(log.replay_from_seq(w, 2).size(), 3u);
  EXPECT_EQ(log.replay_from_seq(w, 0).size(), 5u);
}

TEST(MessageLogTest, WiresAreIndependent) {
  ExternalMessageLog log;
  log.append(external(WireId(0), 100, 0, "w0"));
  log.append(external(WireId(1), 200, 0, "w1"));
  EXPECT_EQ(log.size(WireId(0)), 1u);
  EXPECT_EQ(log.size(WireId(1)), 1u);
  EXPECT_EQ(log.total_size(), 2u);
  EXPECT_EQ(log.replay_after(WireId(0), VirtualTime(-1)).size(), 1u);
}

TEST(MessageLogTest, EmptyWireBehaviour) {
  ExternalMessageLog log;
  EXPECT_EQ(log.size(WireId(7)), 0u);
  EXPECT_TRUE(log.replay_after(WireId(7), VirtualTime(-1)).empty());
  EXPECT_EQ(log.last_vt(WireId(7)), VirtualTime(-1));
}

TEST(MessageLogTest, LastVtTracksAppends) {
  ExternalMessageLog log;
  const WireId w(0);
  log.append(external(w, 500, 0, "x"));
  EXPECT_EQ(log.last_vt(w), VirtualTime(500));
  log.append(external(w, 900, 1, "y"));
  EXPECT_EQ(log.last_vt(w), VirtualTime(900));
}

TEST(FaultLogTest, AppendAndQueryAfterVersion) {
  DeterminismFaultLog log;
  const ComponentId c(1);
  log.append(FaultRecord{c, 1, VirtualTime(100'000'000), {0.0, 62000.0}});
  log.append(FaultRecord{c, 2, VirtualTime(200'000'000), {0.0, 61500.0}});

  EXPECT_EQ(log.latest_version(c), 2u);
  const auto all = log.records_after(c, 0);
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0].version, 1u);
  const auto tail = log.records_after(c, 1);
  ASSERT_EQ(tail.size(), 1u);
  EXPECT_EQ(tail[0].version, 2u);
  EXPECT_EQ(tail[0].coefficients[1], 61500.0);
}

TEST(FaultLogTest, ComponentsAreIndependent) {
  DeterminismFaultLog log;
  log.append(FaultRecord{ComponentId(0), 1, VirtualTime(10), {1.0}});
  EXPECT_EQ(log.latest_version(ComponentId(1)), 0u);
  EXPECT_TRUE(log.records_after(ComponentId(1), 0).empty());
  EXPECT_EQ(log.total_records(), 1u);
}

}  // namespace
}  // namespace tart::log
