// Hot-path span profiler: accounting math, cross-thread merge, registry
// harvest, byte counters on a round-tripped envelope, and the OFF-mode
// contract (API links and stays callable even when the macros compile to
// nothing — this file builds in both TART_PROF modes).
#include "obs/prof.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "obs/registry.h"
#include "serde/archive.h"
#include "wire/payload.h"

namespace prof = tart::obs::prof;

namespace {

class ProfTest : public ::testing::Test {
 protected:
  void SetUp() override {
    prof::set_enabled(true);
    prof::reset_for_tests();
  }
  void TearDown() override {
    prof::set_enabled(true);
    prof::reset_for_tests();
  }

  static const prof::SiteStats* find(const prof::Snapshot& snap,
                                     const std::string& name) {
    for (const auto& s : snap.sites)
      if (s.name == name) return &s;
    return nullptr;
  }
};

TEST_F(ProfTest, RegisterIsFindOrCreate) {
  const prof::SiteId a = prof::register_span("prof_test.site_a");
  const prof::SiteId b = prof::register_span("prof_test.site_a");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, prof::kInvalidSite);
  EXPECT_NE(a, prof::register_span("prof_test.site_b"));
}

TEST_F(ProfTest, SpanAccountingMath) {
  const prof::SiteId site = prof::register_span("prof_test.math");
  prof::record_span_ns(site, 100);
  prof::record_span_ns(site, 300);
  prof::record_span_ns(site, 50);

  const auto snap = prof::snapshot();
  const auto* s = find(snap, "prof_test.math");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->kind, prof::SiteKind::kSpan);
  EXPECT_EQ(s->count, 3u);
  EXPECT_EQ(s->total, 450u);
  EXPECT_EQ(s->max, 300u);
  // log2 buckets: 100ns -> [64,128) = bucket 7+1; spot-check the sum.
  std::uint64_t bucketed = 0;
  for (const auto c : s->log2) bucketed += c;
  EXPECT_EQ(bucketed, 3u);
  // All three samples sit in [50, 300], so any percentile estimate must.
  EXPECT_GE(s->percentile_ns(99.0), 32.0);
  EXPECT_LE(s->percentile_ns(99.0), 512.0);
  EXPECT_LE(s->percentile_ns(50.0), s->percentile_ns(99.0));
}

TEST_F(ProfTest, SpanTimerMeasuresScope) {
  const prof::SiteId site = prof::register_span("prof_test.timer");
  { const prof::SpanTimer t(site); }
  const auto snap = prof::snapshot();
  const auto* s = find(snap, "prof_test.timer");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->count, 1u);
}

TEST_F(ProfTest, DisabledRecordsNothing) {
  const prof::SiteId site = prof::register_span("prof_test.disabled");
  prof::set_enabled(false);
  prof::record_span_ns(site, 1000);
  prof::add(site, 1, 1);
  { const prof::SpanTimer t(site); }
  prof::set_enabled(true);
  const auto snap = prof::snapshot();
  const auto* s = find(snap, "prof_test.disabled");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->count, 0u);
  EXPECT_EQ(s->total, 0u);
}

TEST_F(ProfTest, ThreadLocalBlocksMergeAcrossThreadsAndRetirement) {
  const prof::SiteId site = prof::register_span("prof_test.threads");
  constexpr int kThreads = 4;
  constexpr int kPerThread = 1000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([site] {
      for (int i = 0; i < kPerThread; ++i) prof::record_span_ns(site, 10);
    });
  }
  // Join half before snapshotting, half after: the merged totals must be
  // identical whether a thread's block is live or folded into retirement.
  workers[0].join();
  workers[1].join();
  for (int t = 2; t < kThreads; ++t) workers[t].join();

  const auto snap = prof::snapshot();
  const auto* s = find(snap, "prof_test.threads");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->count, static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(s->total, static_cast<std::uint64_t>(kThreads) * kPerThread * 10);
  EXPECT_GE(snap.threads, static_cast<std::uint64_t>(kThreads));
}

TEST_F(ProfTest, ByteCountersTrackRoundTrippedEnvelope) {
  const tart::Payload payload(std::string(1024, 'x'));
  tart::serde::Writer w;
  payload.encode(w);
  const std::size_t encoded_size = w.size();
  const std::vector<std::byte> bytes = w.take();  // accounting point

  tart::serde::Reader r(bytes);
  const tart::Payload back = tart::Payload::decode(r);
  EXPECT_EQ(back, payload);

#if defined(TART_PROF_ENABLED) && TART_PROF_ENABLED
  const auto snap = prof::snapshot();
  const auto* s = find(snap, "serde.archive");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->kind, prof::SiteKind::kBytes);
  EXPECT_GE(s->count, 1u);
  EXPECT_GE(s->total, encoded_size);
#else
  (void)encoded_size;  // macros compiled out: nothing recorded, still links
#endif
}

TEST_F(ProfTest, HarvestIntoRegistrySetsProfCells) {
  const prof::SiteId span = prof::register_span("prof_test.harvest");
  const prof::SiteId bytes = prof::register_bytes("prof_test.copies");
  prof::record_span_ns(span, 2000);
  prof::record_span_ns(span, 2000);
  prof::add(bytes, 3, 4096);

  tart::obs::Registry reg;
  prof::harvest_into(reg);
  std::uint64_t span_calls = 0;
  std::uint64_t copied = 0;
  std::uint64_t hist_count = 0;
  for (const auto& sample : reg.samples()) {
    const auto has_label = [&](const char* k, const char* v) {
      for (const auto& l : sample.labels)
        if (l.key == k && l.value == v) return true;
      return false;
    };
    if (sample.name == "tart_prof_span_calls_total" &&
        has_label("span", "prof_test.harvest"))
      span_calls = sample.counter_value;
    if (sample.name == "tart_prof_copied_bytes_total" &&
        has_label("path", "prof_test.copies"))
      copied = sample.counter_value;
    if (sample.name == "tart_prof_span_seconds" &&
        has_label("span", "prof_test.harvest") && sample.hist)
      hist_count = sample.hist->count();
  }
  EXPECT_EQ(span_calls, 2u);
  EXPECT_EQ(copied, 4096u);
  EXPECT_EQ(hist_count, 2u);

  // Second harvest: absolute counters unchanged, histogram not double-fed.
  prof::harvest_into(reg);
  for (const auto& sample : reg.samples()) {
    if (sample.name == "tart_prof_span_seconds" && sample.hist &&
        !sample.labels.empty() &&
        sample.labels.front().value == "prof_test.harvest")
      EXPECT_EQ(sample.hist->count(), 2u);
  }
}

TEST_F(ProfTest, RenderJsonIsSelfConsistent) {
  const prof::SiteId site = prof::register_span("prof_test.json");
  prof::record_span_ns(site, 500);
  const std::string json = prof::render_json();
  EXPECT_NE(json.find("\"enabled\":true"), std::string::npos);
  EXPECT_NE(json.find("\"prof_test.json\""), std::string::npos);
  EXPECT_NE(json.find("\"uptime_ns\":"), std::string::npos);
  EXPECT_NE(json.find("\"saturation\":"), std::string::npos);
}

TEST_F(ProfTest, MacrosCompileAndRecord) {
  {
    TART_PROF_SPAN("prof_test.macro_span");
    TART_PROF_BYTES("prof_test.macro_bytes", 128);
    TART_PROF_COUNT("prof_test.macro_count", 5);
    TART_PROF_SPAN_NS("prof_test.macro_ns", 42);
  }
#if defined(TART_PROF_ENABLED) && TART_PROF_ENABLED
  const auto snap = prof::snapshot();
  const auto* span = find(snap, "prof_test.macro_span");
  ASSERT_NE(span, nullptr);
  EXPECT_EQ(span->count, 1u);
  const auto* by = find(snap, "prof_test.macro_bytes");
  ASSERT_NE(by, nullptr);
  EXPECT_EQ(by->total, 128u);
  const auto* cnt = find(snap, "prof_test.macro_count");
  ASSERT_NE(cnt, nullptr);
  EXPECT_EQ(cnt->count, 5u);
  const auto* ns = find(snap, "prof_test.macro_ns");
  ASSERT_NE(ns, nullptr);
  EXPECT_EQ(ns->total, 42u);
#endif
}

}  // namespace
