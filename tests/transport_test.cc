// Tests for the simulated network and the reliability layer: frames survive
// loss, duplication, reordering, and transient link failure, arriving
// exactly once and in order.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <thread>
#include <vector>

#include "transport/channel.h"
#include "transport/frame.h"
#include "transport/network_link.h"
#include "transport/reliable_link.h"

namespace tart::transport {
namespace {

using namespace std::chrono_literals;

Frame data_frame(std::uint32_t wire, std::int64_t vt, std::uint64_t seq) {
  Message m;
  m.wire = WireId(wire);
  m.vt = VirtualTime(vt);
  m.seq = seq;
  m.payload = Payload(std::int64_t{static_cast<std::int64_t>(seq)});
  return DataFrame{m};
}

// --- Frame codec -------------------------------------------------------------

TEST(FrameTest, AllVariantsRoundTrip) {
  const std::vector<Frame> frames = {
      data_frame(3, 233000, 7),
      SilenceFrame{WireId(2), VirtualTime(202000)},
      ProbeFrame{WireId(9)},
      ReplayRequestFrame{WireId(4), VirtualTime(100), 12},
      StabilityFrame{WireId(5), VirtualTime::infinity()},
  };
  for (const Frame& f : frames) {
    const auto bytes = frame_to_bytes(f);
    const Frame g = frame_from_bytes(bytes);
    EXPECT_EQ(g.index(), f.index());
    EXPECT_EQ(frame_wire(g), frame_wire(f));
  }
}

TEST(FrameTest, DataFramePreservesMessage) {
  const Frame f = data_frame(3, 233000, 7);
  const Frame g = frame_from_bytes(frame_to_bytes(f));
  const auto& m = std::get<DataFrame>(g).msg;
  EXPECT_EQ(m.vt, VirtualTime(233000));
  EXPECT_EQ(m.seq, 7u);
  EXPECT_EQ(m.payload.as_int(), 7);
}

TEST(FrameTest, TrailingBytesRejected) {
  auto bytes = frame_to_bytes(ProbeFrame{WireId(1)});
  bytes.push_back(std::byte{0});
  EXPECT_THROW((void)frame_from_bytes(bytes), serde::DecodeError);
}

// --- BlockingQueue ------------------------------------------------------------

TEST(BlockingQueueTest, FifoOrder) {
  BlockingQueue<int> q;
  EXPECT_TRUE(q.push(1));
  EXPECT_TRUE(q.push(2));
  EXPECT_EQ(*q.pop(), 1);
  EXPECT_EQ(*q.pop(), 2);
  EXPECT_FALSE(q.try_pop().has_value());
}

TEST(BlockingQueueTest, PushAfterCloseIsRefusedNotSwallowed) {
  BlockingQueue<int> q;
  EXPECT_TRUE(q.push(1));
  q.close();
  EXPECT_FALSE(q.push(2));       // refused, and the caller can tell
  EXPECT_EQ(*q.pop(), 1);        // pre-close items still drain
  EXPECT_FALSE(q.pop().has_value());
}

TEST(BlockingQueueTest, CloseWakesBlockedPop) {
  BlockingQueue<int> q;
  std::thread t([&] { EXPECT_FALSE(q.pop().has_value()); });
  std::this_thread::sleep_for(10ms);
  q.close();
  t.join();
}

TEST(BlockingQueueTest, CrossThreadDelivery) {
  BlockingQueue<int> q;
  std::thread producer([&] {
    for (int i = 0; i < 100; ++i) EXPECT_TRUE(q.push(i));
  });
  for (int i = 0; i < 100; ++i) EXPECT_EQ(*q.pop(), i);
  producer.join();
}

// --- NetworkLink ----------------------------------------------------------------

TEST(NetworkLinkTest, DeliversAllWithoutFaults) {
  std::mutex mu;
  std::vector<int> received;
  LinkConfig cfg;
  cfg.base_delay = 100us;
  NetworkLink link(cfg, [&](std::vector<std::byte> p) {
    const std::lock_guard<std::mutex> lk(mu);
    received.push_back(static_cast<int>(p[0]));
  });
  for (int i = 0; i < 50; ++i)
    link.send({std::byte{static_cast<unsigned char>(i)}});
  const auto deadline = std::chrono::steady_clock::now() + 2s;
  while (std::chrono::steady_clock::now() < deadline) {
    const std::lock_guard<std::mutex> lk(mu);
    if (received.size() == 50) break;
  }
  link.shutdown();
  const std::lock_guard<std::mutex> lk(mu);
  ASSERT_EQ(received.size(), 50u);
  // Equal delays preserve FIFO.
  for (int i = 0; i < 50; ++i) EXPECT_EQ(received[i], i);
}

TEST(NetworkLinkTest, LossDropsRoughlyTheConfiguredFraction) {
  std::atomic<int> received{0};
  LinkConfig cfg;
  cfg.base_delay = 10us;
  cfg.loss_probability = 0.5;
  cfg.seed = 9;
  NetworkLink link(cfg, [&](std::vector<std::byte>) { received++; });
  for (int i = 0; i < 2000; ++i) link.send({std::byte{1}});
  std::this_thread::sleep_for(200ms);
  link.shutdown();
  EXPECT_GT(received.load(), 800);
  EXPECT_LT(received.load(), 1200);
  EXPECT_EQ(link.packets_sent(), 2000u);
  EXPECT_GT(link.packets_lost(), 800u);
}

TEST(NetworkLinkTest, DuplicationDeliversExtras) {
  std::atomic<int> received{0};
  LinkConfig cfg;
  cfg.base_delay = 10us;
  cfg.duplicate_probability = 1.0;
  NetworkLink link(cfg, [&](std::vector<std::byte>) { received++; });
  for (int i = 0; i < 100; ++i) link.send({std::byte{1}});
  std::this_thread::sleep_for(200ms);
  link.shutdown();
  EXPECT_EQ(received.load(), 200);
}

TEST(NetworkLinkTest, DownLinkLosesEverything) {
  std::atomic<int> received{0};
  LinkConfig cfg;
  cfg.base_delay = 10us;
  NetworkLink link(cfg, [&](std::vector<std::byte>) { received++; });
  link.set_down(true);
  for (int i = 0; i < 100; ++i) link.send({std::byte{1}});
  std::this_thread::sleep_for(50ms);
  EXPECT_EQ(received.load(), 0);
  link.set_down(false);
  link.send({std::byte{2}});
  std::this_thread::sleep_for(100ms);
  link.shutdown();
  EXPECT_EQ(received.load(), 1);
}

// --- ReliableChannel -------------------------------------------------------------

class ReliableChannelTest : public ::testing::Test {
 protected:
  struct Collected {
    std::mutex mu;
    std::vector<std::uint64_t> seqs;
    void add(const Frame& f) {
      const std::lock_guard<std::mutex> lk(mu);
      seqs.push_back(std::get<DataFrame>(f).msg.seq);
    }
    std::size_t size() {
      const std::lock_guard<std::mutex> lk(mu);
      return seqs.size();
    }
  };

  static bool wait_for(Collected& c, std::size_t n,
                       std::chrono::milliseconds timeout = 5000ms) {
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    while (std::chrono::steady_clock::now() < deadline) {
      if (c.size() >= n) return true;
      std::this_thread::sleep_for(1ms);
    }
    return false;
  }
};

TEST_F(ReliableChannelTest, ExactlyOnceInOrderOverLossyLink) {
  Collected at_b;
  ReliableConfig cfg;
  cfg.forward.base_delay = 50us;
  cfg.forward.loss_probability = 0.3;
  cfg.forward.duplicate_probability = 0.1;
  cfg.forward.reorder_probability = 0.2;
  cfg.forward.seed = 42;
  cfg.backward = cfg.forward;
  cfg.backward.seed = 43;
  cfg.retransmit_timeout = 1ms;

  ReliableChannel channel(
      cfg, [](Frame) {}, [&](Frame f) { at_b.add(f); });
  const int n = 500;
  for (int i = 0; i < n; ++i)
    channel.send_from_a(data_frame(1, 100 + i, static_cast<std::uint64_t>(i)));

  ASSERT_TRUE(wait_for(at_b, n));
  channel.shutdown();
  ASSERT_EQ(at_b.seqs.size(), static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i)
    EXPECT_EQ(at_b.seqs[static_cast<std::size_t>(i)],
              static_cast<std::uint64_t>(i));
  EXPECT_GT(channel.retransmissions(), 0u);
}

TEST_F(ReliableChannelTest, BothDirectionsIndependent) {
  Collected at_a, at_b;
  ReliableConfig cfg;
  cfg.forward.base_delay = 20us;
  cfg.backward.base_delay = 20us;
  cfg.retransmit_timeout = 1ms;
  ReliableChannel channel(
      cfg, [&](Frame f) { at_a.add(f); }, [&](Frame f) { at_b.add(f); });
  for (int i = 0; i < 50; ++i) {
    channel.send_from_a(data_frame(1, i + 1, static_cast<std::uint64_t>(i)));
    channel.send_from_b(data_frame(2, i + 1, static_cast<std::uint64_t>(i)));
  }
  EXPECT_TRUE(wait_for(at_b, 50));
  EXPECT_TRUE(wait_for(at_a, 50));
  channel.shutdown();
}

TEST_F(ReliableChannelTest, SurvivesTransientOutage) {
  Collected at_b;
  ReliableConfig cfg;
  cfg.forward.base_delay = 20us;
  cfg.backward.base_delay = 20us;
  cfg.retransmit_timeout = 2ms;
  ReliableChannel channel(
      cfg, [](Frame) {}, [&](Frame f) { at_b.add(f); });

  for (int i = 0; i < 10; ++i)
    channel.send_from_a(data_frame(1, i + 1, static_cast<std::uint64_t>(i)));
  ASSERT_TRUE(wait_for(at_b, 10));

  // Link failure: everything sent during the outage is physically lost...
  channel.set_down(true);
  for (int i = 10; i < 20; ++i)
    channel.send_from_a(data_frame(1, i + 1, static_cast<std::uint64_t>(i)));
  std::this_thread::sleep_for(20ms);
  EXPECT_EQ(at_b.size(), 10u);

  // ...but retransmission recovers it all, in order, once the link is back.
  channel.set_down(false);
  ASSERT_TRUE(wait_for(at_b, 20));
  channel.shutdown();
  for (int i = 0; i < 20; ++i)
    EXPECT_EQ(at_b.seqs[static_cast<std::size_t>(i)],
              static_cast<std::uint64_t>(i));
}

TEST_F(ReliableChannelTest, MixedFrameTypesArriveInSendOrder) {
  std::mutex mu;
  std::vector<std::size_t> kinds;
  ReliableConfig cfg;
  cfg.forward.base_delay = 20us;
  cfg.forward.reorder_probability = 0.5;
  cfg.retransmit_timeout = 1ms;
  ReliableChannel channel(
      cfg, [](Frame) {},
      [&](Frame f) {
        const std::lock_guard<std::mutex> lk(mu);
        kinds.push_back(f.index());
      });
  channel.send_from_a(data_frame(1, 10, 0));
  channel.send_from_a(SilenceFrame{WireId(1), VirtualTime(100)});
  channel.send_from_a(ProbeFrame{WireId(1)});
  channel.send_from_a(StabilityFrame{WireId(1), VirtualTime(50)});
  const auto deadline = std::chrono::steady_clock::now() + 5s;
  for (;;) {
    {
      const std::lock_guard<std::mutex> lk(mu);
      if (kinds.size() == 4) break;
    }
    ASSERT_LT(std::chrono::steady_clock::now(), deadline);
    std::this_thread::sleep_for(1ms);
  }
  channel.shutdown();
  const std::vector<std::size_t> expected{0, 1, 2, 4};
  EXPECT_EQ(kinds, expected);
}

}  // namespace
}  // namespace tart::transport
