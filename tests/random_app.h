// Seeded random application generator shared by the property suites: a
// layered DAG of stream operators with random estimators, external inputs
// on the first layer, and external outputs on every sink, plus a random
// scripted workload. Everything derives deterministically from the seed.
#pragma once

#include <gtest/gtest.h>

#include "apps/streamops.h"
#include "core/runtime.h"
#include "estimator/estimator.h"

namespace tart::core::proptest {

struct GeneratedApp {
  Topology topo;
  std::vector<WireId> inputs;
  std::vector<WireId> outputs;
  std::vector<ComponentId> components;
};

/// Builds a random 3-layer DAG of stream operators from the seed.
GeneratedApp generate_app(std::uint64_t seed) {
  Rng rng(seed);
  GeneratedApp app;

  auto add_random_component = [&](int index) {
    const std::string name = "op" + std::to_string(index);
    ComponentId id;
    switch (rng.bounded(4)) {
      case 0: {
        const auto scale = rng.uniform_int(1, 3);
        const auto offset = rng.uniform_int(-5, 5);
        id = app.topo.add(name, [scale, offset] {
          return std::make_unique<apps::MapOperator>(scale, offset);
        });
        break;
      }
      case 1: {
        const auto hi = rng.uniform_int(500, 2000);
        id = app.topo.add(name, [hi] {
          return std::make_unique<apps::FilterOperator>(-1000, hi);
        });
        break;
      }
      case 2: {
        const auto width = rng.uniform_int(50'000, 500'000);
        id = app.topo.add(name, [width] {
          return std::make_unique<apps::TumblingWindowSum>(
              TickDuration(width));
        });
        break;
      }
      default:
        id = app.topo.add(name, [] {
          return std::make_unique<apps::DeduplicateOperator>();
        });
    }
    // Random estimator: constant or per-block linear.
    if (rng.chance(0.5)) {
      const auto us = rng.uniform_int(5, 200);
      app.topo.set_estimator(id, [us] {
        return std::make_unique<estimator::ConstantEstimator>(
            TickDuration::micros(us));
      });
    } else {
      const auto per_block = static_cast<double>(rng.uniform_int(500, 40000));
      app.topo.set_estimator(id, [per_block] {
        return std::make_unique<estimator::LinearEstimator>(
            std::vector<double>{1000.0, per_block, per_block / 2});
      });
    }
    app.components.push_back(id);
    return id;
  };

  // Layered construction; every layer-0 component gets an external input,
  // every later component 1-2 inputs from random earlier components.
  std::vector<std::vector<ComponentId>> layers;
  int index = 0;
  for (int layer = 0; layer < 3; ++layer) {
    const auto width = rng.uniform_int(1, 3);
    layers.emplace_back();
    for (int i = 0; i < width; ++i) {
      const ComponentId id = add_random_component(index++);
      layers.back().push_back(id);
      if (layer == 0) {
        app.inputs.push_back(app.topo.external_input(id, PortId(0)));
      } else {
        const auto fan_in = rng.uniform_int(1, 2);
        for (int f = 0; f < fan_in; ++f) {
          const auto& from_layer =
              layers[rng.bounded(static_cast<std::uint64_t>(layer))];
          const ComponentId from =
              from_layer[rng.bounded(from_layer.size())];
          app.topo.connect(from, PortId(0), id, PortId(0));
        }
      }
    }
  }
  // Observe every component that has no downstream consumer; also make
  // sure every component has at least one outgoing wire.
  for (const ComponentId c : app.components) {
    if (app.topo.outputs_of(c).empty())
      app.outputs.push_back(app.topo.external_output(c, PortId(0)));
  }
  return app;
}

void feed_random_workload(Runtime& rt, const GeneratedApp& app,
                          std::uint64_t seed) {
  Rng rng(seed * 31 + 7);
  for (const WireId in : app.inputs) {
    std::int64_t vt = 1000;
    const auto count = rng.uniform_int(20, 60);
    for (int i = 0; i < count; ++i) {
      vt += rng.uniform_int(1000, 200'000);
      rt.inject_at(in, VirtualTime(vt),
                   apps::event(rng.uniform_int(0, 6),
                               rng.uniform_int(-50, 900)));
    }
  }
}

}  // namespace tart::core::proptest
