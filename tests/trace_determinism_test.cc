// Flight-recorder determinism harness (the checkable form of §II.A/§II.D):
//
//   - two runs of a random app over the same scripted input log must
//     produce byte-identical trace files, and the differ must agree;
//   - a run with mid-stream engine crashes must replay to a trace that is
//     identical to the failure-free reference modulo documented stutter
//     (recovery-mode diff);
//   - injected nondeterminism (the test-only vt-skew hook) must be caught
//     by the strict differ, naming the offending component;
//   - the recorder must not drop events under the harness workloads
//     (asserted through MetricsSnapshot).
#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <thread>

#include "obs/prof.h"
#include "obs/sampler.h"
#include "random_app.h"
#include "trace/diff.h"
#include "trace/trace_file.h"

namespace tart::core {
namespace {

using namespace std::chrono_literals;

std::string temp_trace_path(const std::string& tag) {
  return (std::filesystem::temp_directory_path() /
          ("tart_trace_" + tag + ".trc"))
      .string();
}

std::vector<char> file_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

std::map<ComponentId, EngineId> two_engine_placement(
    const proptest::GeneratedApp& app) {
  std::map<ComponentId, EngineId> placement;
  for (std::size_t i = 0; i < app.components.size(); ++i)
    placement[app.components[i]] = EngineId(i % 2 == 0 ? 0 : 1);
  return placement;
}

struct PlannedInjection {
  WireId wire;
  VirtualTime vt;
  Payload payload;
};

/// Mirrors proptest::feed_random_workload so it can be chunked.
std::vector<PlannedInjection> plan_workload(const proptest::GeneratedApp& app,
                                            std::uint64_t seed) {
  Rng rng(seed * 31 + 7);
  std::vector<PlannedInjection> plan;
  for (const WireId in : app.inputs) {
    std::int64_t vt = 1000;
    const auto count = rng.uniform_int(20, 60);
    for (int i = 0; i < count; ++i) {
      vt += rng.uniform_int(1000, 200'000);
      plan.push_back({in, VirtualTime(vt),
                      apps::event(rng.uniform_int(0, 6),
                                  rng.uniform_int(-50, 900))});
    }
  }
  return plan;
}

/// Runs the seeded app with tracing to `path`; returns total metrics
/// sampled while the runtime was still live.
MetricsSnapshot run_traced(std::uint64_t seed, const std::string& path,
                           RuntimeConfig config) {
  proptest::GeneratedApp app = proptest::generate_app(seed);
  config.trace.enabled = true;
  config.trace.path = path;
  Runtime rt(app.topo, two_engine_placement(app), std::move(config));
  rt.start();
  for (const auto& inj : plan_workload(app, seed))
    rt.inject_at(inj.wire, inj.vt, inj.payload);
  EXPECT_TRUE(rt.drain(60s)) << "seed " << seed;
  const MetricsSnapshot m = rt.total_metrics();
  rt.stop();  // finalizes the recorder and writes the file
  return m;
}

TEST(TraceDeterminism, SameSeedYieldsByteIdenticalTraces) {
  for (const std::uint64_t seed : {3ull, 7ull, 11ull}) {
    const std::string pa = temp_trace_path("a" + std::to_string(seed));
    const std::string pb = temp_trace_path("b" + std::to_string(seed));
    const MetricsSnapshot ma = run_traced(seed, pa, RuntimeConfig{});
    const MetricsSnapshot mb = run_traced(seed, pb, RuntimeConfig{});

    // The recorder must have kept everything: a dropped event would
    // silently punch a hole in the determinism check.
    EXPECT_GT(ma.trace_events_recorded, 0u);
    EXPECT_EQ(ma.trace_events_dropped, 0u);
    EXPECT_EQ(mb.trace_events_dropped, 0u);

    EXPECT_EQ(file_bytes(pa), file_bytes(pb))
        << "trace files differ for seed " << seed;

    const auto ta = trace::TraceReader::read_file(pa);
    const auto tb = trace::TraceReader::read_file(pb);
    const auto diff = trace::diff_traces(ta, tb);
    EXPECT_TRUE(diff.identical()) << diff.divergence->describe();
    EXPECT_EQ(diff.compared, ta.total_events());

    std::remove(pa.c_str());
    std::remove(pb.c_str());
  }
}

TEST(TraceDeterminism, CrashRecoveryReplaysToPrefixIdenticalTrace) {
  for (const std::uint64_t seed : {2ull, 5ull, 9ull}) {
    RuntimeConfig config;
    config.checkpoint.every_n_messages = 4;

    const std::string ref_path = temp_trace_path("ref" + std::to_string(seed));
    run_traced(seed, ref_path, config);

    // Same workload with a seed-derived crash/recover schedule.
    const std::string crashed_path =
        temp_trace_path("crash" + std::to_string(seed));
    proptest::GeneratedApp app = proptest::generate_app(seed);
    RuntimeConfig crash_config = config;
    crash_config.trace.enabled = true;
    crash_config.trace.path = crashed_path;
    Runtime rt(app.topo, two_engine_placement(app), std::move(crash_config));
    rt.start();
    const auto plan = plan_workload(app, seed);
    Rng chaos(seed ^ 0xC4A5u);
    std::set<std::size_t> crash_points;
    const int crashes = static_cast<int>(chaos.uniform_int(1, 2));
    for (int i = 0; i < crashes; ++i)
      crash_points.insert(chaos.bounded(plan.size()));
    for (std::size_t i = 0; i < plan.size(); ++i) {
      rt.inject_at(plan[i].wire, plan[i].vt, plan[i].payload);
      if (crash_points.contains(i)) {
        std::this_thread::sleep_for(5ms);
        const EngineId victim(static_cast<std::uint32_t>(chaos.bounded(2)));
        rt.crash_engine(victim);
        rt.recover_engine(victim);
      }
    }
    ASSERT_TRUE(rt.drain(60s)) << "seed " << seed;
    const MetricsSnapshot m = rt.total_metrics();
    EXPECT_EQ(m.trace_events_dropped, 0u);
    rt.stop();

    const auto reference = trace::TraceReader::read_file(ref_path);
    const auto recovered = trace::TraceReader::read_file(crashed_path);

    // Strict comparison must reject the crashed run (it contains at least
    // the crash/recovery markers) ...
    EXPECT_FALSE(trace::diff_traces(reference, recovered).identical())
        << "seed " << seed;

    // ... while the recovery-mode diff must find nothing beyond the
    // documented stutter: every dispatch decision replays identically.
    const auto diff = trace::diff_traces(reference, recovered,
                                         {.allow_stutter = true});
    EXPECT_TRUE(diff.identical())
        << "seed " << seed << "\n" << diff.divergence->describe();
    EXPECT_GT(diff.skipped, 0u);  // crash markers et al. were tallied

    std::remove(ref_path.c_str());
    std::remove(crashed_path.c_str());
  }
}

TEST(TraceDeterminism, InjectedNondeterminismIsCaughtAndNamed) {
  const std::uint64_t seed = 4;
  const std::string pa = temp_trace_path("clean");
  const std::string pb = temp_trace_path("skewed");
  run_traced(seed, pa, RuntimeConfig{});

  proptest::GeneratedApp app = proptest::generate_app(seed);
  const ComponentId victim = app.components[app.components.size() / 2];
  RuntimeConfig skewed;
  skewed.trace.debug_vt_skew[victim] = 1;  // one tick: trace-layer only
  run_traced(seed, pb, skewed);

  const auto ta = trace::TraceReader::read_file(pa);
  const auto tb = trace::TraceReader::read_file(pb);
  const auto diff = trace::diff_traces(ta, tb);
  ASSERT_FALSE(diff.identical());
  EXPECT_EQ(diff.divergence->component, victim);
  // The report names the component and the virtual times that forked.
  const std::string d = diff.divergence->describe();
  EXPECT_NE(d.find('#'), std::string::npos);
  EXPECT_NE(d.find("vt="), std::string::npos);

  std::remove(pa.c_str());
  std::remove(pb.c_str());
}

// The telemetry layer is a read-only observer: a run with the background
// JSONL sampler attached (aggressive 1ms interval) and every registry
// histogram live must trace byte-identically to a bare run. If any
// instrumentation path ever feeds back into scheduling (a lock on the
// dispatch path, a wall-clock read that shifts a virtual time), this is
// the test that goes red.
TEST(TraceDeterminism, SamplerAndInstrumentationDoNotPerturbTraces) {
  for (const std::uint64_t seed : {3ull, 8ull}) {
    const std::string bare = temp_trace_path("bare" + std::to_string(seed));
    run_traced(seed, bare, RuntimeConfig{});

    const std::string observed =
        temp_trace_path("obs" + std::to_string(seed));
    const std::string jsonl =
        (std::filesystem::temp_directory_path() /
         ("tart_sampler_" + std::to_string(seed) + ".jsonl"))
            .string();
    std::remove(jsonl.c_str());
    {
      proptest::GeneratedApp app = proptest::generate_app(seed);
      RuntimeConfig config;
      config.trace.enabled = true;
      config.trace.path = observed;
      Runtime rt(app.topo, two_engine_placement(app), std::move(config));
      obs::Sampler sampler(obs::Sampler::Options{jsonl, 1}, &rt.registry(),
                           [&rt] { return rt.total_metrics(); });
      ASSERT_TRUE(sampler.start());
      rt.start();
      for (const auto& inj : plan_workload(app, seed))
        rt.inject_at(inj.wire, inj.vt, inj.payload);
      ASSERT_TRUE(rt.drain(60s)) << "seed " << seed;
      sampler.stop();
      EXPECT_GT(sampler.samples_written(), 0u);
      rt.stop();
    }

    EXPECT_EQ(file_bytes(bare), file_bytes(observed))
        << "telemetry perturbed the trace for seed " << seed;

    // The sampler wrote well-formed JSONL: every line is one object with
    // the timestamp and the scalar block.
    std::ifstream in(jsonl);
    std::string line;
    std::size_t lines = 0;
    while (std::getline(in, line)) {
      ++lines;
      EXPECT_EQ(line.front(), '{') << line;
      EXPECT_EQ(line.back(), '}') << line;
      EXPECT_NE(line.find("\"ts_ms\":"), std::string::npos) << line;
      EXPECT_NE(line.find("\"metrics\":"), std::string::npos) << line;
    }
    EXPECT_GT(lines, 0u);

    std::remove(bare.c_str());
    std::remove(observed.c_str());
    std::remove(jsonl.c_str());
  }
}

// PR 5's stall-forensics events (kStallResolved/kStallBlame, plus the wall
// stamp riding kSilencePromise's aux) are diagnostic-class: they carry
// real-time measurements, so they may differ between seeded runs — but
// they must never leak into the scheduling stream, and the default
// (scheduling-only) trace must not contain them at all.
TEST(TraceDeterminism, ForensicsEventsStayOutOfTheSchedulingStream) {
  for (const std::uint64_t seed : {3ull, 8ull}) {
    const std::string sched = temp_trace_path("sched" + std::to_string(seed));
    run_traced(seed, sched, RuntimeConfig{});

    RuntimeConfig diag_config;
    diag_config.trace.categories =
        static_cast<std::uint32_t>(trace::TraceCategory::kScheduling) |
        static_cast<std::uint32_t>(trace::TraceCategory::kDiagnostic);
    const std::string diag = temp_trace_path("diag" + std::to_string(seed));
    run_traced(seed, diag, diag_config);

    const auto ts = trace::TraceReader::read_file(sched);
    const auto td = trace::TraceReader::read_file(diag);

    // Scheduling-only trace: no diagnostic kinds at all.
    for (const auto& ct : ts.components)
      for (const auto& e : ct.events)
        EXPECT_EQ(trace::category_of(e.kind),
                  trace::TraceCategory::kScheduling)
            << trace::name_of(e.kind);

    // The differ ignores diagnostics by design, so the diagnostic run must
    // make exactly the scheduling decisions of the bare run. (Lineage is
    // excluded here: enabling it registers the synthetic edge stream, which
    // changes the component set — LineageDoesNotPerturbScheduling covers
    // that case via category projections.)
    const auto diff = trace::diff_traces(ts, td);
    EXPECT_TRUE(diff.identical())
        << "seed " << seed << "\n" << diff.divergence->describe();

    std::remove(sched.c_str());
    std::remove(diag.c_str());
  }
}

// Lineage events carry wall-clock stamps, so two lineage-enabled runs are
// NOT byte-identical — but the scheduling-category projection of each must
// be. This is the acceptance form of "lineage does not perturb
// determinism": filter_categories(t, kScheduling) strips the wall-stamped
// lineage/diagnostic records (and rebases per-component seqs), and the
// projections of two same-seed kAll runs must encode to identical bytes.
TEST(TraceDeterminism, LineageDoesNotPerturbScheduling) {
  for (const std::uint64_t seed : {3ull, 8ull}) {
    RuntimeConfig all_config;
    all_config.trace.categories =
        static_cast<std::uint32_t>(trace::TraceCategory::kAll);

    const std::string pa = temp_trace_path("lina" + std::to_string(seed));
    const std::string pb = temp_trace_path("linb" + std::to_string(seed));
    run_traced(seed, pa, all_config);
    run_traced(seed, pb, all_config);

    const auto ta = trace::TraceReader::read_file(pa);
    const auto tb = trace::TraceReader::read_file(pb);

    // Lineage was actually recorded (otherwise this test proves nothing).
    std::size_t lineage_events = 0;
    for (const auto& ct : ta.components)
      for (const auto& e : ct.events)
        if (trace::category_of(e.kind) == trace::TraceCategory::kLineage)
          ++lineage_events;
    EXPECT_GT(lineage_events, 0u) << "seed " << seed;

    // Scheduling projections are byte-identical across the two runs.
    const auto proj_a = trace::filter_categories(
        ta, static_cast<std::uint32_t>(trace::TraceCategory::kScheduling));
    const auto proj_b = trace::filter_categories(
        tb, static_cast<std::uint32_t>(trace::TraceCategory::kScheduling));
    EXPECT_EQ(trace::encode_trace(proj_a), trace::encode_trace(proj_b))
        << "scheduling projection diverged for seed " << seed;

    // The differ (which itself skips non-scheduling events) agrees on the
    // full traces too: same components, same decisions.
    const auto diff = trace::diff_traces(ta, tb);
    EXPECT_TRUE(diff.identical())
        << "seed " << seed << "\n" << diff.divergence->describe();

    std::remove(pa.c_str());
    std::remove(pb.c_str());
  }
}

// The hot-path span profiler is the same kind of read-only observer as the
// sampler: it reads wall clocks inside dispatch, decode, and flush paths
// but never feeds a scheduling decision. A run with profiling enabled must
// trace byte-identically to a run with the runtime kill switch off — the
// non-interference contract for TART_PROF_SPAN in the hottest code.
TEST(TraceDeterminism, ProfilingOnVsOffTracesAreByteIdentical) {
  for (const std::uint64_t seed : {3ull, 8ull}) {
    const std::string off = temp_trace_path("profoff" + std::to_string(seed));
    obs::prof::set_enabled(false);
    run_traced(seed, off, RuntimeConfig{});

    const std::string on = temp_trace_path("profon" + std::to_string(seed));
    obs::prof::set_enabled(true);
    run_traced(seed, on, RuntimeConfig{});

#if defined(TART_PROF_ENABLED) && TART_PROF_ENABLED
    // The profiled run actually recorded spans (otherwise this proves
    // nothing): runner.dispatch fires once per delivered message.
    bool saw_dispatch = false;
    for (const auto& s : obs::prof::snapshot().sites)
      if (s.name == "runner.dispatch" && s.count > 0) saw_dispatch = true;
    EXPECT_TRUE(saw_dispatch) << "seed " << seed;
#endif

    EXPECT_EQ(file_bytes(off), file_bytes(on))
        << "profiling perturbed the trace for seed " << seed;

    std::remove(off.c_str());
    std::remove(on.c_str());
  }
}

TEST(TraceDeterminism, DisabledTracingWritesNothing) {
  proptest::GeneratedApp app = proptest::generate_app(1);
  Runtime rt(app.topo, two_engine_placement(app), RuntimeConfig{});
  EXPECT_EQ(rt.trace_recorder(), nullptr);
  rt.start();
  for (const auto& inj : plan_workload(app, 1))
    rt.inject_at(inj.wire, inj.vt, inj.payload);
  ASSERT_TRUE(rt.drain(60s));
  const MetricsSnapshot m = rt.total_metrics();
  EXPECT_EQ(m.trace_events_recorded, 0u);
  rt.stop();
}

}  // namespace
}  // namespace tart::core
