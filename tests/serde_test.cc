// Unit tests for the checkpoint serialization layer.
#include <gtest/gtest.h>

#include <limits>
#include <map>
#include <string>
#include <vector>

#include "serde/archive.h"

namespace tart::serde {
namespace {

TEST(ArchiveTest, PrimitivesRoundTrip) {
  Writer w;
  w.write_u8(0xAB);
  w.write_u32(0xDEADBEEF);
  w.write_u64(0x0123456789ABCDEFULL);
  w.write_bool(true);
  w.write_bool(false);
  w.write_double(3.14159);

  Reader r(w.bytes());
  EXPECT_EQ(r.read_u8(), 0xAB);
  EXPECT_EQ(r.read_u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.read_u64(), 0x0123456789ABCDEFULL);
  EXPECT_TRUE(r.read_bool());
  EXPECT_FALSE(r.read_bool());
  EXPECT_DOUBLE_EQ(r.read_double(), 3.14159);
  EXPECT_TRUE(r.at_end());
}

TEST(ArchiveTest, VarintBoundaries) {
  const std::vector<std::uint64_t> values = {
      0, 1, 127, 128, 16383, 16384, 1ULL << 32,
      std::numeric_limits<std::uint64_t>::max()};
  Writer w;
  for (const auto v : values) w.write_varint(v);
  Reader r(w.bytes());
  for (const auto v : values) EXPECT_EQ(r.read_varint(), v);
  EXPECT_TRUE(r.at_end());
}

TEST(ArchiveTest, VarintIsCompactForSmallValues) {
  Writer w;
  w.write_varint(5);
  EXPECT_EQ(w.size(), 1u);
  w.write_varint(300);
  EXPECT_EQ(w.size(), 3u);  // 1 + 2
}

TEST(ArchiveTest, SignedVarintRoundTrip) {
  const std::vector<std::int64_t> values = {
      0, -1, 1, -64, 63, -65, 1000000, -1000000,
      std::numeric_limits<std::int64_t>::min(),
      std::numeric_limits<std::int64_t>::max()};
  Writer w;
  for (const auto v : values) w.write_svarint(v);
  Reader r(w.bytes());
  for (const auto v : values) EXPECT_EQ(r.read_svarint(), v);
}

TEST(ArchiveTest, StringsIncludingEmbeddedNul) {
  Writer w;
  w.write_string("");
  w.write_string("hello");
  w.write_string(std::string("a\0b", 3));
  Reader r(w.bytes());
  EXPECT_EQ(r.read_string(), "");
  EXPECT_EQ(r.read_string(), "hello");
  EXPECT_EQ(r.read_string(), std::string("a\0b", 3));
}

TEST(ArchiveTest, VirtualTimeRoundTrip) {
  Writer w;
  w.write_vt(VirtualTime(-1));
  w.write_vt(VirtualTime(233000));
  w.write_vt(VirtualTime::infinity());
  Reader r(w.bytes());
  EXPECT_EQ(r.read_vt(), VirtualTime(-1));
  EXPECT_EQ(r.read_vt(), VirtualTime(233000));
  EXPECT_TRUE(r.read_vt().is_infinite());
}

TEST(ArchiveTest, ContainersRoundTrip) {
  Writer w;
  const std::vector<std::int64_t> ints{1, -2, 3};
  const std::map<std::string, std::int64_t> counts{{"the", 3}, {"cat", 1}};
  encode_value(w, ints);
  encode_value(w, counts);

  Reader r(w.bytes());
  std::vector<std::int64_t> ints2;
  std::map<std::string, std::int64_t> counts2;
  decode_value(r, ints2);
  decode_value(r, counts2);
  EXPECT_EQ(ints2, ints);
  EXPECT_EQ(counts2, counts);
}

TEST(ArchiveTest, UnderrunThrows) {
  Writer w;
  w.write_u32(7);
  Reader r(w.bytes());
  (void)r.read_u32();
  EXPECT_THROW((void)r.read_u8(), DecodeError);
}

TEST(ArchiveTest, TruncatedStringThrows) {
  Writer w;
  w.write_varint(100);  // claims 100 bytes follow
  Reader r(w.bytes());
  EXPECT_THROW((void)r.read_string(), DecodeError);
}

TEST(ArchiveTest, MalformedVarintThrows) {
  std::vector<std::byte> bytes(11, std::byte{0xFF});  // never terminates
  Reader r(bytes);
  EXPECT_THROW((void)r.read_varint(), DecodeError);
}

TEST(ArchiveTest, DeterministicEncoding) {
  // Identical logical state must yield identical bytes (the property
  // checkpoint-identity tests rely on).
  const std::map<std::string, std::int64_t> m{{"b", 2}, {"a", 1}, {"c", 3}};
  Writer w1, w2;
  encode_value(w1, m);
  encode_value(w2, m);
  EXPECT_EQ(w1.bytes(), w2.bytes());
  EXPECT_EQ(fingerprint(w1.bytes()), fingerprint(w2.bytes()));
}

TEST(ArchiveTest, FingerprintDetectsDifference) {
  Writer w1, w2;
  w1.write_string("state-a");
  w2.write_string("state-b");
  EXPECT_NE(fingerprint(w1.bytes()), fingerprint(w2.bytes()));
}

TEST(ArchiveTest, BytesRoundTrip) {
  Writer w;
  std::vector<std::byte> blob{std::byte{1}, std::byte{2}, std::byte{255}};
  w.write_bytes(blob);
  Reader r(w.bytes());
  EXPECT_EQ(r.read_bytes(), blob);
}

TEST(ArchiveTest, TakeMovesBuffer) {
  Writer w;
  w.write_u8(1);
  auto bytes = w.take();
  EXPECT_EQ(bytes.size(), 1u);
}

TEST(ArchiveTest, RemainingCountsDown) {
  Writer w;
  w.write_u32(5);
  Reader r(w.bytes());
  EXPECT_EQ(r.remaining(), 4u);
  (void)r.read_u8();
  EXPECT_EQ(r.remaining(), 3u);
}

}  // namespace
}  // namespace tart::serde
