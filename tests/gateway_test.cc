// HTTP ingress gateway tests: the incremental parser (incl. truncation and
// mutation fuzz, mirroring tests/net_frame_test.cc), the non-throwing
// Runtime::try_inject* surface, and the live Gateway endpoints over real
// sockets — ack-implies-durable, typed rejections, admission control,
// long-poll output drain, and pipelining.
#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "apps/wordcount.h"
#include "common/rng.h"
#include "core/runtime.h"
#include "gateway/gateway.h"
#include "gateway/http.h"
#include "obs/exposition.h"
#include "gateway/http_client.h"
#include "net/topologies.h"

using namespace tart;
using namespace std::chrono_literals;
using gateway::HttpError;
using gateway::HttpParser;
using gateway::HttpRequest;

namespace {

// --- HttpParser basics ------------------------------------------------------

std::optional<HttpRequest> parse_one(std::string_view bytes) {
  HttpParser p;
  p.feed(bytes);
  return p.next();
}

TEST(HttpParserTest, SimpleGet) {
  const auto req = parse_one("GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n");
  ASSERT_TRUE(req.has_value());
  EXPECT_EQ(req->method, "GET");
  EXPECT_EQ(req->path, "/healthz");
  EXPECT_TRUE(req->query.empty());
  EXPECT_TRUE(req->keep_alive);
  ASSERT_NE(req->header("host"), nullptr);  // case-insensitive
  EXPECT_EQ(*req->header("HOST"), "x");
}

TEST(HttpParserTest, PostWithBodyAndQuery) {
  const auto req = parse_one(
      "POST /inject/in?vt=42&x=a%20b HTTP/1.1\r\n"
      "Content-Length: 5\r\n\r\nhello");
  ASSERT_TRUE(req.has_value());
  EXPECT_EQ(req->method, "POST");
  EXPECT_EQ(req->path, "/inject/in");
  EXPECT_EQ(req->body, "hello");
  const auto params = gateway::parse_query(req->query);
  EXPECT_EQ(gateway::query_param(params, "vt"), "42");
  EXPECT_EQ(gateway::query_param(params, "x"), "a b");
  EXPECT_FALSE(gateway::query_param(params, "absent").has_value());
}

TEST(HttpParserTest, IncrementalByteByByteFeeding) {
  const std::string wire =
      "POST /p HTTP/1.1\r\nContent-Length: 3\r\nA: b\r\n\r\nxyz";
  HttpParser p;
  for (std::size_t i = 0; i + 1 < wire.size(); ++i) {
    p.feed(std::string_view(wire).substr(i, 1));
    EXPECT_FALSE(p.next().has_value()) << "completed early at byte " << i;
  }
  p.feed(std::string_view(wire).substr(wire.size() - 1));
  const auto req = p.next();
  ASSERT_TRUE(req.has_value());
  EXPECT_EQ(req->body, "xyz");
}

TEST(HttpParserTest, PipelinedRequestsParseInOrder) {
  HttpParser p;
  p.feed(
      "POST /a HTTP/1.1\r\nContent-Length: 2\r\n\r\nAA"
      "GET /b HTTP/1.1\r\n\r\n"
      "POST /c HTTP/1.1\r\nContent-Length: 1\r\n\r\nC");
  EXPECT_EQ(p.next()->path, "/a");
  EXPECT_EQ(p.next()->path, "/b");
  EXPECT_EQ(p.next()->body, "C");
  EXPECT_FALSE(p.next().has_value());
}

TEST(HttpParserTest, KeepAliveDefaults) {
  EXPECT_TRUE(parse_one("GET / HTTP/1.1\r\n\r\n")->keep_alive);
  EXPECT_FALSE(parse_one("GET / HTTP/1.0\r\n\r\n")->keep_alive);
  EXPECT_FALSE(
      parse_one("GET / HTTP/1.1\r\nConnection: close\r\n\r\n")->keep_alive);
  EXPECT_TRUE(
      parse_one("GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n")
          ->keep_alive);
}

TEST(HttpParserTest, LfOnlyLineEndingsAccepted) {
  const auto req = parse_one("GET /x HTTP/1.1\nHost: y\n\n");
  ASSERT_TRUE(req.has_value());
  EXPECT_EQ(req->path, "/x");
}

int error_status(std::string_view bytes) {
  HttpParser p;
  p.feed(bytes);
  try {
    (void)p.next();
  } catch (const HttpError& e) {
    return e.status();
  }
  return 0;
}

TEST(HttpParserTest, TypedErrors) {
  EXPECT_EQ(error_status("NOT A REQUEST LINE\r\n\r\n"), 400);
  EXPECT_EQ(error_status("GET /x HTTP/2.0\r\n\r\n"), 505);
  EXPECT_EQ(error_status("GET /x SPDY/1\r\n\r\n"), 400);
  EXPECT_EQ(error_status("GET /x HTTP/1.1\r\nBad Header\r\n\r\n"), 400);
  EXPECT_EQ(error_status("GET /x HTTP/1.1\r\n: novalue\r\n\r\n"), 400);
  EXPECT_EQ(
      error_status("POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"),
      501);
  EXPECT_EQ(error_status("POST /x HTTP/1.1\r\nContent-Length: nan\r\n\r\n"),
            400);
  EXPECT_EQ(error_status("POST /x HTTP/1.1\r\nContent-Length: 99999999999999"
                         "\r\n\r\n"),
            413);
  EXPECT_EQ(error_status("GET /%zz HTTP/1.1\r\n\r\n"), 400);
  EXPECT_EQ(error_status("GET /x HTTP/1.1\r\nA: b\r\n  folded\r\n\r\n"), 400);
}

TEST(HttpParserTest, OversizedBodyRefused413) {
  gateway::HttpLimits limits;
  limits.max_body = 16;
  HttpParser p(limits);
  p.feed("POST /x HTTP/1.1\r\nContent-Length: 17\r\n\r\n");
  EXPECT_THROW((void)p.next(), HttpError);
}

TEST(HttpParserTest, OversizedHeadersRefused431) {
  gateway::HttpLimits limits;
  limits.max_header_bytes = 64;
  HttpParser p(limits);
  std::string req = "GET /x HTTP/1.1\r\n";
  req += "A: " + std::string(100, 'x') + "\r\n\r\n";
  p.feed(req);
  try {
    (void)p.next();
    FAIL() << "oversized headers must throw";
  } catch (const HttpError& e) {
    EXPECT_EQ(e.status(), 431);
  }
}

TEST(HttpParserTest, OversizedRequestLineRefusedEvenWithoutNewline) {
  gateway::HttpLimits limits;
  limits.max_request_line = 32;
  HttpParser p(limits);
  // No terminator ever arrives: the parser must still bound its buffer.
  p.feed("GET /" + std::string(100, 'a'));
  EXPECT_THROW((void)p.next(), HttpError);
}

TEST(HttpParserTest, PoisonedAfterThrow) {
  HttpParser p;
  p.feed("BAD\r\n\r\n");
  EXPECT_THROW((void)p.next(), HttpError);
  EXPECT_THROW((void)p.next(), HttpError);
  EXPECT_THROW(p.feed("GET / HTTP/1.1\r\n\r\n"), HttpError);
}

// --- Fuzz: truncation prefixes and random mutations (ASan-backed) -----------

TEST(HttpParserFuzzTest, EveryTruncationPrefixWaitsOrFailsTyped) {
  const std::string wire =
      "POST /inject/in?vt=7 HTTP/1.1\r\n"
      "Host: gw\r\nContent-Type: text/plain\r\nContent-Length: 11\r\n"
      "\r\nhello world";
  for (std::size_t cut = 0; cut < wire.size(); ++cut) {
    HttpParser p;
    p.feed(std::string_view(wire).substr(0, cut));
    // A prefix of a valid request is never an error — it just waits.
    EXPECT_FALSE(p.next().has_value()) << "prefix " << cut;
    // And the remainder completes it.
    p.feed(std::string_view(wire).substr(cut));
    const auto req = p.next();
    ASSERT_TRUE(req.has_value()) << "prefix " << cut;
    EXPECT_EQ(req->body, "hello world");
  }
}

TEST(HttpParserFuzzTest, RandomByteMutationsNeverCrash) {
  const std::string wire =
      "POST /inject/in?vt=7 HTTP/1.1\r\n"
      "Host: gw\r\nContent-Type: text/plain\r\nContent-Length: 11\r\n"
      "\r\nhello world";
  Rng rng(0xF00DF00D);
  int parsed = 0, waited = 0, refused = 0;
  for (int round = 0; round < 4000; ++round) {
    std::string mutated = wire;
    const int flips = static_cast<int>(rng.uniform_int(1, 5));
    for (int f = 0; f < flips; ++f) {
      const auto pos = rng.bounded(mutated.size());
      mutated[pos] = static_cast<char>(rng.bounded(256));
    }
    HttpParser p;
    try {
      p.feed(mutated);
      int spins = 0;
      while (p.next().has_value() && ++spins < 8) {
      }
      if (spins > 0)
        ++parsed;
      else
        ++waited;
    } catch (const HttpError& e) {
      // Every refusal must carry a mappable HTTP status.
      EXPECT_GE(e.status(), 400);
      EXPECT_LT(e.status(), 600);
      ++refused;
    }
  }
  // The mutation space must actually exercise all three outcomes.
  EXPECT_GT(parsed, 0);
  EXPECT_GT(refused, 0);
  EXPECT_GT(parsed + waited + refused, 3999);
}

// --- Payload codec ----------------------------------------------------------

HttpRequest with_body(std::string body, std::string content_type) {
  HttpRequest req;
  req.body = std::move(body);
  if (!content_type.empty())
    req.headers.emplace_back("Content-Type", std::move(content_type));
  return req;
}

TEST(PayloadCodecTest, ContentTypesMapToPayloadShapes) {
  EXPECT_EQ(gateway::payload_from_body(with_body("a b  c", "")),
            apps::sentence({"a", "b", "c"}));
  EXPECT_EQ(gateway::payload_from_body(
                with_body("a b", "text/plain; charset=utf-8")),
            apps::sentence({"a", "b"}));
  EXPECT_EQ(gateway::payload_from_body(
                with_body("-42", "application/x-tart-int")),
            Payload(std::int64_t{-42}));
  EXPECT_EQ(gateway::payload_from_body(
                with_body("2.5", "application/x-tart-double")),
            Payload(2.5));
  EXPECT_EQ(gateway::payload_from_body(
                with_body("hi there", "application/x-tart-string")),
            Payload(std::string("hi there")));
  const Payload bytes = gateway::payload_from_body(
      with_body(std::string("\x01\x02", 2), "application/octet-stream"));
  EXPECT_EQ(gateway::render_payload(bytes), "0102");
}

TEST(PayloadCodecTest, BadBodiesRefusedTyped) {
  EXPECT_THROW(
      (void)gateway::payload_from_body(
          with_body("xyz", "application/x-tart-int")),
      HttpError);
  try {
    (void)gateway::payload_from_body(with_body("x", "application/json"));
    FAIL() << "unknown content type must throw";
  } catch (const HttpError& e) {
    EXPECT_EQ(e.status(), 415);
  }
}

// --- Runtime::try_inject* ----------------------------------------------------

struct ChainApp {
  net::BuiltTopology built;
  std::map<ComponentId, EngineId> placement;

  ChainApp() : built(net::build_topology("chain", {{"stages", "2"}})) {
    for (const auto& [name, id] : built.components)
      placement[id] = EngineId(0);
  }
  [[nodiscard]] WireId in() const { return built.inputs.at("in"); }
  [[nodiscard]] WireId out() const { return built.outputs.at("out"); }
};

TEST(TryInjectTest, TypedStatusesInsteadOfThrows) {
  ChainApp app;
  core::Runtime rt(app.built.topology, app.placement, core::RuntimeConfig{});
  rt.start();

  const auto ok = rt.try_inject_at(app.in(), VirtualTime(1000), Payload("x"));
  EXPECT_EQ(ok.status, core::InjectStatus::kOk);
  EXPECT_EQ(ok.vt, VirtualTime(1000));

  // Scripted vt not strictly after the last logged vt: REFUSED, not
  // clamped (unlike inject_at) — and NOT logged.
  const auto regressed =
      rt.try_inject_at(app.in(), VirtualTime(1000), Payload("y"));
  EXPECT_EQ(regressed.status, core::InjectStatus::kVtRegressed);
  EXPECT_EQ(rt.external_log().size(app.in()), 1u);

  const auto unknown = rt.try_inject(WireId(9999), Payload("z"));
  EXPECT_EQ(unknown.status, core::InjectStatus::kUnknownWire);

  rt.close_input(app.in());
  const auto closed = rt.try_inject(app.in(), Payload("w"));
  EXPECT_EQ(closed.status, core::InjectStatus::kClosed);

  ASSERT_TRUE(rt.drain());
  rt.stop();
}

TEST(TryInjectTest, BatchStampsMonotonelyAndLogsEverything) {
  ChainApp app;
  core::Runtime rt(app.built.topology, app.placement, core::RuntimeConfig{});
  rt.start();

  std::vector<core::InjectRequest> requests;
  for (int i = 0; i < 8; ++i)
    requests.push_back({app.in(), -1, Payload(std::int64_t{i})});
  const auto results = rt.try_inject_batch(requests);
  ASSERT_EQ(results.size(), 8u);
  VirtualTime prev(-1);
  for (const auto& r : results) {
    EXPECT_EQ(r.status, core::InjectStatus::kOk);
    EXPECT_GT(r.vt, prev);  // strictly monotone per wire, in batch order
    prev = r.vt;
  }
  EXPECT_EQ(rt.external_log().size(app.in()), 8u);

  ASSERT_TRUE(rt.drain());
  EXPECT_EQ(rt.output_records(app.out()).size(), 8u);
  rt.stop();
}

// --- Live gateway over real sockets -----------------------------------------

/// Finds the /outputs line carrying `payload` and checks its shape:
/// "vt\tstutter\torigin\tpayload" with a fresh (stutter=0) flag and a
/// well-formed WIRE:SEQ origin tag (gateway-injected inputs are always
/// stamped). Returns false when the line is missing or malformed.
bool fresh_output_with_origin(const std::string& body,
                              const std::string& payload) {
  std::istringstream in(body);
  std::string line;
  while (std::getline(in, line)) {
    const auto t1 = line.find('\t');
    const auto t2 = line.find('\t', t1 + 1);
    const auto t3 = line.find('\t', t2 + 1);
    if (t3 == std::string::npos) return false;
    if (line.substr(t3 + 1) != payload) continue;
    const std::string origin = line.substr(t2 + 1, t3 - t2 - 1);
    const auto colon = origin.find(':');
    return line.substr(t1 + 1, t2 - t1 - 1) == "0" &&
           colon != std::string::npos && colon > 0 &&
           colon + 1 < origin.size();
  }
  return false;
}

class GatewayTest : public ::testing::Test {
 protected:
  void start(gateway::Gateway::Options options = {}) {
    rt_ = std::make_unique<core::Runtime>(app_.built.topology, app_.placement,
                                          core::RuntimeConfig{});
    rt_->start();
    gw_ = std::make_unique<gateway::Gateway>(rt_.get(), std::move(options),
                                             app_.built.inputs,
                                             app_.built.outputs);
    addr_ = "127.0.0.1:" + std::to_string(gw_->port());
  }

  void TearDown() override {
    if (gw_) gw_->shutdown();
    if (rt_) rt_->stop();
  }

  [[nodiscard]] gateway::BlockingHttpClient client() {
    auto c = gateway::BlockingHttpClient::connect(addr_);
    EXPECT_TRUE(c.has_value());
    return std::move(*c);
  }

  ChainApp app_;
  std::unique_ptr<core::Runtime> rt_;
  std::unique_ptr<gateway::Gateway> gw_;
  std::string addr_;
};

TEST_F(GatewayTest, InjectAcksWithAssignedVt) {
  start();
  auto c = client();
  const auto resp = c.post("/inject/in?vt=5000", "hello", "text/plain");
  EXPECT_EQ(resp.status, 200);
  EXPECT_EQ(resp.body, "vt=5000\n");
  ASSERT_NE(resp.header("X-Tart-Vt"), nullptr);
  EXPECT_EQ(*resp.header("X-Tart-Vt"), "5000");
  // Realtime stamping: returned vt is strictly after the scripted 5000.
  const auto rt_resp = c.post("/inject/in", "more", "text/plain");
  EXPECT_EQ(rt_resp.status, 200);
  EXPECT_GT(std::stoll(*rt_resp.header("X-Tart-Vt")), 5000);
}

TEST_F(GatewayTest, TypedRejections) {
  start();
  auto c = client();
  EXPECT_EQ(c.post("/inject/nosuch", "x", "text/plain").status, 404);
  EXPECT_EQ(c.post("/inject/in?vt=abc", "x", "text/plain").status, 400);
  EXPECT_EQ(c.post("/inject/in", "x", "application/json").status, 415);
  EXPECT_EQ(c.get("/inject/in").status, 405);
  EXPECT_EQ(c.get("/nosuch").status, 404);

  ASSERT_EQ(c.post("/inject/in?vt=9000", "x", "text/plain").status, 200);
  EXPECT_EQ(c.post("/inject/in?vt=9000", "y", "text/plain").status, 409)
      << "vt regression must be refused";

  EXPECT_EQ(c.post("/close/in", "").status, 200);
  EXPECT_EQ(c.post("/inject/in?vt=99999", "z", "text/plain").status, 409)
      << "closed input must be refused";

  EXPECT_EQ(c.get("/checkpoint").status, 405);
  EXPECT_EQ(c.post("/checkpoint", "").status, 503)
      << "this fixture runs without durability; /checkpoint must say so";

  const auto counters = gw_->counters();
  EXPECT_GT(counters.errors, 0u);
  EXPECT_EQ(counters.acked, 1u);
}

TEST_F(GatewayTest, AdmissionControlReturns429WithRetryAfter) {
  gateway::Gateway::Options options;
  options.max_inflight_per_wire = 0;  // everything overflows
  options.retry_after_seconds = 7;
  start(options);
  auto c = client();
  const auto resp = c.post("/inject/in", "x", "text/plain");
  EXPECT_EQ(resp.status, 429);
  ASSERT_NE(resp.header("Retry-After"), nullptr);
  EXPECT_EQ(*resp.header("Retry-After"), "7");
  EXPECT_EQ(gw_->counters().rejected, 1u);
}

TEST_F(GatewayTest, OutputsDrainAndLongPoll) {
  start();
  auto c = client();
  ASSERT_EQ(c.post("/inject/in?vt=1000", "alpha", "text/plain").status, 200);
  ASSERT_EQ(c.post("/inject/in?vt=2000", "beta", "text/plain").status, 200);
  ASSERT_EQ(c.post("/drain", "").status, 200);

  // Output vts are input vts shifted by the stages' latency, so match on
  // shape: two fresh records, in order, payloads intact.
  auto resp = c.get("/outputs/out");
  EXPECT_EQ(resp.status, 200);
  EXPECT_TRUE(fresh_output_with_origin(resp.body, "alpha")) << resp.body;
  EXPECT_TRUE(fresh_output_with_origin(resp.body, "beta")) << resp.body;
  EXPECT_LT(resp.body.find("alpha"), resp.body.find("beta"));
  ASSERT_NE(resp.header("X-Tart-Next"), nullptr);
  EXPECT_EQ(*resp.header("X-Tart-Next"), "2");

  // Incremental drain from a cursor.
  resp = c.get("/outputs/out?after=1");
  EXPECT_EQ(resp.body.find("alpha"), std::string::npos) << resp.body;
  EXPECT_TRUE(fresh_output_with_origin(resp.body, "beta")) << resp.body;

  // Long-poll with nothing new: returns empty at the deadline.
  const auto t0 = std::chrono::steady_clock::now();
  resp = c.get("/outputs/out?after=2&wait_ms=120");
  EXPECT_EQ(resp.status, 200);
  EXPECT_TRUE(resp.body.empty());
  EXPECT_GE(std::chrono::steady_clock::now() - t0, 100ms);

  EXPECT_EQ(c.get("/outputs/nosuch").status, 404);
}

TEST_F(GatewayTest, LongPollWakesOnNewOutput) {
  start();
  auto c = client();
  std::thread feeder([this] {
    std::this_thread::sleep_for(80ms);
    auto c2 = gateway::BlockingHttpClient::connect(addr_);
    ASSERT_TRUE(c2.has_value());
    ASSERT_EQ(c2->post("/inject/in?vt=1000", "late", "text/plain").status,
              200);
    ASSERT_EQ(c2->post("/close/in", "").status, 200);
  });
  const auto resp = c.get("/outputs/out?wait_ms=5000");
  feeder.join();
  EXPECT_EQ(resp.status, 200);
  EXPECT_TRUE(fresh_output_with_origin(resp.body, "late")) << resp.body;
}

TEST_F(GatewayTest, PipelinedRequestsAnswerInOrder) {
  start();
  auto c = client();
  // Two injects and a healthz in one write; responses must come back in
  // request order with correct framing.
  c.send_raw(
      "POST /inject/in?vt=100 HTTP/1.1\r\nContent-Length: 1\r\n\r\na"
      "POST /inject/in?vt=200 HTTP/1.1\r\nContent-Length: 1\r\n\r\nb"
      "GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n");
  const std::string all = c.read_until_close();
  const auto first = all.find("vt=100");
  const auto second = all.find("vt=200");
  const auto third = all.find("ok");
  ASSERT_NE(first, std::string::npos) << all;
  ASSERT_NE(second, std::string::npos) << all;
  ASSERT_NE(third, std::string::npos) << all;
  EXPECT_LT(first, second);
  EXPECT_LT(second, third);
  EXPECT_EQ(rt_->external_log().size(app_.in()), 2u);
}

TEST_F(GatewayTest, MalformedRequestGetsTypedStatusThenClose) {
  start();
  auto c = client();
  c.send_raw("POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n");
  const std::string all = c.read_until_close();
  EXPECT_NE(all.find("HTTP/1.1 501"), std::string::npos) << all;

  auto c2 = client();
  c2.send_raw("GARBAGE\r\n\r\n");
  const std::string all2 = c2.read_until_close();
  EXPECT_NE(all2.find("HTTP/1.1 400"), std::string::npos) << all2;
}

TEST_F(GatewayTest, MetricsAndHealthz) {
  start();
  auto c = client();
  ASSERT_EQ(c.post("/inject/in?vt=1000", "m", "text/plain").status, 200);
  EXPECT_EQ(c.get("/healthz").status, 200);
  const auto resp = c.get("/metrics");
  EXPECT_EQ(resp.status, 200);
  const std::string* ct = resp.header("Content-Type");
  ASSERT_NE(ct, nullptr);
  EXPECT_EQ(*ct, tart::obs::kPrometheusContentType);
  EXPECT_NE(resp.body.find("tart_gw_acked_total 1"), std::string::npos)
      << resp.body;
  EXPECT_NE(resp.body.find("tart_gw_requests_total"), std::string::npos);
  // The ack-latency histogram renders as a summary with quantile children.
  EXPECT_NE(resp.body.find("tart_gw_ack_latency_seconds{quantile=\"0.5\"}"),
            std::string::npos)
      << resp.body;
  // The unified exposition must satisfy its own lint (same check
  // scripts/check.sh runs against a live node).
  const auto lint = tart::obs::lint_exposition(resp.body);
  EXPECT_FALSE(lint.has_value()) << *lint;
}

TEST_F(GatewayTest, StatusReportsSilenceWavefront) {
  start();
  auto c = client();
  const auto resp = c.get("/status");
  EXPECT_EQ(resp.status, 200);
  const std::string* ct = resp.header("Content-Type");
  ASSERT_NE(ct, nullptr);
  EXPECT_EQ(*ct, "application/json");
  EXPECT_NE(resp.body.find("\"components\":["), std::string::npos)
      << resp.body;
  EXPECT_NE(resp.body.find("\"inputs\":["), std::string::npos) << resp.body;
}

TEST_F(GatewayTest, ConcurrentClientsGroupCommitAndAllAck) {
  start();
  constexpr int kClients = 8;
  constexpr int kPerClient = 25;
  std::vector<std::thread> threads;
  std::atomic<int> acked{0};
  for (int t = 0; t < kClients; ++t) {
    threads.emplace_back([this, &acked, t] {
      auto c = gateway::BlockingHttpClient::connect(addr_);
      ASSERT_TRUE(c.has_value());
      for (int i = 0; i < kPerClient; ++i) {
        const auto resp =
            c->post("/inject/in", "w" + std::to_string(t), "text/plain");
        if (resp.status == 200) acked.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(acked.load(), kClients * kPerClient);
  EXPECT_EQ(rt_->external_log().size(app_.in()),
            static_cast<std::uint64_t>(kClients * kPerClient));
  const auto counters = gw_->counters();
  EXPECT_EQ(counters.acked, static_cast<std::uint64_t>(kClients * kPerClient));
  EXPECT_LE(counters.commit_batches, counters.commit_records);
}

}  // namespace
