// Tests for file-backed stable storage: durability across "restarts",
// torn-write tolerance, and write-through persistence of the external
// message log and the determinism-fault log.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "log/fault_log.h"
#include "log/message_log.h"
#include "log/stable_store.h"

namespace tart::log {
namespace {

class StableStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("tart_store_test_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  [[nodiscard]] std::string path(const char* name) const {
    return (dir_ / name).string();
  }

  std::filesystem::path dir_;
};

std::vector<std::byte> bytes(std::initializer_list<int> values) {
  std::vector<std::byte> out;
  for (const int v : values) out.push_back(static_cast<std::byte>(v));
  return out;
}

TEST_F(StableStoreTest, AppendScanRoundTrip) {
  const std::string p = path("log");
  {
    FileStableStore store(p);
    EXPECT_TRUE(store.append(bytes({1, 2, 3})));
    EXPECT_TRUE(store.append(bytes({})));
    EXPECT_TRUE(store.append(bytes({42})));
    EXPECT_EQ(store.records_written(), 3u);
  }
  const auto records = FileStableStore::scan(p);
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0], bytes({1, 2, 3}));
  EXPECT_EQ(records[1], bytes({}));
  EXPECT_EQ(records[2], bytes({42}));
}

TEST_F(StableStoreTest, AppendBatchRoundTripWithOneFlush) {
  const std::string p = path("log");
  {
    FileStableStore store(p);
    const std::vector<std::vector<std::byte>> batch = {
        bytes({1, 2}), bytes({}), bytes({3, 4, 5})};
    EXPECT_TRUE(store.append_batch(batch));
    EXPECT_EQ(store.records_written(), 3u);
    // The whole batch became durable at ONE flush — the group commit.
    EXPECT_EQ(store.flushes(), 1u);
    EXPECT_TRUE(store.append(bytes({9})));
    EXPECT_EQ(store.flushes(), 2u);
  }
  const auto records = FileStableStore::scan(p);
  ASSERT_EQ(records.size(), 4u);
  EXPECT_EQ(records[0], bytes({1, 2}));
  EXPECT_EQ(records[1], bytes({}));
  EXPECT_EQ(records[2], bytes({3, 4, 5}));
  EXPECT_EQ(records[3], bytes({9}));
}

TEST_F(StableStoreTest, EmptyBatchDoesNotFlush) {
  FileStableStore store(path("log"));
  EXPECT_TRUE(store.append_batch({}));
  EXPECT_EQ(store.records_written(), 0u);
  EXPECT_EQ(store.flushes(), 0u);
}

TEST_F(StableStoreTest, TornBatchedWriteRecoversIntactPrefix) {
  const std::string p = path("log");
  {
    FileStableStore store(p);
    const std::vector<std::vector<std::byte>> batch = {
        bytes({1, 1}), bytes({2, 2}), bytes({3, 3})};
    ASSERT_TRUE(store.append_batch(batch));
  }
  // Crash mid-batch: the tail of the single batched write never hit disk.
  // The intact per-record frames before the tear must still scan.
  const auto size = std::filesystem::file_size(p);
  std::filesystem::resize_file(p, size - 3);
  const auto records = FileStableStore::scan(p);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0], bytes({1, 1}));
  EXPECT_EQ(records[1], bytes({2, 2}));
}

TEST_F(StableStoreTest, TornBatchHeaderDropsOnlyTornRecord) {
  const std::string p = path("log");
  {
    FileStableStore store(p);
    ASSERT_TRUE(store.append_batch(
        std::vector<std::vector<std::byte>>{bytes({5, 5, 5}), bytes({6})}));
  }
  // Tear inside the second record's frame HEADER (frame = 16-byte header
  // + payload: file is 16+3 + 16+1; chop 9 bytes to land mid-header).
  const auto size = std::filesystem::file_size(p);
  std::filesystem::resize_file(p, size - 9);
  const auto records = FileStableStore::scan(p);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0], bytes({5, 5, 5}));
}

TEST_F(StableStoreTest, ReopenAppends) {
  const std::string p = path("log");
  {
    FileStableStore store(p);
    store.append(bytes({1}));
  }
  {
    FileStableStore store(p);  // process restart
    store.append(bytes({2}));
  }
  EXPECT_EQ(FileStableStore::scan(p).size(), 2u);
}

TEST_F(StableStoreTest, MissingFileScansEmpty) {
  EXPECT_TRUE(FileStableStore::scan(path("nonexistent")).empty());
}

TEST_F(StableStoreTest, TornFinalRecordDropped) {
  const std::string p = path("log");
  {
    FileStableStore store(p);
    store.append(bytes({1, 1, 1}));
    store.append(bytes({2, 2, 2}));
  }
  // Simulate a crash mid-write: chop the last few bytes.
  const auto size = std::filesystem::file_size(p);
  std::filesystem::resize_file(p, size - 2);
  const auto records = FileStableStore::scan(p);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0], bytes({1, 1, 1}));
}

TEST_F(StableStoreTest, CorruptedChecksumStopsScan) {
  const std::string p = path("log");
  {
    FileStableStore store(p);
    store.append(bytes({1, 1, 1}));
    store.append(bytes({2, 2, 2}));
  }
  // Flip a payload byte of the second record (last byte of the file).
  std::fstream f(p, std::ios::in | std::ios::out | std::ios::binary);
  f.seekp(-1, std::ios::end);
  f.put('\xFF');
  f.close();
  EXPECT_EQ(FileStableStore::scan(p).size(), 1u);
}

TEST_F(StableStoreTest, MessageLogWriteThroughAndRecover) {
  const std::string p = path("messages");
  Message m;
  m.wire = WireId(3);
  m.vt = VirtualTime(50000);
  m.seq = 0;
  m.payload = Payload("sentence");
  {
    ExternalMessageLog log;
    FileStableStore store(p);
    log.attach_store(&store);
    log.append(m);
    Message m2 = m;
    m2.vt = VirtualTime(80000);
    m2.seq = 1;
    log.append(m2);
  }
  // "Restart": a fresh log rebuilt from stable storage serves replay.
  ExternalMessageLog recovered;
  recovered.load_from(p);
  EXPECT_EQ(recovered.size(WireId(3)), 2u);
  const auto replay = recovered.replay_after(WireId(3), VirtualTime(-1));
  ASSERT_EQ(replay.size(), 2u);
  EXPECT_EQ(replay[0].payload.as_string(), "sentence");
  EXPECT_EQ(recovered.last_vt(WireId(3)), VirtualTime(80000));
}

TEST_F(StableStoreTest, MessageLogAppendBatchOneFlushAndRecover) {
  const std::string p = path("messages");
  {
    ExternalMessageLog log;
    FileStableStore store(p);
    log.attach_store(&store);
    std::vector<Message> batch;
    for (int i = 0; i < 5; ++i) {
      Message m;
      m.wire = WireId(i % 2);  // interleave two wires in one batch
      m.seq = static_cast<std::uint64_t>(i / 2);
      m.vt = VirtualTime(1000 * (i + 1));
      m.payload = Payload(static_cast<std::int64_t>(i));
      batch.push_back(std::move(m));
    }
    EXPECT_TRUE(log.append_batch(batch));
    EXPECT_EQ(store.records_written(), 5u);
    EXPECT_EQ(store.flushes(), 1u);
  }
  ExternalMessageLog recovered;
  recovered.load_from(p);
  EXPECT_EQ(recovered.size(WireId(0)), 3u);
  EXPECT_EQ(recovered.size(WireId(1)), 2u);
  const auto replay = recovered.replay_after(WireId(0), VirtualTime(-1));
  ASSERT_EQ(replay.size(), 3u);
  EXPECT_EQ(replay[0].payload.as_int(), 0);
  EXPECT_EQ(replay[2].payload.as_int(), 4);
}

TEST_F(StableStoreTest, FaultLogWriteThroughAndRecover) {
  const std::string p = path("faults");
  {
    DeterminismFaultLog log;
    FileStableStore store(p);
    log.attach_store(&store);
    log.append(FaultRecord{ComponentId(1), 1, VirtualTime(100'000'000),
                           {0.0, 62000.0}});
    log.append(FaultRecord{ComponentId(1), 2, VirtualTime(200'000'000),
                           {0.0, 61500.0}});
  }
  DeterminismFaultLog recovered;
  recovered.load_from(p);
  EXPECT_EQ(recovered.latest_version(ComponentId(1)), 2u);
  const auto records = recovered.records_after(ComponentId(1), 0);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].coefficients[1], 62000.0);
  EXPECT_EQ(records[1].effective_vt, VirtualTime(200'000'000));
}

TEST_F(StableStoreTest, FaultRecordCodecRoundTrip) {
  FaultRecord rec{ComponentId(7), 3, VirtualTime::infinity(), {1.5, -2.25}};
  serde::Writer w;
  rec.encode(w);
  serde::Reader r(w.bytes());
  const FaultRecord d = FaultRecord::decode(r);
  EXPECT_EQ(d.component, rec.component);
  EXPECT_EQ(d.version, 3u);
  EXPECT_TRUE(d.effective_vt.is_infinite());
  EXPECT_EQ(d.coefficients, rec.coefficients);
}

}  // namespace
}  // namespace tart::log

// --- Cold restart of a whole deployment from stable storage ------------------

#include "apps/wordcount.h"
#include "core/runtime.h"
#include "estimator/estimator.h"

namespace tart::log {
namespace {

struct ColdApp {
  core::Topology topo;
  ComponentId s1, s2, merger;
  WireId in1, in2, out;

  ColdApp() {
    s1 = topo.add("s1", [] {
      return std::make_unique<apps::WordCountSender>();
    });
    s2 = topo.add("s2", [] {
      return std::make_unique<apps::WordCountSender>();
    });
    merger = topo.add("m", [] {
      return std::make_unique<apps::TotalingMerger>();
    });
    for (const auto c : {s1, s2}) {
      topo.set_estimator(c, [] {
        return estimator::per_iteration_estimator(61000.0);
      });
    }
    in1 = topo.external_input(s1, PortId(0));
    in2 = topo.external_input(s2, PortId(0));
    topo.connect(s1, PortId(0), merger, PortId(0));
    topo.connect(s2, PortId(0), merger, PortId(0));
    out = topo.external_output(merger, PortId(0));
  }

  [[nodiscard]] std::map<ComponentId, EngineId> placement() const {
    return {{s1, EngineId(0)}, {s2, EngineId(0)}, {merger, EngineId(0)}};
  }
};

using Observed = std::vector<std::pair<std::int64_t, std::int64_t>>;

Observed observed(core::Runtime& rt, WireId out) {
  Observed result;
  for (const auto& r : rt.output_records(out))
    result.emplace_back(r.vt.ticks(), r.payload.as_int());
  return result;
}

class ColdRestartTest : public StableStoreTest {};

TEST_F(ColdRestartTest, WholeDeploymentRecoversFromLogDirectory) {
  const std::string log_dir = (dir_).string();
  Observed first_run;
  std::uint64_t first_fingerprint = 0;
  {
    ColdApp app;
    core::RuntimeConfig config;
    config.log_dir = log_dir;
    core::Runtime rt(app.topo, app.placement(), config);
    rt.start();
    for (int i = 0; i < 10; ++i) {
      rt.inject_at(app.in1, VirtualTime(1000 + i * 500'000),
                   apps::sentence({"a", "b", "c"}));
      rt.inject_at(app.in2, VirtualTime(700 + i * 400'000),
                   apps::sentence({"d", "e"}));
    }
    ASSERT_TRUE(rt.drain());
    first_run = observed(rt, app.out);
    first_fingerprint = rt.state_fingerprint(app.merger);
    rt.stop();
    // The process "dies" here: all in-memory state (including the passive
    // replica) is gone; only the log directory survives.
  }

  ColdApp app;
  core::RuntimeConfig config;
  config.log_dir = log_dir;
  core::Runtime rt(app.topo, app.placement(), config);
  rt.start();  // replays the recovered log automatically
  ASSERT_TRUE(rt.drain());
  EXPECT_EQ(observed(rt, app.out), first_run);
  EXPECT_EQ(rt.state_fingerprint(app.merger), first_fingerprint);
  rt.stop();
}

TEST_F(ColdRestartTest, RestartContinuesAcceptingNewInput) {
  const std::string log_dir = (dir_).string();
  {
    ColdApp app;
    core::RuntimeConfig config;
    config.log_dir = log_dir;
    core::Runtime rt(app.topo, app.placement(), config);
    rt.start();
    rt.inject_at(app.in1, VirtualTime(1000), apps::sentence({"x", "y"}));
    rt.inject_at(app.in2, VirtualTime(900), apps::sentence({"z"}));
    ASSERT_TRUE(rt.drain());
    rt.stop();
  }
  ColdApp app;
  core::RuntimeConfig config;
  config.log_dir = log_dir;
  core::Runtime rt(app.topo, app.placement(), config);
  rt.start();
  // New injections continue the per-wire sequence past the recovered log.
  rt.inject_at(app.in1, VirtualTime(10'000'000), apps::sentence({"x"}));
  ASSERT_TRUE(rt.drain());
  EXPECT_EQ(rt.output_records(app.out).size(), 3u);
  EXPECT_EQ(rt.external_log().size(app.in1), 2u);
  rt.stop();
}


TEST_F(ColdRestartTest, ResumesFromPersistedCheckpoints) {
  const std::string log_dir = (dir_).string();
  core::RuntimeConfig config;
  config.log_dir = log_dir;
  config.checkpoint.every_n_messages = 3;

  std::uint64_t fingerprint = 0;
  std::int64_t final_total = 0;
  {
    ColdApp app;
    core::Runtime rt(app.topo, app.placement(), config);
    rt.start();
    for (int i = 0; i < 12; ++i) {
      rt.inject_at(app.in1, VirtualTime(1000 + i * 500'000),
                   apps::sentence({"a", "b", "c"}));
      rt.inject_at(app.in2, VirtualTime(700 + i * 400'000),
                   apps::sentence({"d", "e"}));
    }
    ASSERT_TRUE(rt.drain());
    fingerprint = rt.state_fingerprint(app.merger);
    const auto records = observed(rt, app.out);
    final_total = records.back().second;
    rt.stop();
  }

  // Cold restart 1: checkpoints come back from replica.log, the log tail
  // replays, and the deployment ends bit-identical.
  {
    ColdApp app;
    core::Runtime rt(app.topo, app.placement(), config);
    EXPECT_GT(rt.replica().latest_version(app.merger), 0u);
    rt.start();
    ASSERT_TRUE(rt.drain());
    EXPECT_EQ(rt.state_fingerprint(app.merger), fingerprint);
    rt.stop();
  }

  // Cold restart 2: the restarted deployment keeps running — repeated
  // words hit the restored vocabulary, so the total strictly grows.
  ColdApp app;
  core::Runtime rt(app.topo, app.placement(), config);
  rt.start();
  rt.inject_at(app.in1, VirtualTime(100'000'000),
               apps::sentence({"a", "b", "c"}));
  ASSERT_TRUE(rt.drain());
  const auto records = observed(rt, app.out);
  ASSERT_FALSE(records.empty());
  EXPECT_GT(records.back().second, final_total);
  rt.stop();
}

}  // namespace
}  // namespace tart::log
