// Unit tests for the live-migration building blocks (docs/PLACEMENT.md):
//
//   - MigrationJournal: fsynced ownership records, recovery classification
//     (overrides / in-doubt intents / discardable staged state), torn-tail
//     tolerance, staged-slice blob files.
//   - PlacementTable: epoch-guarded overrides on the static placement —
//     highest epoch wins, stale moves are refused, snapshots resolve.
//   - MigrationSlice codec: plan + per-wire log suffix round-trips; any
//     shape corruption decodes to nullopt, never to a wrong slice.
//   - Stream channel: the chunked/windowed/resumable transfer protocol as
//     two pure state machines, driven byte-for-byte with no sockets —
//     including mid-stream reconnect resume and whole-blob CRC rejection.
//   - Fingerprint split: moving a component between partitions changes the
//     placement fingerprint but NOT the topology fingerprint the HELLO
//     handshake enforces (mixed-epoch reconnects must stay connectable).
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "net/partition_config.h"
#include "net/stream_channel.h"
#include "placement/journal.h"
#include "placement/slice.h"
#include "placement/table.h"

using namespace tart;
using namespace tart::placement;

namespace {

std::string make_temp_dir() {
  char tmpl[] = "/tmp/tart_placement_XXXXXX";
  const char* dir = mkdtemp(tmpl);
  EXPECT_NE(dir, nullptr);
  return dir;
}

JournalRecord rec(JournalRecordKind kind, std::uint64_t epoch,
                  std::uint32_t component, std::uint32_t from,
                  std::uint32_t to) {
  JournalRecord r;
  r.kind = kind;
  r.epoch = epoch;
  r.component = ComponentId(component);
  r.from = EngineId(from);
  r.to = EngineId(to);
  return r;
}

// --- Journal ----------------------------------------------------------------

TEST(MigrationJournalTest, EmptyDirRecoversEmpty) {
  const std::string dir = make_temp_dir();
  const auto r = MigrationJournal::recover(dir);
  EXPECT_TRUE(r.records.empty());
  EXPECT_TRUE(r.overrides.empty());
  EXPECT_TRUE(r.pending_intents.empty());
  EXPECT_TRUE(r.pending_staged.empty());
  EXPECT_EQ(r.max_epoch, 0u);
}

TEST(MigrationJournalTest, VolatileJournalAcceptsAndDropsRecords) {
  MigrationJournal j("");
  EXPECT_FALSE(j.durable());
  EXPECT_TRUE(j.append(rec(JournalRecordKind::kIntent, 1, 7, 0, 1)));
}

TEST(MigrationJournalTest, CompletedMigrationLeavesOverrideOnly) {
  const std::string dir = make_temp_dir();
  {
    MigrationJournal j(dir);
    ASSERT_TRUE(j.durable());
    ASSERT_TRUE(j.append(rec(JournalRecordKind::kIntent, 3, 7, 0, 1)));
    ASSERT_TRUE(j.append(rec(JournalRecordKind::kRelease, 3, 7, 0, 1)));
  }
  const auto r = MigrationJournal::recover(dir);
  ASSERT_EQ(r.records.size(), 2u);
  EXPECT_EQ(r.max_epoch, 3u);
  EXPECT_TRUE(r.pending_intents.empty()) << "released intent is resolved";
  ASSERT_EQ(r.overrides.size(), 1u);
  EXPECT_EQ(r.overrides[0].kind, JournalRecordKind::kRelease);
  EXPECT_EQ(r.overrides[0].to.value(), 1u);
}

TEST(MigrationJournalTest, UnresolvedIntentStaysInDoubt) {
  const std::string dir = make_temp_dir();
  {
    MigrationJournal j(dir);
    ASSERT_TRUE(j.append(rec(JournalRecordKind::kIntent, 5, 7, 0, 1)));
  }
  const auto r = MigrationJournal::recover(dir);
  ASSERT_EQ(r.pending_intents.size(), 1u);
  EXPECT_EQ(r.pending_intents[0].epoch, 5u);
  EXPECT_TRUE(r.overrides.empty())
      << "an in-doubt handoff must not move ownership";
}

TEST(MigrationJournalTest, AbortedIntentIsResolved) {
  const std::string dir = make_temp_dir();
  {
    MigrationJournal j(dir);
    ASSERT_TRUE(j.append(rec(JournalRecordKind::kIntent, 5, 7, 0, 1)));
    ASSERT_TRUE(j.append(rec(JournalRecordKind::kAbort, 5, 7, 0, 1)));
  }
  const auto r = MigrationJournal::recover(dir);
  EXPECT_TRUE(r.pending_intents.empty());
  EXPECT_TRUE(r.overrides.empty()) << "abort restores static placement";
}

TEST(MigrationJournalTest, StagedWithoutAdoptIsDiscardable) {
  const std::string dir = make_temp_dir();
  {
    MigrationJournal j(dir);
    ASSERT_TRUE(j.append(rec(JournalRecordKind::kStaged, 4, 7, 0, 1)));
  }
  const auto r = MigrationJournal::recover(dir);
  ASSERT_EQ(r.pending_staged.size(), 1u);
  EXPECT_TRUE(r.overrides.empty()) << "staged-but-unadopted never owned";
  EXPECT_TRUE(r.adopted.empty());
}

TEST(MigrationJournalTest, AdoptResolvesStagedAndOwns) {
  const std::string dir = make_temp_dir();
  {
    MigrationJournal j(dir);
    ASSERT_TRUE(j.append(rec(JournalRecordKind::kStaged, 4, 7, 0, 1)));
    ASSERT_TRUE(j.append(rec(JournalRecordKind::kAdopt, 4, 7, 0, 1)));
  }
  const auto r = MigrationJournal::recover(dir);
  EXPECT_TRUE(r.pending_staged.empty());
  ASSERT_EQ(r.adopted.size(), 1u);
  ASSERT_EQ(r.overrides.size(), 1u);
  EXPECT_EQ(r.overrides[0].kind, JournalRecordKind::kAdopt);
}

TEST(MigrationJournalTest, HighestEpochOverrideWinsPerComponent) {
  const std::string dir = make_temp_dir();
  {
    MigrationJournal j(dir);
    ASSERT_TRUE(j.append(rec(JournalRecordKind::kApplied, 2, 7, 0, 1)));
    ASSERT_TRUE(j.append(rec(JournalRecordKind::kApplied, 9, 8, 1, 2)));
    ASSERT_TRUE(j.append(rec(JournalRecordKind::kApplied, 6, 7, 1, 2)));
  }
  const auto r = MigrationJournal::recover(dir);
  EXPECT_EQ(r.max_epoch, 9u);
  ASSERT_EQ(r.overrides.size(), 2u);
  for (const auto& o : r.overrides) {
    if (o.component.value() == 7) {
      EXPECT_EQ(o.epoch, 6u);
      EXPECT_EQ(o.to.value(), 2u);
    } else {
      EXPECT_EQ(o.epoch, 9u);
    }
  }
}

TEST(MigrationJournalTest, TornTailIsDroppedNotFatal) {
  const std::string dir = make_temp_dir();
  {
    MigrationJournal j(dir);
    ASSERT_TRUE(j.append(rec(JournalRecordKind::kApplied, 1, 7, 0, 1)));
    ASSERT_TRUE(j.append(rec(JournalRecordKind::kApplied, 2, 7, 1, 0)));
  }
  // Chop bytes off the end: the second record becomes a torn append.
  const std::string path = MigrationJournal(dir).path();
  const auto full = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, full - 3);
  const auto r = MigrationJournal::recover(dir);
  ASSERT_EQ(r.records.size(), 1u) << "valid prefix survives, torn tail gone";
  EXPECT_EQ(r.records[0].epoch, 1u);

  // The journal stays appendable after the torn tail (recovery truncates
  // or the next append supersedes; either way new records must land).
  MigrationJournal j(dir);
  ASSERT_TRUE(j.append(rec(JournalRecordKind::kApplied, 3, 7, 0, 1)));
}

TEST(MigrationJournalTest, SliceFilesRoundTripAndPrune) {
  const std::string dir = make_temp_dir();
  const std::string p4 = MigrationJournal::slice_path(dir, 4);
  const std::string p7 = MigrationJournal::slice_path(dir, 7);
  EXPECT_NE(p4, p7);
  std::vector<std::byte> blob;
  for (int i = 0; i < 1000; ++i) blob.push_back(std::byte(i % 251));
  ASSERT_TRUE(MigrationJournal::write_slice_file(p4, blob));
  ASSERT_TRUE(MigrationJournal::write_slice_file(p7, blob));
  const auto back = MigrationJournal::read_slice_file(p4);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, blob);

  MigrationJournal::remove_slice_files(dir, 7);  // strictly below 7
  EXPECT_FALSE(MigrationJournal::read_slice_file(p4).has_value());
  EXPECT_TRUE(MigrationJournal::read_slice_file(p7).has_value());
}

// --- PlacementTable ---------------------------------------------------------

net::PlacementMove move(std::uint32_t component, std::uint32_t engine,
                        std::uint64_t epoch) {
  net::PlacementMove m;
  m.component = component;
  m.engine = engine;
  m.epoch = epoch;
  return m;
}

TEST(PlacementTableTest, StaticPlacementRulesUntilOverridden) {
  PlacementTable t({{ComponentId(1), EngineId(0)}, {ComponentId(2), EngineId(1)}});
  EXPECT_EQ(t.engine_of(ComponentId(1)).value(), 0u);
  EXPECT_EQ(t.epoch_of(ComponentId(1)), 0u);
  EXPECT_EQ(t.epoch(), 0u);
  EXPECT_TRUE(t.overrides().empty());

  EXPECT_TRUE(t.apply(move(1, 1, 3)));
  EXPECT_EQ(t.engine_of(ComponentId(1)).value(), 1u);
  EXPECT_EQ(t.epoch_of(ComponentId(1)), 3u);
  EXPECT_EQ(t.epoch(), 3u);
  EXPECT_EQ(t.engine_of(ComponentId(2)).value(), 1u) << "untouched static";
}

TEST(PlacementTableTest, StaleEpochIsRefused) {
  PlacementTable t({{ComponentId(1), EngineId(0)}});
  EXPECT_TRUE(t.apply(move(1, 1, 5)));
  EXPECT_FALSE(t.apply(move(1, 0, 5))) << "equal epoch must not flap";
  EXPECT_FALSE(t.apply(move(1, 0, 4))) << "lower epoch is stale";
  EXPECT_EQ(t.engine_of(ComponentId(1)).value(), 1u);
  EXPECT_TRUE(t.apply(move(1, 0, 6)));
  EXPECT_EQ(t.engine_of(ComponentId(1)).value(), 0u);
  EXPECT_EQ(t.epoch(), 6u);
}

TEST(PlacementTableTest, ApplyAllReturnsOnlyEffectiveMoves) {
  PlacementTable t({{ComponentId(1), EngineId(0)}, {ComponentId(2), EngineId(0)}});
  const auto applied = t.apply_all({move(1, 1, 2), move(2, 1, 1), move(1, 0, 1)});
  ASSERT_EQ(applied.size(), 2u);
  EXPECT_EQ(applied[0].component, 1u);
  EXPECT_EQ(applied[1].component, 2u);
  const auto snap = t.snapshot();
  EXPECT_EQ(snap.at(ComponentId(1)).value(), 1u);
  EXPECT_EQ(snap.at(ComponentId(2)).value(), 1u);
  EXPECT_EQ(t.overrides().size(), 2u);
}

// --- Slice codec ------------------------------------------------------------

MigrationSlice make_slice() {
  MigrationSlice s;
  s.epoch = 12;
  s.component = ComponentId(3);
  s.from = EngineId(0);
  s.to = EngineId(1);
  s.is_delta = false;

  checkpoint::ComponentSnapshot base;
  base.component = ComponentId(3);
  base.version = 9;
  base.vt = VirtualTime(5000);
  base.messages_processed = 41;
  base.state = {std::byte{0xde}, std::byte{0xad}};
  base.inputs.push_back({WireId(2), VirtualTime(4800), 17});
  checkpoint::OutputPosition out;
  out.wire = WireId(5);
  out.next_seq = 13;
  out.silence_through = VirtualTime(4999);
  base.outputs.push_back(out);
  s.plan.base = base;

  checkpoint::ComponentSnapshot delta = base;
  delta.version = 10;
  delta.is_delta = true;
  s.plan.deltas.push_back(delta);

  WireLogSlice w;
  w.wire = WireId(2);
  w.base_seq = 17;
  w.base_vt = VirtualTime(4800);
  w.closed = false;
  for (std::uint64_t i = 0; i < 5; ++i) {
    Message m;
    m.wire = WireId(2);
    m.vt = VirtualTime(5000 + static_cast<std::int64_t>(i) * 100);
    m.seq = 17 + i;
    m.payload = Payload(static_cast<std::int64_t>(i));
    w.records.push_back(m);
  }
  s.inputs.push_back(std::move(w));
  return s;
}

TEST(MigrationSliceTest, EncodeDecodeRoundTrips) {
  const MigrationSlice s = make_slice();
  const auto blob = s.encode();
  ASSERT_FALSE(blob.empty());
  const auto back = MigrationSlice::decode(blob);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->epoch, 12u);
  EXPECT_EQ(back->component.value(), 3u);
  EXPECT_EQ(back->from.value(), 0u);
  EXPECT_EQ(back->to.value(), 1u);
  EXPECT_FALSE(back->is_delta);
  EXPECT_EQ(back->plan.base.version, 9u);
  ASSERT_EQ(back->plan.deltas.size(), 1u);
  EXPECT_TRUE(back->plan.deltas[0].is_delta);
  ASSERT_EQ(back->inputs.size(), 1u);
  EXPECT_EQ(back->inputs[0].base_seq, 17u);
  ASSERT_EQ(back->inputs[0].records.size(), 5u);
  EXPECT_EQ(back->inputs[0].records[4].seq, 21u);
  EXPECT_EQ(back->inputs[0].records[4].payload.as_int(), 4);
  EXPECT_EQ(back->record_count(), 5u);
}

TEST(MigrationSliceTest, CorruptBlobDecodesToNullopt) {
  auto blob = make_slice().encode();
  EXPECT_FALSE(MigrationSlice::decode({}).has_value());
  blob.resize(blob.size() / 2);
  EXPECT_FALSE(MigrationSlice::decode(blob).has_value());
}

// --- Stream channel ---------------------------------------------------------

std::vector<std::byte> make_blob(std::size_t n) {
  std::vector<std::byte> b;
  b.reserve(n);
  for (std::size_t i = 0; i < n; ++i) b.push_back(std::byte((i * 7 + 3) % 256));
  return b;
}

/// Drives sender -> receiver to completion over a lossless in-memory link,
/// honoring the window: every receiver reply is fed straight back.
void pump(net::StreamSender& sender, net::StreamReceiver& receiver) {
  int guard = 100000;
  while (!sender.done() && !sender.failed() && guard-- > 0) {
    const auto msg = sender.next_message();
    if (!msg) {
      FAIL() << "sender stalled: window full but no ack pending";
      return;
    }
    std::optional<net::NetMessage> reply;
    switch (msg->type) {
      case net::NetMsgType::kStreamOpen:
        reply = receiver.on_open(net::StreamOpenBody::decode(msg->payload));
        break;
      case net::NetMsgType::kStreamChunk:
        reply = receiver.on_chunk(net::StreamChunkBody::decode(msg->payload));
        break;
      case net::NetMsgType::kStreamClose:
        receiver.on_close(net::StreamCloseBody::decode(msg->payload));
        break;
      default:
        FAIL() << "unexpected message type";
        return;
    }
    if (reply) {
      ASSERT_EQ(reply->type, net::NetMsgType::kStreamAck);
      sender.on_ack(net::StreamAckBody::decode(reply->payload));
    }
  }
  ASSERT_GT(guard, 0) << "transfer did not converge";
}

TEST(StreamChannelTest, BlobSurvivesChunkedTransfer) {
  const auto blob = make_blob(100 * 1024 + 37);  // deliberately unaligned
  std::optional<net::StreamOpenBody> completed_open;
  std::vector<std::byte> completed_blob;
  net::StreamReceiver receiver(
      [&](const net::StreamOpenBody& open, std::vector<std::byte> b) {
        completed_open = open;
        completed_blob = std::move(b);
      });
  net::StreamSender::Options opt;
  opt.chunk_bytes = 4096;
  opt.window = 3;
  net::StreamSender sender(42, kSliceBulk, "left", blob, opt);
  pump(sender, receiver);
  ASSERT_TRUE(sender.done());
  ASSERT_TRUE(completed_open.has_value());
  EXPECT_EQ(completed_open->stream_id, 42u);
  EXPECT_EQ(completed_open->kind, kSliceBulk);
  EXPECT_EQ(completed_open->sender, "left");
  EXPECT_EQ(completed_blob, blob);
  EXPECT_EQ(receiver.partial_streams(), 0u) << "completed stream is dropped";
}

TEST(StreamChannelTest, WindowBoundsInFlightChunks) {
  const auto blob = make_blob(64 * 1024);
  net::StreamReceiver receiver([](const net::StreamOpenBody&,
                                  std::vector<std::byte>) {});
  net::StreamSender::Options opt;
  opt.chunk_bytes = 1024;
  opt.window = 2;
  net::StreamSender sender(1, kSliceBulk, "left", blob, opt);

  // Open first, then withhold every ack: the sender must stop at `window`
  // chunks instead of flooding the bounded peer queue.
  auto open = sender.next_message();
  ASSERT_TRUE(open && open->type == net::NetMsgType::kStreamOpen);
  auto ack = receiver.on_open(net::StreamOpenBody::decode(open->payload));
  ASSERT_TRUE(ack);
  sender.on_ack(net::StreamAckBody::decode(ack->payload));
  int sent = 0;
  while (auto msg = sender.next_message()) {
    ASSERT_EQ(msg->type, net::NetMsgType::kStreamChunk);
    ++sent;
    ASSERT_LE(sent, 2) << "sender exceeded its unacked-chunk window";
  }
  EXPECT_EQ(sent, 2);
}

TEST(StreamChannelTest, ReopenResumesFromReceiverPrefix) {
  const auto blob = make_blob(32 * 1024);
  std::vector<std::byte> completed_blob;
  net::StreamReceiver receiver(
      [&](const net::StreamOpenBody&, std::vector<std::byte> b) {
        completed_blob = std::move(b);
      });
  net::StreamSender::Options opt;
  opt.chunk_bytes = 1024;
  opt.window = 4;
  net::StreamSender sender(9, kSliceDelta, "left", blob, opt);

  // Deliver the open and exactly five chunks, acking each; then "cut the
  // link": the sender's in-flight state resets, the receiver keeps its
  // partial prefix.
  auto open = sender.next_message();
  ASSERT_TRUE(open);
  auto ack = receiver.on_open(net::StreamOpenBody::decode(open->payload));
  ASSERT_TRUE(ack);
  sender.on_ack(net::StreamAckBody::decode(ack->payload));
  for (int i = 0; i < 5; ++i) {
    auto chunk = sender.next_message();
    ASSERT_TRUE(chunk && chunk->type == net::NetMsgType::kStreamChunk);
    auto a = receiver.on_chunk(net::StreamChunkBody::decode(chunk->payload));
    ASSERT_TRUE(a);
    sender.on_ack(net::StreamAckBody::decode(a->payload));
  }
  EXPECT_EQ(receiver.partial_streams(), 1u);
  const std::uint64_t before = receiver.bytes_received();
  EXPECT_EQ(before, 5u * 1024u);

  sender.reopen();
  pump(sender, receiver);
  ASSERT_TRUE(sender.done());
  EXPECT_EQ(completed_blob, blob);
  // Resume re-streamed only the tail, not the whole blob.
  EXPECT_EQ(receiver.bytes_received(), blob.size());
}

TEST(StreamChannelTest, AdmissionRefusalFailsTheSender) {
  const auto blob = make_blob(1024);
  bool completed = false;
  net::StreamReceiver receiver(
      [&](const net::StreamOpenBody&, std::vector<std::byte>) {
        completed = true;
      },
      [](const net::StreamOpenBody&) { return std::string("no space"); });
  net::StreamSender sender(3, kSliceBulk, "left", blob, {});
  auto open = sender.next_message();
  ASSERT_TRUE(open);
  auto ack = receiver.on_open(net::StreamOpenBody::decode(open->payload));
  ASSERT_TRUE(ack);
  const auto body = net::StreamAckBody::decode(ack->payload);
  EXPECT_FALSE(body.accept);
  sender.on_ack(body);
  EXPECT_TRUE(sender.failed());
  EXPECT_FALSE(sender.error().empty());
  EXPECT_FALSE(completed);
}

TEST(StreamChannelTest, AbortedCloseDiscardsPartialState) {
  const auto blob = make_blob(8 * 1024);
  bool completed = false;
  net::StreamReceiver receiver(
      [&](const net::StreamOpenBody&, std::vector<std::byte>) {
        completed = true;
      });
  net::StreamSender::Options opt;
  opt.chunk_bytes = 1024;
  net::StreamSender sender(4, kSliceBulk, "left", blob, opt);
  auto open = sender.next_message();
  ASSERT_TRUE(open);
  auto ack = receiver.on_open(net::StreamOpenBody::decode(open->payload));
  sender.on_ack(net::StreamAckBody::decode(ack->payload));
  auto chunk = sender.next_message();
  ASSERT_TRUE(chunk);
  (void)receiver.on_chunk(net::StreamChunkBody::decode(chunk->payload));
  ASSERT_EQ(receiver.partial_streams(), 1u);

  net::StreamCloseBody abort;
  abort.stream_id = 4;
  abort.ok = false;
  receiver.on_close(abort);
  EXPECT_EQ(receiver.partial_streams(), 0u);
  EXPECT_FALSE(completed);
}

TEST(StreamChannelTest, AbandonFromDropsOnlyThatSendersStreams) {
  net::StreamReceiver receiver([](const net::StreamOpenBody&,
                                  std::vector<std::byte>) {});
  net::StreamSender a(1, kSliceBulk, "left", make_blob(4096), {});
  net::StreamSender b(2, kSliceBulk, "mid", make_blob(4096), {});
  auto oa = a.next_message();
  auto ob = b.next_message();
  (void)receiver.on_open(net::StreamOpenBody::decode(oa->payload));
  (void)receiver.on_open(net::StreamOpenBody::decode(ob->payload));
  ASSERT_EQ(receiver.partial_streams(), 2u);
  receiver.abandon_from("left");
  EXPECT_EQ(receiver.partial_streams(), 1u);
}

// --- Fingerprint split ------------------------------------------------------

constexpr const char* kDeployA =
    "topology = wordcount\n"
    "param senders = 2\n"
    "partition left = 127.0.0.1:9001\n"
    "control left = 127.0.0.1:9101\n"
    "partition right = 127.0.0.1:9002\n"
    "control right = 127.0.0.1:9102\n"
    "place sender1 = left\n"
    "place sender2 = left\n"
    "place merger = right\n";

constexpr const char* kDeployMoved =
    "topology = wordcount\n"
    "param senders = 2\n"
    "partition left = 127.0.0.1:9001\n"
    "control left = 127.0.0.1:9101\n"
    "partition right = 127.0.0.1:9002\n"
    "control right = 127.0.0.1:9102\n"
    "place sender1 = left\n"
    "place sender2 = right\n"  // moved
    "place merger = right\n";

constexpr const char* kDeployOtherTopology =
    "topology = wordcount\n"
    "param senders = 3\n"  // different topology shape
    "partition left = 127.0.0.1:9001\n"
    "control left = 127.0.0.1:9101\n"
    "partition right = 127.0.0.1:9002\n"
    "control right = 127.0.0.1:9102\n"
    "place sender1 = left\n"
    "place sender2 = left\n"
    "place sender3 = left\n"
    "place merger = right\n";

TEST(FingerprintSplitTest, PlacementMoveKeepsTopologyFingerprint) {
  const auto a = net::DeploymentConfig::parse(kDeployA);
  const auto moved = net::DeploymentConfig::parse(kDeployMoved);
  EXPECT_EQ(a.topology_fingerprint(), moved.topology_fingerprint())
      << "a placement-only change must stay HELLO-compatible";
  EXPECT_NE(a.placement_fingerprint(), moved.placement_fingerprint());
}

TEST(FingerprintSplitTest, TopologyChangeBreaksTopologyFingerprint) {
  const auto a = net::DeploymentConfig::parse(kDeployA);
  const auto other = net::DeploymentConfig::parse(kDeployOtherTopology);
  EXPECT_NE(a.topology_fingerprint(), other.topology_fingerprint());
}

}  // namespace
