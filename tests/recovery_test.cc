// Recovery tests: the paper's correctness criterion (§II.A). Despite
// fail-stop engine failures and link failures, the observed behaviour must
// equal some correct failure-free execution, except for output stutter
// (re-delivered messages carrying duplicate timestamps).
#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "core/runtime.h"
#include "estimator/estimator.h"
#include "test_components.h"

namespace tart::core {
namespace {

using namespace std::chrono_literals;
namespace testing_ = tart::testing;

/// Figure-1 app on two engines: senders on engine 0, merger on engine 1.
struct RecoveryApp {
  Topology topo;
  ComponentId sender1, sender2, merger;
  WireId in1, in2, out;
  std::map<ComponentId, EngineId> placement;

  RecoveryApp() {
    sender1 = topo.add("sender1", [] {
      return std::make_unique<testing_::WordCountSender>();
    });
    sender2 = topo.add("sender2", [] {
      return std::make_unique<testing_::WordCountSender>();
    });
    merger = topo.add("merger", [] {
      return std::make_unique<testing_::TotalingMerger>();
    });
    topo.set_estimator(sender1, [] {
      return estimator::per_iteration_estimator(61000.0);
    });
    topo.set_estimator(sender2, [] {
      return estimator::per_iteration_estimator(61000.0);
    });
    topo.set_estimator(merger, [] {
      return std::make_unique<estimator::ConstantEstimator>(
          TickDuration::micros(400));
    });
    in1 = topo.external_input(sender1, PortId(0));
    in2 = topo.external_input(sender2, PortId(0));
    topo.connect(sender1, PortId(0), merger, PortId(0));
    topo.connect(sender2, PortId(0), merger, PortId(0));
    out = topo.external_output(merger, PortId(0));
    placement = {{sender1, EngineId(0)}, {sender2, EngineId(0)},
                 {merger, EngineId(1)}};
  }

  void inject_batch(Runtime& rt, int from, int count) const {
    for (int i = from; i < from + count; ++i) {
      rt.inject_at(in1, VirtualTime(1000 + i * 100000),
                   testing_::sentence({"the", "cat", "sat"}));
      rt.inject_at(in2, VirtualTime(500 + i * 90000),
                   testing_::sentence({"dog", "ran"}));
    }
  }
};

using VtPayload = std::vector<std::pair<std::int64_t, std::int64_t>>;

VtPayload dedup_by_vt(const std::vector<OutputRecord>& records) {
  VtPayload out;
  std::set<std::int64_t> seen;
  for (const auto& r : records) {
    if (seen.insert(r.vt.ticks()).second)
      out.emplace_back(r.vt.ticks(), r.payload.as_int());
  }
  return out;
}

VtPayload non_stutter(const std::vector<OutputRecord>& records) {
  VtPayload out;
  for (const auto& r : records)
    if (!r.stutter) out.emplace_back(r.vt.ticks(), r.payload.as_int());
  return out;
}

/// Clean failure-free reference run (deterministic), for exact comparison.
VtPayload reference_run(const RecoveryApp& proto, int total_batches) {
  RecoveryApp app;  // same ids by construction
  RuntimeConfig config;
  config.checkpoint.every_n_messages = 2;
  Runtime rt(app.topo, app.placement, config);
  rt.start();
  app.inject_batch(rt, 0, total_batches);
  EXPECT_TRUE(rt.drain());
  auto result = dedup_by_vt(rt.output_records(app.out));
  rt.stop();
  (void)proto;
  return result;
}

class RecoveryTest : public ::testing::Test {
 protected:
  static constexpr int kBatches = 20;  // 2 messages per batch
};

TEST_F(RecoveryTest, MergerEngineCrashAndFailover) {
  const RecoveryApp proto;
  const VtPayload expected = reference_run(proto, kBatches);

  RecoveryApp app;
  RuntimeConfig config;
  config.checkpoint.every_n_messages = 2;
  Runtime rt(app.topo, app.placement, config);
  rt.start();

  app.inject_batch(rt, 0, kBatches / 2);
  // Let some processing (and checkpoints) happen, then fail the merger.
  std::this_thread::sleep_for(30ms);
  rt.crash_engine(EngineId(1));
  const auto pre_crash = non_stutter(rt.output_records(app.out));

  rt.recover_engine(EngineId(1));
  app.inject_batch(rt, kBatches / 2, kBatches / 2);
  ASSERT_TRUE(rt.drain());

  const auto all = rt.output_records(app.out);
  const VtPayload deduped = dedup_by_vt(all);
  rt.stop();

  // Exactly the failure-free behaviour, modulo stutter.
  EXPECT_EQ(deduped, expected);
  // Everything delivered before the crash is a prefix of the final stream.
  ASSERT_LE(pre_crash.size(), deduped.size());
  for (std::size_t i = 0; i < pre_crash.size(); ++i)
    EXPECT_EQ(deduped[i], pre_crash[i]) << "at " << i;
}

TEST_F(RecoveryTest, SenderEngineCrashAndFailover) {
  const RecoveryApp proto;
  const VtPayload expected = reference_run(proto, kBatches);

  RecoveryApp app;
  RuntimeConfig config;
  config.checkpoint.every_n_messages = 2;
  Runtime rt(app.topo, app.placement, config);
  rt.start();

  app.inject_batch(rt, 0, kBatches / 2);
  std::this_thread::sleep_for(30ms);
  rt.crash_engine(EngineId(0));  // both senders die; their state replays
  rt.recover_engine(EngineId(0));
  app.inject_batch(rt, kBatches / 2, kBatches / 2);
  ASSERT_TRUE(rt.drain());

  const VtPayload deduped = dedup_by_vt(rt.output_records(app.out));
  rt.stop();
  EXPECT_EQ(deduped, expected);
}

TEST_F(RecoveryTest, CrashWithoutAnyCheckpointReplaysFromLog) {
  const RecoveryApp proto;
  RecoveryApp ref_app;
  RuntimeConfig no_ckpt;  // checkpointing disabled
  Runtime ref(ref_app.topo, ref_app.placement, no_ckpt);
  ref.start();
  ref_app.inject_batch(ref, 0, 6);
  ASSERT_TRUE(ref.drain());
  const VtPayload expected = dedup_by_vt(ref.output_records(ref_app.out));
  ref.stop();

  RecoveryApp app;
  Runtime rt(app.topo, app.placement, no_ckpt);
  rt.start();
  app.inject_batch(rt, 0, 3);
  std::this_thread::sleep_for(20ms);
  rt.crash_engine(EngineId(1));
  rt.recover_engine(EngineId(1));  // no checkpoint: replay from the start
  app.inject_batch(rt, 3, 3);
  ASSERT_TRUE(rt.drain());
  const VtPayload deduped = dedup_by_vt(rt.output_records(app.out));
  rt.stop();
  EXPECT_EQ(deduped, expected);
  (void)proto;
}

TEST_F(RecoveryTest, SequentialCrashesOfBothEngines) {
  const RecoveryApp proto;
  const VtPayload expected = reference_run(proto, kBatches);

  RecoveryApp app;
  RuntimeConfig config;
  config.checkpoint.every_n_messages = 2;
  Runtime rt(app.topo, app.placement, config);
  rt.start();

  app.inject_batch(rt, 0, kBatches / 4);
  std::this_thread::sleep_for(20ms);
  rt.crash_engine(EngineId(1));
  rt.recover_engine(EngineId(1));

  app.inject_batch(rt, kBatches / 4, kBatches / 4);
  std::this_thread::sleep_for(20ms);
  rt.crash_engine(EngineId(0));
  rt.recover_engine(EngineId(0));

  app.inject_batch(rt, kBatches / 2, kBatches / 2);
  ASSERT_TRUE(rt.drain());
  const VtPayload deduped = dedup_by_vt(rt.output_records(app.out));
  rt.stop();
  EXPECT_EQ(deduped, expected);
}

TEST_F(RecoveryTest, RecoveredStateIsBitIdenticalToCleanRun) {
  RecoveryApp clean_app;
  RuntimeConfig config;
  config.checkpoint.every_n_messages = 3;
  Runtime clean(clean_app.topo, clean_app.placement, config);
  clean.start();
  clean_app.inject_batch(clean, 0, 10);
  ASSERT_TRUE(clean.drain());
  const auto clean_sender = clean.state_fingerprint(clean_app.sender1);
  const auto clean_merger = clean.state_fingerprint(clean_app.merger);
  clean.stop();

  RecoveryApp app;
  Runtime rt(app.topo, app.placement, config);
  rt.start();
  app.inject_batch(rt, 0, 5);
  std::this_thread::sleep_for(20ms);
  rt.crash_engine(EngineId(1));
  rt.recover_engine(EngineId(1));
  app.inject_batch(rt, 5, 5);
  ASSERT_TRUE(rt.drain());
  EXPECT_EQ(rt.state_fingerprint(app.sender1), clean_sender);
  EXPECT_EQ(rt.state_fingerprint(app.merger), clean_merger);
  rt.stop();
}

TEST_F(RecoveryTest, ReplayedDuplicatesAreDiscardedByTimestamp) {
  RecoveryApp app;
  RuntimeConfig config;
  config.checkpoint.every_n_messages = 4;
  Runtime rt(app.topo, app.placement, config);
  rt.start();
  // 6 messages per sender with a checkpoint every 4: messages 5..6 are
  // past the last checkpoint and will be re-executed (and re-sent) after
  // the crash.
  app.inject_batch(rt, 0, 6);
  std::this_thread::sleep_for(30ms);
  rt.crash_engine(EngineId(0));
  rt.recover_engine(EngineId(0));
  app.inject_batch(rt, 6, 2);
  ASSERT_TRUE(rt.drain());
  // Recovered senders re-execute from their checkpoints and re-send;
  // the merger discards the duplicates by timestamp (§II.F.4).
  EXPECT_GT(rt.metrics(app.merger).duplicates_discarded, 0u);
  rt.stop();
}

TEST_F(RecoveryTest, LinkFailureIsMaskedByReliableTransport) {
  const RecoveryApp proto;
  const VtPayload expected = reference_run(proto, 10);

  RecoveryApp app;
  RuntimeConfig config;
  config.checkpoint.every_n_messages = 2;
  transport::LinkConfig link;
  link.base_delay = 100us;
  link.loss_probability = 0.1;
  link.seed = 3;
  config.links[{EngineId(0), EngineId(1)}] = link;
  Runtime rt(app.topo, app.placement, config);
  rt.start();

  app.inject_batch(rt, 0, 5);
  std::this_thread::sleep_for(5ms);
  rt.set_link_down(EngineId(0), EngineId(1), true);
  app.inject_batch(rt, 5, 3);
  std::this_thread::sleep_for(10ms);
  rt.set_link_down(EngineId(0), EngineId(1), false);
  app.inject_batch(rt, 8, 2);
  ASSERT_TRUE(rt.drain(60s));
  const VtPayload deduped = dedup_by_vt(rt.output_records(app.out));
  rt.stop();
  EXPECT_EQ(deduped, expected);
}

TEST_F(RecoveryTest, StabilityAcksTrimRetention) {
  RecoveryApp app;
  RuntimeConfig with_ckpt;
  with_ckpt.checkpoint.every_n_messages = 1;
  Runtime rt(app.topo, app.placement, with_ckpt);
  rt.start();
  app.inject_batch(rt, 0, 15);
  ASSERT_TRUE(rt.drain());
  // The merger checkpointed after every message; all but a small tail of
  // the senders' retained output must have been trimmed.
  std::this_thread::sleep_for(20ms);  // let final acks land
  const std::size_t with = rt.retained_messages(app.sender1);
  rt.stop();

  RecoveryApp app2;
  RuntimeConfig no_ckpt;
  Runtime rt2(app2.topo, app2.placement, no_ckpt);
  rt2.start();
  app2.inject_batch(rt2, 0, 15);
  ASSERT_TRUE(rt2.drain());
  const std::size_t without = rt2.retained_messages(app2.sender1);
  rt2.stop();

  EXPECT_EQ(without, 15u);  // nothing ever trimmed
  EXPECT_LT(with, without);
}

TEST_F(RecoveryTest, ReplicaReceivesSoftCheckpoints) {
  RecoveryApp app;
  RuntimeConfig config;
  config.checkpoint.every_n_messages = 2;
  config.checkpoint.full_every_k = 3;
  Runtime rt(app.topo, app.placement, config);
  rt.start();
  app.inject_batch(rt, 0, 12);
  ASSERT_TRUE(rt.drain());
  EXPECT_GT(rt.replica().snapshots_received(), 0u);
  EXPECT_GT(rt.replica().bytes_received(), 0u);
  EXPECT_GT(rt.replica().latest_version(app.merger), 0u);
  EXPECT_GT(rt.metrics(app.merger).checkpoints_taken, 0u);
  rt.stop();
}

TEST_F(RecoveryTest, CrashedEngineReportsNoMetricsAndDropsFrames) {
  RecoveryApp app;
  RuntimeConfig config;
  Runtime rt(app.topo, app.placement, config);
  rt.start();
  rt.crash_engine(EngineId(1));
  // Frames toward the dead merger vanish without crashing the process.
  app.inject_batch(rt, 0, 2);
  std::this_thread::sleep_for(10ms);
  EXPECT_EQ(rt.metrics(app.merger).messages_processed, 0u);
  rt.recover_engine(EngineId(1));
  ASSERT_TRUE(rt.drain());
  // After recovery + replay the merger catches up completely.
  EXPECT_EQ(rt.output_records(app.out).size(), 4u);
  rt.stop();
}

TEST_F(RecoveryTest, CallServiceCrashAndFailover) {
  Topology topo;
  const auto caller = topo.add("caller", [] {
    return std::make_unique<testing_::CallingComponent>();
  });
  const auto service = topo.add("service", [] {
    return std::make_unique<testing_::ScalingService>();
  });
  const WireId in = topo.external_input(caller, PortId(0));
  topo.connect_call(caller, PortId(1), service, PortId(0));
  const WireId out = topo.external_output(caller, PortId(0));
  const std::map<ComponentId, EngineId> placement{
      {caller, EngineId(0)}, {service, EngineId(1)}};

  RuntimeConfig config;
  config.checkpoint.every_n_messages = 1;
  Runtime rt(topo, placement, config);
  rt.start();
  for (int i = 1; i <= 3; ++i)
    rt.inject_at(in, VirtualTime(i * 10000), Payload(std::int64_t{10}));
  std::this_thread::sleep_for(20ms);

  rt.crash_engine(EngineId(1));
  rt.recover_engine(EngineId(1));

  for (int i = 4; i <= 6; ++i)
    rt.inject_at(in, VirtualTime(i * 10000), Payload(std::int64_t{10}));
  ASSERT_TRUE(rt.drain());
  const auto deduped = dedup_by_vt(rt.output_records(out));
  rt.stop();
  ASSERT_EQ(deduped.size(), 6u);
  for (int i = 0; i < 6; ++i)
    EXPECT_EQ(deduped[static_cast<std::size_t>(i)].second, 10 * (i + 1));
}

}  // namespace
}  // namespace tart::core

namespace tart::core {
namespace {

using namespace std::chrono_literals;
namespace testing2_ = tart::testing;

// Determinism faults under failover (§II.G.4): with online calibration
// enabled, estimator recalibrations are non-deterministic events that are
// synchronously logged; replay after a crash must re-apply them at their
// logged effective virtual times, so everything delivered before the crash
// is reproduced identically (a prefix of the final deduplicated stream).
TEST(CalibrationRecoveryTest, LoggedFaultsMakeReplayExact) {
  RecoveryApp app;
  RuntimeConfig config;
  config.checkpoint.every_n_messages = 3;
  config.calibration = true;
  config.calibrator.min_samples = 20;
  config.calibrator.refit_interval = 10;
  config.calibrator.drift_threshold = 0.01;
  Runtime rt(app.topo, app.placement, config);
  rt.start();

  app.inject_batch(rt, 0, 15);
  std::this_thread::sleep_for(40ms);  // process + calibrate + checkpoint
  const auto pre_crash = non_stutter(rt.output_records(app.out));
  const auto faults_before = rt.fault_log().total_records();

  // Crash the senders (whose estimators recalibrated) AND the merger.
  rt.crash_engine(EngineId(0));
  rt.recover_engine(EngineId(0));
  app.inject_batch(rt, 15, 5);
  ASSERT_TRUE(rt.drain());

  // Live measured handler times are microseconds against a 61000*len
  // prior: calibration must have fired at least once.
  EXPECT_GT(faults_before, 0u);

  // Everything the consumer saw before the crash is reproduced with
  // identical virtual times and payloads.
  const auto deduped = dedup_by_vt(rt.output_records(app.out));
  ASSERT_GE(deduped.size(), pre_crash.size());
  for (std::size_t i = 0; i < pre_crash.size(); ++i)
    EXPECT_EQ(deduped[i], pre_crash[i]) << "at " << i;
  // And nothing was lost or double-counted: one output per input message.
  EXPECT_EQ(deduped.size(), 40u);
  rt.stop();
}

// A second failover must also replay the faults logged before the first.
TEST(CalibrationRecoveryTest, FaultsSurviveRepeatedFailovers) {
  RecoveryApp app;
  RuntimeConfig config;
  config.checkpoint.every_n_messages = 2;
  config.calibration = true;
  config.calibrator.min_samples = 10;
  config.calibrator.refit_interval = 5;
  config.calibrator.drift_threshold = 0.01;
  Runtime rt(app.topo, app.placement, config);
  rt.start();

  app.inject_batch(rt, 0, 10);
  std::this_thread::sleep_for(30ms);
  rt.crash_engine(EngineId(0));
  rt.recover_engine(EngineId(0));
  app.inject_batch(rt, 10, 5);
  std::this_thread::sleep_for(30ms);
  const auto pre_second = non_stutter(rt.output_records(app.out));
  rt.crash_engine(EngineId(0));
  rt.recover_engine(EngineId(0));
  app.inject_batch(rt, 15, 5);
  ASSERT_TRUE(rt.drain());

  const auto deduped = dedup_by_vt(rt.output_records(app.out));
  ASSERT_GE(deduped.size(), pre_second.size());
  for (std::size_t i = 0; i < pre_second.size(); ++i)
    EXPECT_EQ(deduped[i], pre_second[i]) << "at " << i;
  EXPECT_EQ(deduped.size(), 40u);
  rt.stop();
}

}  // namespace
}  // namespace tart::core
