// Two-process deployment soak: real tart-node processes over loopback TCP.
//
// The wordcount topology is split across two nodes — "left" hosts the
// senders (and the external inputs), "right" hosts the merger (and the
// external output). The test drives the deployment through the control
// protocol and checks the paper's end-to-end claim for real processes:
//
//   1. a clean two-process run produces exactly the single-process
//      baseline's output stream (placement-transparency);
//   2. SIGKILL-ing the left node mid-run and restarting it over the same
//      log_dir recovers transparently: logged inputs replay, the surviving
//      merger discards the duplicates by timestamp, and the final output
//      stream is STILL byte-for-byte the baseline (§II.F);
//   3. the surviving node's flight-recorder traces from the clean and the
//      killed run are recovery-equivalent (tart-trace diff --recovery);
//   4. the socket-transport counters surface in MetricsSnapshot: frames
//      and bytes flow in the clean run, reconnects after the kill.
#include <gtest/gtest.h>
#include <signal.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "core/runtime.h"
#include "apps/wordcount.h"
#include "net/control.h"
#include "net/socket.h"
#include "net/topologies.h"

using namespace tart;
using namespace std::chrono_literals;

namespace {

// --- deterministic injection script -----------------------------------------

struct Step {
  std::string input;  ///< "sender1" / "sender2"
  std::int64_t vt;
  std::vector<std::string> words;
};

std::vector<Step> make_script(int n) {
  const std::vector<std::string> vocab = {"stream", "replay", "virtual",
                                          "time",   "socket", "engine"};
  std::vector<Step> steps;
  for (int i = 0; i < n; ++i) {
    Step s;
    s.input = (i % 2 == 0) ? "sender1" : "sender2";
    s.vt = 1000 * (i + 1);
    const int len = (i % 4) + 1;
    for (int w = 0; w < len; ++w)
      s.words.push_back(vocab[static_cast<std::size_t>((i + w) % 6)]);
    steps.push_back(std::move(s));
  }
  return steps;
}

using OutputStream = std::vector<std::pair<std::int64_t, std::int64_t>>;

/// Single-process ground truth over the identical topology + script.
OutputStream baseline(const std::vector<Step>& steps) {
  auto built = net::build_topology("wordcount", {{"senders", "2"}});
  std::map<ComponentId, EngineId> placement;
  for (const auto& [name, id] : built.components) placement[id] = EngineId(0);
  core::Runtime rt(built.topology, placement, core::RuntimeConfig{});
  rt.start();
  for (const auto& s : steps)
    rt.inject_at(built.inputs.at(s.input), VirtualTime(s.vt),
                 apps::sentence(s.words));
  EXPECT_TRUE(rt.drain());
  OutputStream out;
  for (const auto& rec : rt.output_records(built.outputs.at("total")))
    if (!rec.stutter) out.emplace_back(rec.vt.ticks(), rec.payload.as_int());
  rt.stop();
  return out;
}

// --- process plumbing -------------------------------------------------------

std::uint16_t free_port() {
  std::string err;
  net::Fd fd = net::listen_tcp(*net::SockAddr::parse("127.0.0.1:0"), &err);
  EXPECT_TRUE(fd.valid()) << err;
  return net::local_port(fd.get());
}

std::string make_temp_dir() {
  char tmpl[] = "/tmp/tart_net_XXXXXX";
  const char* dir = mkdtemp(tmpl);
  EXPECT_NE(dir, nullptr);
  return dir;
}

void write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << content;
}

struct Deployment {
  std::string config_path;
  std::string left_control;
  std::string right_control;
};

Deployment write_deployment(const std::string& dir) {
  const auto p = [] { return std::to_string(free_port()); };
  Deployment d;
  d.left_control = "127.0.0.1:" + p();
  d.right_control = "127.0.0.1:" + p();
  d.config_path = dir + "/deploy.conf";
  write_file(d.config_path,
             "# two-node wordcount split\n"
             "topology = wordcount\n"
             "param senders = 2\n"
             "partition left = 127.0.0.1:" + p() + "\n"
             "control left = " + d.left_control + "\n"
             "partition right = 127.0.0.1:" + p() + "\n"
             "control right = " + d.right_control + "\n"
             "place sender1 = left\n"
             "place sender2 = left\n"
             "place merger = right\n");
  return d;
}

/// One tart-node child process. SIGKILLs on destruction unless reaped.
class NodeProc {
 public:
  NodeProc(const std::string& config, const std::string& partition,
           const std::vector<std::string>& extra) {
    std::vector<std::string> args = {TART_NODE_BIN, config, partition};
    args.insert(args.end(), extra.begin(), extra.end());
    pid_ = fork();
    if (pid_ == 0) {
      std::vector<char*> argv;
      argv.reserve(args.size() + 1);
      for (auto& a : args) argv.push_back(a.data());
      argv.push_back(nullptr);
      execv(TART_NODE_BIN, argv.data());
      _exit(127);
    }
  }

  ~NodeProc() {
    if (pid_ > 0) {
      ::kill(pid_, SIGKILL);
      (void)reap();
    }
  }

  void kill9() const { ASSERT_EQ(::kill(pid_, SIGKILL), 0); }

  int reap() {
    if (pid_ <= 0) return -1;
    int status = 0;
    waitpid(pid_, &status, 0);
    pid_ = -1;
    return status;
  }

  [[nodiscard]] pid_t pid() const { return pid_; }

 private:
  pid_t pid_ = -1;
};

net::ControlClient connect_or_die(const std::string& addr) {
  auto client = net::ControlClient::connect(addr, 15s);
  if (!client) {
    ADD_FAILURE() << "control connect to " << addr << " timed out";
    std::abort();
  }
  return std::move(*client);
}

OutputStream fetch_outputs(net::ControlClient& client) {
  OutputStream out;
  for (const auto& rec : client.outputs("total"))
    if (!rec.stutter) out.emplace_back(rec.vt, rec.payload.as_int());
  return out;
}

int run_trace_diff(const std::string& a, const std::string& b) {
  const pid_t pid = fork();
  if (pid == 0) {
    execl(TART_TRACE_BIN, TART_TRACE_BIN, "diff", a.c_str(), b.c_str(),
          "--recovery", static_cast<char*>(nullptr));
    _exit(127);
  }
  int status = 0;
  waitpid(pid, &status, 0);
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

}  // namespace

TEST(NetProcessTest, TwoProcessRunMatchesBaselineAndSurvivesSigkill) {
  const auto steps = make_script(60);
  const OutputStream expected = baseline(steps);
  ASSERT_FALSE(expected.empty());

  const std::string dir = make_temp_dir();
  const std::string right_clean_trace = dir + "/right_clean.trace";
  const std::string right_kill_trace = dir + "/right_kill.trace";

  // --- Run 1: clean two-process run --------------------------------------
  OutputStream clean_out;
  {
    const Deployment d = write_deployment(dir);
    ASSERT_EQ(mkdir((dir + "/clean_left").c_str(), 0755), 0);
    NodeProc left(d.config_path, "left", {"--log-dir=" + dir + "/clean_left"});
    NodeProc right(d.config_path, "right",
                   {"--trace=" + right_clean_trace});

    auto left_ctl = connect_or_die(d.left_control);
    auto right_ctl = connect_or_die(d.right_control);
    left_ctl.ping();
    right_ctl.ping();

    for (const auto& s : steps)
      EXPECT_EQ(left_ctl.inject(s.input, s.vt, apps::sentence(s.words)),
                s.vt);
    ASSERT_TRUE(left_ctl.drain(30s)) << "left never quiesced";
    ASSERT_TRUE(right_ctl.drain(30s)) << "right never quiesced";
    clean_out = fetch_outputs(right_ctl);

    // Socket transport demonstrably carried the stream.
    const auto lm = left_ctl.metrics();
    const auto rm = right_ctl.metrics();
    EXPECT_GT(lm.net_frames_out, 0u);
    EXPECT_GT(lm.net_bytes_out, 0u);
    EXPECT_GT(rm.net_frames_in, 0u);
    EXPECT_GT(rm.net_bytes_in, 0u);
    EXPECT_EQ(rm.messages_processed, steps.size());

    // Telemetry over control: the merger node reports its registry samples
    // (per-component labelled counters) and its silence wavefront.
    const auto samples = right_ctl.obs_samples();
    bool merger_counter_seen = false;
    for (const auto& s : samples) {
      if (s.name != "tart_messages_processed_total") continue;
      for (const auto& l : s.labels)
        if (l.key == "component" && l.value == "merger") {
          EXPECT_EQ(s.counter_value, steps.size());
          merger_counter_seen = true;
        }
    }
    EXPECT_TRUE(merger_counter_seen)
        << "no labelled merger counter in the obs dump";

    const auto status = right_ctl.status();
    ASSERT_EQ(status.components.size(), 1u);  // only the merger is local
    EXPECT_EQ(status.components[0].name, "merger");
    EXPECT_FALSE(status.components[0].crashed);
    EXPECT_FALSE(status.components[0].held);  // drained: nothing pending
    EXPECT_EQ(status.components[0].pending, 0u);
    ASSERT_EQ(status.components[0].inputs.size(), 2u);
    for (const auto& w : status.components[0].inputs)
      EXPECT_FALSE(w.blocking);

    left_ctl.shutdown_node();
    right_ctl.shutdown_node();
    EXPECT_EQ(left.reap(), 0);
    EXPECT_EQ(right.reap(), 0);
  }
  EXPECT_EQ(clean_out, expected)
      << "two-process deployment diverged from the single-process baseline";

  // --- Run 2: SIGKILL left mid-run, restart from its log ------------------
  OutputStream kill_out;
  {
    const Deployment d = write_deployment(dir);
    const std::string log_dir = dir + "/kill_left";
    ASSERT_EQ(mkdir(log_dir.c_str(), 0755), 0);
    NodeProc right(d.config_path, "right", {"--trace=" + right_kill_trace});
    auto right_ctl = connect_or_die(d.right_control);
    const std::size_t half = steps.size() / 2;

    {
      NodeProc left(d.config_path, "left", {"--log-dir=" + log_dir});
      auto left_ctl = connect_or_die(d.left_control);
      for (std::size_t i = 0; i < half; ++i)
        EXPECT_EQ(left_ctl.inject(steps[i].input, steps[i].vt,
                                  apps::sentence(steps[i].words)),
                  steps[i].vt);
      // Let the first half mostly reach the merger — otherwise the kill
      // can land before a single frame flushes and the replay produces no
      // duplicates to discard. "Mostly": the merger's dispatch frontier
      // trails the newest arrival (it cannot process a tick until silence
      // covers it on BOTH sender wires), so the tail stays pending until
      // the post-restart drain. No drain here: the senders' own state (seq
      // counters, retention) is still volatile when the power goes out.
      const auto deadline = std::chrono::steady_clock::now() + 10s;
      std::uint64_t seen = 0;
      while ((seen = right_ctl.metrics().messages_processed) < half / 2) {
        ASSERT_LT(std::chrono::steady_clock::now(), deadline)
            << "merger only processed " << seen << "/" << half
            << " before the kill window";
        std::this_thread::sleep_for(5ms);
      }
      // Freeze the process before killing it. A SIGKILLed process's kernel
      // sends FIN (the peer sees EOF), but a frozen one keeps its socket
      // open and just goes silent — which is what heartbeat detection is
      // for. The right node must declare the link down by misses alone.
      ASSERT_EQ(::kill(left.pid(), SIGSTOP), 0);
      const auto hb_deadline = std::chrono::steady_clock::now() + 20s;
      while (right_ctl.metrics().net_heartbeat_misses == 0) {
        ASSERT_LT(std::chrono::steady_clock::now(), hb_deadline)
            << "right never noticed the frozen peer";
        std::this_thread::sleep_for(20ms);
      }
      left.kill9();
      left.reap();
    }

    // Cold restart over the same stable storage: the node replays its
    // logged inputs; the surviving merger discards the duplicates.
    NodeProc left(d.config_path, "left", {"--log-dir=" + log_dir});
    auto left_ctl = connect_or_die(d.left_control);
    for (std::size_t i = half; i < steps.size(); ++i)
      EXPECT_EQ(left_ctl.inject(steps[i].input, steps[i].vt,
                                apps::sentence(steps[i].words)),
                steps[i].vt);
    ASSERT_TRUE(left_ctl.drain(30s)) << "restarted left never quiesced";
    ASSERT_TRUE(right_ctl.drain(30s)) << "right never quiesced after kill";
    kill_out = fetch_outputs(right_ctl);

    const auto lm = left_ctl.metrics();
    const auto rm = right_ctl.metrics();
    EXPECT_GE(rm.net_reconnects, 1u)
        << "right must have re-accepted the restarted left";
    EXPECT_GT(rm.net_heartbeat_misses, 0u);
    EXPECT_GT(rm.net_frames_in, 0u);
    // The restarted node re-emits every logged tick. Each re-emission races
    // the link coming back up: frames sent once the link is up reach the
    // merger and are discarded as duplicates; frames emitted while the
    // link is still down are refused at the sender (and healed later by
    // seq/silence accounting). Either way the kill must leave a mark.
    EXPECT_GT(rm.duplicates_discarded + lm.net_frames_refused, 0u)
        << "a mid-run kill with replay must surface as duplicate discards "
           "or refused frames";
    EXPECT_EQ(rm.messages_processed, steps.size());

    left_ctl.shutdown_node();
    right_ctl.shutdown_node();
    EXPECT_EQ(left.reap(), 0);
    EXPECT_EQ(right.reap(), 0);
  }
  EXPECT_EQ(kill_out, expected)
      << "output stream after SIGKILL + restart diverged from baseline";

  // --- Run 3: the surviving node's traces are recovery-equivalent ---------
  EXPECT_EQ(run_trace_diff(right_clean_trace, right_kill_trace), 0)
      << "tart-trace diff --recovery flagged divergence on the surviving "
         "node";
}

// Durable-checkpoint variant of the kill/restart story: the left node
// checkpoints mid-run (covering + compacting its external log), is
// SIGKILLed, and comes back through the tiered fast path — checkpoint
// restore plus suffix-only replay — instead of a full-log replay. The
// output stream must still be byte-for-byte the single-process baseline,
// and the surviving merger's traces recovery-equivalent (docs/RECOVERY.md).
TEST(NetProcessTest, DurableCheckpointRestartMatchesBaseline) {
  const auto steps = make_script(40);
  const OutputStream expected = baseline(steps);
  ASSERT_FALSE(expected.empty());

  const std::string dir = make_temp_dir();
  const std::string right_clean_trace = dir + "/right_clean.trace";
  const std::string right_ckpt_trace = dir + "/right_ckpt.trace";

  // --- Reference: clean two-process run ------------------------------------
  OutputStream clean_out;
  {
    const Deployment d = write_deployment(dir);
    ASSERT_EQ(mkdir((dir + "/clean_left").c_str(), 0755), 0);
    NodeProc left(d.config_path, "left", {"--log-dir=" + dir + "/clean_left"});
    NodeProc right(d.config_path, "right", {"--trace=" + right_clean_trace});
    auto left_ctl = connect_or_die(d.left_control);
    auto right_ctl = connect_or_die(d.right_control);
    for (const auto& s : steps)
      EXPECT_EQ(left_ctl.inject(s.input, s.vt, apps::sentence(s.words)),
                s.vt);
    ASSERT_TRUE(left_ctl.drain(30s));
    ASSERT_TRUE(right_ctl.drain(30s));
    clean_out = fetch_outputs(right_ctl);
    left_ctl.shutdown_node();
    right_ctl.shutdown_node();
    EXPECT_EQ(left.reap(), 0);
    EXPECT_EQ(right.reap(), 0);
  }
  ASSERT_EQ(clean_out, expected);

  // --- Durable run: checkpoint, SIGKILL, tiered restart --------------------
  OutputStream ckpt_out;
  {
    const Deployment d = write_deployment(dir);
    const std::string log_dir = dir + "/ckpt_left";
    ASSERT_EQ(mkdir(log_dir.c_str(), 0755), 0);
    // Tiny segments so the mid-run checkpoint demonstrably reclaims
    // wholly-covered ones (log stays bounded, not just covered).
    const std::vector<std::string> durable_flags = {
        "--log-dir=" + log_dir, "--durable", "--segment-bytes=512"};
    NodeProc right(d.config_path, "right", {"--trace=" + right_ckpt_trace});
    auto right_ctl = connect_or_die(d.right_control);
    const std::size_t half = steps.size() / 2;
    const std::size_t kill_at = steps.size() * 3 / 4;

    {
      NodeProc left(d.config_path, "left", durable_flags);
      auto left_ctl = connect_or_die(d.left_control);
      for (std::size_t i = 0; i < half; ++i)
        EXPECT_EQ(left_ctl.inject(steps[i].input, steps[i].vt,
                                  apps::sentence(steps[i].words)),
                  steps[i].vt);
      // The senders consume their logged inputs almost immediately; wait
      // until they have, so the forced checkpoint covers the whole prefix.
      const auto deadline = std::chrono::steady_clock::now() + 10s;
      while (left_ctl.metrics().messages_processed < half) {
        ASSERT_LT(std::chrono::steady_clock::now(), deadline)
            << "left never consumed the pre-checkpoint prefix";
        std::this_thread::sleep_for(5ms);
      }
      const auto ck = left_ctl.checkpoint();
      ASSERT_TRUE(ck.ok) << ck.error;
      EXPECT_EQ(ck.covered_records, half);
      EXPECT_GT(ck.bytes, 0u);
      EXPECT_GT(ck.reclaimed_records, 0u)
          << "gated compaction reclaimed nothing despite tiny segments";

      // A post-checkpoint suffix the restart will have to replay.
      for (std::size_t i = half; i < kill_at; ++i)
        EXPECT_EQ(left_ctl.inject(steps[i].input, steps[i].vt,
                                  apps::sentence(steps[i].words)),
                  steps[i].vt);
      // log-before-ack: every acked injection above is already durable, so
      // the kill can land immediately.
      left.kill9();
      left.reap();
    }

    // Tiered restart over the same stable storage.
    NodeProc left(d.config_path, "left", durable_flags);
    auto left_ctl = connect_or_die(d.left_control);
    const auto deadline = std::chrono::steady_clock::now() + 10s;
    while (left_ctl.metrics().restart_covered_records == 0) {
      ASSERT_LT(std::chrono::steady_clock::now(), deadline)
          << "restarted left never reported a checkpoint-covered restart";
      std::this_thread::sleep_for(5ms);
    }
    const auto lm = left_ctl.metrics();
    EXPECT_EQ(lm.restart_covered_records, half)
        << "restart should skip exactly the checkpoint-covered prefix";
    EXPECT_EQ(lm.restart_suffix_records, kill_at - half)
        << "restart should replay exactly the post-checkpoint suffix";

    for (std::size_t i = kill_at; i < steps.size(); ++i)
      EXPECT_EQ(left_ctl.inject(steps[i].input, steps[i].vt,
                                apps::sentence(steps[i].words)),
                steps[i].vt);
    ASSERT_TRUE(left_ctl.drain(30s)) << "restarted left never quiesced";
    ASSERT_TRUE(right_ctl.drain(30s)) << "right never quiesced";
    ckpt_out = fetch_outputs(right_ctl);

    // The restarted node checkpoints again: durability survives recovery.
    const auto ck2 = left_ctl.checkpoint();
    EXPECT_TRUE(ck2.ok) << ck2.error;
    EXPECT_EQ(ck2.covered_records, steps.size());

    left_ctl.shutdown_node();
    right_ctl.shutdown_node();
    EXPECT_EQ(left.reap(), 0);
    EXPECT_EQ(right.reap(), 0);
  }
  EXPECT_EQ(ckpt_out, expected)
      << "output stream after checkpointed restart diverged from baseline";

  // The surviving merger cannot tell a tiered restart from a full replay.
  EXPECT_EQ(run_trace_diff(right_clean_trace, right_ckpt_trace), 0)
      << "tart-trace diff --recovery flagged divergence after tiered restart";
}
