// Property tests for the determinism guarantee (§II.A, §II.D): for a given
// external input log, the observable behaviour — every external output's
// (virtual time, payload) sequence and every component's final state — is
// a pure function of the log. It must not depend on placement, thread
// interleaving, link behaviour, or the silence-propagation strategy
// (§II.G.3: strategies "can be arbitrarily mixed ... without requiring a
// determinism fault").
//
// Each parameterized case generates a random layered DAG of stream
// operators and a random scripted workload from the seed, runs it under
// several radically different deployment configurations, and requires
// bit-identical observations.
#include <gtest/gtest.h>

#include <chrono>

#include "apps/streamops.h"
#include "core/runtime.h"
#include "estimator/estimator.h"
#include "random_app.h"

namespace tart::core {
namespace {

using namespace std::chrono_literals;

struct Observation {
  std::vector<std::vector<std::pair<std::int64_t, std::vector<std::int64_t>>>>
      outputs;
  std::vector<std::uint64_t> fingerprints;

  bool operator==(const Observation&) const = default;
};

Observation run_configuration(std::uint64_t seed, int placement_mode,
                              RuntimeConfig config) {
  proptest::GeneratedApp app = proptest::generate_app(seed);

  std::map<ComponentId, EngineId> placement;
  for (std::size_t i = 0; i < app.components.size(); ++i) {
    switch (placement_mode) {
      case 0:  // everything together
        placement[app.components[i]] = EngineId(0);
        break;
      case 1:  // one engine per component
        placement[app.components[i]] =
            EngineId(static_cast<std::uint32_t>(i));
        break;
      default:  // split in two
        placement[app.components[i]] = EngineId(i % 2 == 0 ? 0 : 1);
    }
  }

  Runtime rt(app.topo, placement, std::move(config));
  rt.start();
  proptest::feed_random_workload(rt, app, seed);
  EXPECT_TRUE(rt.drain(60s)) << "seed " << seed << " placement "
                             << placement_mode;

  Observation obs;
  for (const WireId out : app.outputs) {
    std::vector<std::pair<std::int64_t, std::vector<std::int64_t>>> records;
    VirtualTime prev(-1);
    for (const auto& r : rt.output_records(out)) {
      EXPECT_FALSE(r.stutter);
      EXPECT_GT(r.vt, prev) << "output not in strict vt order";
      prev = r.vt;
      records.emplace_back(r.vt.ticks(), r.payload.as_ints());
    }
    obs.outputs.push_back(std::move(records));
  }
  for (const ComponentId c : app.components)
    obs.fingerprints.push_back(rt.state_fingerprint(c));
  rt.stop();
  return obs;
}

class DeterminismProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DeterminismProperty, BehaviourIsAFunctionOfTheInputLogOnly) {
  const std::uint64_t seed = GetParam();

  RuntimeConfig curiosity;  // defaults
  const Observation reference = run_configuration(seed, 0, curiosity);

  // At least one output record somewhere, or the case is vacuous.
  std::size_t total = 0;
  for (const auto& out : reference.outputs) total += out.size();
  EXPECT_GT(total, 0u) << "seed " << seed;

  // Same app, one engine per component (maximal thread interleaving).
  EXPECT_EQ(run_configuration(seed, 1, RuntimeConfig{}), reference)
      << "placement changed behaviour, seed " << seed;

  // Aggressive silence pushes on top of curiosity.
  RuntimeConfig aggressive;
  aggressive.silence.aggressive_interval = 200us;
  EXPECT_EQ(run_configuration(seed, 2, aggressive), reference)
      << "aggressive silence changed behaviour, seed " << seed;

  // Lazy propagation only (no probes at all).
  RuntimeConfig lazy;
  lazy.silence.curiosity = false;
  EXPECT_EQ(run_configuration(seed, 0, lazy), reference)
      << "lazy silence changed behaviour, seed " << seed;

  // Split across two engines joined by a lossy, reordering link.
  RuntimeConfig lossy;
  transport::LinkConfig link;
  link.base_delay = 50us;
  link.loss_probability = 0.15;
  link.duplicate_probability = 0.1;
  link.reorder_probability = 0.2;
  link.seed = seed;
  lossy.links[{EngineId(0), EngineId(1)}] = link;
  EXPECT_EQ(run_configuration(seed, 2, lossy), reference)
      << "lossy link changed behaviour, seed " << seed;

  // Checkpointing along the way must be behaviour-neutral.
  RuntimeConfig with_ckpt;
  with_ckpt.checkpoint.every_n_messages = 3;
  EXPECT_EQ(run_configuration(seed, 2, with_ckpt), reference)
      << "checkpointing changed behaviour, seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(RandomApps, DeterminismProperty,
                         ::testing::Range<std::uint64_t>(1, 13));

}  // namespace
}  // namespace tart::core
