// Integration tests for the TART core runtime: topology construction, the
// Figure-1 merge application, virtual-time semantics, two-way calls,
// multi-engine deployment (direct and over simulated links), and the
// determinism property that the whole recovery story rests on.
#include <gtest/gtest.h>

#include <chrono>

#include "core/runtime.h"
#include "estimator/estimator.h"
#include "test_components.h"

namespace tart::core {
namespace {

using namespace std::chrono_literals;
namespace testing_ = tart::testing;

// --- Topology ---------------------------------------------------------------

TEST(TopologyTest, WireIdsAssignedInCreationOrder) {
  Topology topo;
  const auto a = topo.add("a", [] {
    return std::make_unique<testing_::Passthrough>();
  });
  const auto b = topo.add("b", [] {
    return std::make_unique<testing_::Passthrough>();
  });
  const WireId w0 = topo.external_input(a, PortId(0));
  const WireId w1 = topo.connect(a, PortId(0), b, PortId(0));
  const WireId w2 = topo.external_output(b, PortId(0));
  EXPECT_EQ(w0, WireId(0));
  EXPECT_EQ(w1, WireId(1));
  EXPECT_EQ(w2, WireId(2));
  EXPECT_EQ(topo.wire(w1).from, a);
  EXPECT_EQ(topo.wire(w1).to, b);
  EXPECT_EQ(topo.inputs_of(b), std::vector<WireId>{w1});
  EXPECT_EQ(topo.outputs_of(b), std::vector<WireId>{w2});
}

TEST(TopologyTest, CallCreatesPairedReplyWire) {
  Topology topo;
  const auto caller = topo.add("caller", [] {
    return std::make_unique<testing_::CallingComponent>();
  });
  const auto service = topo.add("service", [] {
    return std::make_unique<testing_::ScalingService>();
  });
  const WireId call = topo.connect_call(caller, PortId(1), service, PortId(0));
  const WireId reply = topo.wire(call).paired;
  EXPECT_TRUE(reply.is_valid());
  EXPECT_EQ(topo.wire(reply).kind, WireKind::kReply);
  EXPECT_EQ(topo.wire(reply).paired, call);
  EXPECT_EQ(topo.wire(reply).from, service);
  EXPECT_EQ(topo.wire(reply).to, caller);
  // Call wires feed the callee's inbox; reply wires bypass inboxes.
  EXPECT_EQ(topo.inputs_of(service), std::vector<WireId>{call});
  EXPECT_TRUE(topo.inputs_of(caller).empty());
}

TEST(TopologyTest, MulticastFanOut) {
  Topology topo;
  const auto a = topo.add("a", [] {
    return std::make_unique<testing_::Passthrough>();
  });
  const auto b = topo.add("b", [] {
    return std::make_unique<testing_::Passthrough>();
  });
  const auto c = topo.add("c", [] {
    return std::make_unique<testing_::Passthrough>();
  });
  topo.connect(a, PortId(0), b, PortId(0));
  topo.connect(a, PortId(0), c, PortId(0));
  EXPECT_EQ(topo.wires_from_port(a, PortId(0)).size(), 2u);
}

// --- Fixture building the Figure-1 application --------------------------------

struct Fig1App {
  Topology topo;
  ComponentId sender1, sender2, merger;
  WireId in1, in2, out;

  explicit Fig1App(double ticks_per_iter = 61000.0) {
    sender1 = topo.add("sender1", [] {
      return std::make_unique<testing_::WordCountSender>();
    });
    sender2 = topo.add("sender2", [] {
      return std::make_unique<testing_::WordCountSender>();
    });
    merger = topo.add("merger", [] {
      return std::make_unique<testing_::TotalingMerger>();
    });
    topo.set_estimator(sender1, [ticks_per_iter] {
      return estimator::per_iteration_estimator(ticks_per_iter);
    });
    topo.set_estimator(sender2, [ticks_per_iter] {
      return estimator::per_iteration_estimator(ticks_per_iter);
    });
    topo.set_estimator(merger, [] {
      return std::make_unique<estimator::ConstantEstimator>(
          TickDuration::micros(400));
    });
    in1 = topo.external_input(sender1, PortId(0));
    in2 = topo.external_input(sender2, PortId(0));
    topo.connect(sender1, PortId(0), merger, PortId(0));
    topo.connect(sender2, PortId(0), merger, PortId(0));
    out = topo.external_output(merger, PortId(0));
  }

  [[nodiscard]] std::map<ComponentId, EngineId> single_engine() const {
    return {{sender1, EngineId(0)}, {sender2, EngineId(0)},
            {merger, EngineId(0)}};
  }
  [[nodiscard]] std::map<ComponentId, EngineId> two_engines() const {
    return {{sender1, EngineId(0)}, {sender2, EngineId(0)},
            {merger, EngineId(1)}};
  }
};

std::vector<std::pair<std::int64_t, std::int64_t>> vt_payload(
    const std::vector<OutputRecord>& records) {
  std::vector<std::pair<std::int64_t, std::int64_t>> out;
  for (const auto& r : records)
    if (!r.stutter) out.emplace_back(r.vt.ticks(), r.payload.as_int());
  return out;
}

/// Runs the paper's worked example and returns the merger's output records.
std::vector<OutputRecord> run_paper_example(
    const std::map<ComponentId, EngineId>& placement, RuntimeConfig config,
    const Fig1App& app) {
  Runtime rt(app.topo, placement, std::move(config));
  rt.start();
  // "messages arrive at Sender1 and Sender2 at times 50000 and 80000" with
  // sentence lengths 3 and 2.
  rt.inject_at(app.in1, VirtualTime(50000),
               testing_::sentence({"the", "cat", "sat"}));
  rt.inject_at(app.in2, VirtualTime(80000),
               testing_::sentence({"dog", "ran"}));
  EXPECT_TRUE(rt.drain());
  auto records = rt.output_records(app.out);
  rt.stop();
  return records;
}

TEST(RuntimeFig1Test, PaperExampleVirtualTimes) {
  Fig1App app;
  const auto records =
      run_paper_example(app.single_engine(), RuntimeConfig{}, app);
  ASSERT_EQ(records.size(), 2u);

  // Sender1 sends at 50000 + 3*61000 (+1 local delay) = 233001;
  // Sender2 at 80000 + 2*61000 (+1) = 202001. The Merger must process
  // Sender2's first even though Sender1's was injected first.
  // All words fresh, so both counts are 0; totals stay 0.
  // Merger outputs at dequeue + 400us (+1); the second message queues in
  // virtual time behind the first (the merger is virtually busy until
  // 602001, past the message's own arrival time of 233001).
  EXPECT_EQ(records[0].vt, VirtualTime(202001 + 400000 + 1));
  EXPECT_EQ(records[1].vt, VirtualTime(602001 + 400000 + 1));
  EXPECT_EQ(records[0].payload.as_int(), 0);
  EXPECT_EQ(records[1].payload.as_int(), 0);
  EXPECT_FALSE(records[0].stutter);
}

TEST(RuntimeFig1Test, OutputsInVirtualTimeOrder) {
  Fig1App app;
  RuntimeConfig config;
  Runtime rt(app.topo, app.single_engine(), config);
  rt.start();
  // Repeated words accumulate counts deterministically.
  for (int i = 0; i < 20; ++i) {
    rt.inject_at(app.in1, VirtualTime(1000 + i * 100000),
                 testing_::sentence({"a", "b", "c"}));
    rt.inject_at(app.in2, VirtualTime(500 + i * 90000),
                 testing_::sentence({"a", "d"}));
  }
  ASSERT_TRUE(rt.drain());
  const auto records = rt.output_records(app.out);
  ASSERT_EQ(records.size(), 40u);
  for (std::size_t i = 1; i < records.size(); ++i)
    EXPECT_GT(records[i].vt, records[i - 1].vt);
  rt.stop();
}

TEST(RuntimeFig1Test, DeterministicAcrossRepeatedRuns) {
  Fig1App app;
  auto reference = vt_payload(
      run_paper_example(app.single_engine(), RuntimeConfig{}, app));
  for (int run = 0; run < 3; ++run) {
    Fig1App fresh;
    const auto again = vt_payload(
        run_paper_example(fresh.single_engine(), RuntimeConfig{}, fresh));
    EXPECT_EQ(again, reference) << "run " << run;
  }
}

TEST(RuntimeFig1Test, PlacementDoesNotChangeBehaviour) {
  Fig1App app;
  const auto one = vt_payload(
      run_paper_example(app.single_engine(), RuntimeConfig{}, app));
  Fig1App app2;
  const auto two = vt_payload(
      run_paper_example(app2.two_engines(), RuntimeConfig{}, app2));
  EXPECT_EQ(one, two);
}

TEST(RuntimeFig1Test, SilenceStrategyDoesNotChangeBehaviour) {
  // §II.G.4: lazy/curiosity/aggressive silence can be mixed freely without
  // affecting virtual times — only hyper-aggressive bias changes them.
  Fig1App app;
  RuntimeConfig curiosity;  // default
  const auto a =
      vt_payload(run_paper_example(app.single_engine(), curiosity, app));

  Fig1App app2;
  RuntimeConfig aggressive;
  aggressive.silence.aggressive_interval = 100us;
  const auto b =
      vt_payload(run_paper_example(app2.single_engine(), aggressive, app2));

  Fig1App app3;
  RuntimeConfig lazy;
  lazy.silence.curiosity = false;
  const auto c =
      vt_payload(run_paper_example(app3.single_engine(), lazy, app3));

  EXPECT_EQ(a, b);
  EXPECT_EQ(a, c);
}

TEST(RuntimeFig1Test, SimulatedNetworkLinkPreservesBehaviour) {
  Fig1App app;
  const auto reference = vt_payload(
      run_paper_example(app.single_engine(), RuntimeConfig{}, app));

  Fig1App app2;
  RuntimeConfig config;
  transport::LinkConfig link;
  link.base_delay = 200us;
  link.loss_probability = 0.2;
  link.duplicate_probability = 0.1;
  link.seed = 77;
  config.links[{EngineId(0), EngineId(1)}] = link;
  const auto over_network =
      vt_payload(run_paper_example(app2.two_engines(), config, app2));
  EXPECT_EQ(over_network, reference);
}

TEST(RuntimeFig1Test, ArrivalOrderModeProcessesEverything) {
  Fig1App app;
  RuntimeConfig config;
  config.mode = SchedulingMode::kArrivalOrder;
  const auto records = run_paper_example(app.single_engine(), config, app);
  // Non-deterministic order, but nothing lost and totals still 0.
  ASSERT_EQ(records.size(), 2u);
}

TEST(RuntimeFig1Test, MetricsAccountProcessing) {
  Fig1App app;
  Runtime rt(app.topo, app.single_engine(), RuntimeConfig{});
  rt.start();
  rt.inject_at(app.in1, VirtualTime(1000),
               testing_::sentence({"x", "y", "z"}));
  ASSERT_TRUE(rt.drain());
  const auto merger = rt.metrics(app.merger);
  EXPECT_EQ(merger.messages_processed, 1u);
  const auto s1 = rt.metrics(app.sender1);
  EXPECT_EQ(s1.messages_processed, 1u);
  rt.stop();
}

TEST(RuntimeFig1Test, ExternalLogRecordsEverything) {
  Fig1App app;
  Runtime rt(app.topo, app.single_engine(), RuntimeConfig{});
  rt.start();
  rt.inject_at(app.in1, VirtualTime(100), testing_::sentence({"a"}));
  rt.inject_at(app.in1, VirtualTime(200), testing_::sentence({"b"}));
  ASSERT_TRUE(rt.drain());
  EXPECT_EQ(rt.external_log().size(app.in1), 2u);
  EXPECT_EQ(rt.external_log().size(app.in2), 0u);
  rt.stop();
}

TEST(RuntimeFig1Test, RealTimeInjectAssignsMonotoneVts) {
  Fig1App app;
  Runtime rt(app.topo, app.single_engine(), RuntimeConfig{});
  rt.start();
  VirtualTime prev(-1);
  for (int i = 0; i < 10; ++i) {
    const VirtualTime vt = rt.inject(app.in1, testing_::sentence({"w"}));
    EXPECT_GT(vt, prev);
    prev = vt;
  }
  ASSERT_TRUE(rt.drain());
  EXPECT_EQ(rt.output_records(app.out).size(), 10u);
  rt.stop();
}

// --- Two-way calls --------------------------------------------------------------

struct CallApp {
  Topology topo;
  ComponentId caller, service;
  WireId in, out;

  CallApp() {
    caller = topo.add("caller", [] {
      return std::make_unique<testing_::CallingComponent>();
    });
    service = topo.add("service", [] {
      return std::make_unique<testing_::ScalingService>();
    });
    topo.set_estimator(caller, [] {
      return std::make_unique<estimator::ConstantEstimator>(
          TickDuration::micros(10));
    });
    topo.set_estimator(service, [] {
      return std::make_unique<estimator::ConstantEstimator>(
          TickDuration::micros(50));
    });
    in = topo.external_input(caller, PortId(0));
    topo.connect_call(caller, PortId(1), service, PortId(0));
    out = topo.external_output(caller, PortId(0));
  }
};

TEST(RuntimeCallTest, CallReturnsDeterministicReply) {
  CallApp app;
  Runtime rt(app.topo,
             {{app.caller, EngineId(0)}, {app.service, EngineId(0)}},
             RuntimeConfig{});
  rt.start();
  rt.inject_at(app.in, VirtualTime(1000), Payload(std::int64_t{7}));
  rt.inject_at(app.in, VirtualTime(2000), Payload(std::int64_t{7}));
  rt.inject_at(app.in, VirtualTime(3000), Payload(std::int64_t{7}));
  ASSERT_TRUE(rt.drain());
  const auto records = rt.output_records(app.out);
  ASSERT_EQ(records.size(), 3u);
  // ScalingService multiplies by its call count: 7, 14, 21.
  EXPECT_EQ(records[0].payload.as_int(), 7);
  EXPECT_EQ(records[1].payload.as_int(), 14);
  EXPECT_EQ(records[2].payload.as_int(), 21);
  EXPECT_EQ(rt.metrics(app.service).calls_served, 3u);
  rt.stop();
}

TEST(RuntimeCallTest, CallAcrossEnginesMatchesSingleEngine) {
  auto run = [](const std::map<ComponentId, EngineId>& placement) {
    CallApp app;
    Runtime rt(app.topo, placement, RuntimeConfig{});
    rt.start();
    for (int i = 1; i <= 5; ++i)
      rt.inject_at(app.in, VirtualTime(i * 1000),
                   Payload(std::int64_t{i}));
    EXPECT_TRUE(rt.drain());
    auto records = vt_payload(rt.output_records(app.out));
    rt.stop();
    return records;
  };
  CallApp probe;  // ids are identical across constructions
  const auto local = run(
      {{probe.caller, EngineId(0)}, {probe.service, EngineId(0)}});
  const auto remote = run(
      {{probe.caller, EngineId(0)}, {probe.service, EngineId(1)}});
  EXPECT_EQ(local, remote);
  EXPECT_EQ(local.size(), 5u);
}

TEST(RuntimeCallTest, ReplyVirtualTimeOrdersAfterCall) {
  CallApp app;
  Runtime rt(app.topo,
             {{app.caller, EngineId(0)}, {app.service, EngineId(0)}},
             RuntimeConfig{});
  rt.start();
  rt.inject_at(app.in, VirtualTime(1000), Payload(std::int64_t{1}));
  ASSERT_TRUE(rt.drain());
  const auto records = rt.output_records(app.out);
  ASSERT_EQ(records.size(), 1u);
  // Caller dequeues at 1000, call charge 10us, service 50us, local delays:
  // the emitted output must order after the whole round trip.
  EXPECT_GT(records[0].vt, VirtualTime(1000 + 10000 + 50000));
  rt.stop();
}

// --- Bias (hyper-aggressive silence) --------------------------------------------

TEST(RuntimeBiasTest, BiasRoundsOutputTimes) {
  Fig1App app;
  RuntimeConfig config;
  config.bias[app.sender2] = TickDuration(99999);  // 100000-tick grid
  Runtime rt(app.topo, app.single_engine(), config);
  rt.start();
  rt.inject_at(app.in2, VirtualTime(80000),
               testing_::sentence({"dog", "ran"}));
  ASSERT_TRUE(rt.drain());
  const auto records = rt.output_records(app.out);
  ASSERT_EQ(records.size(), 1u);
  // Sender2's raw output would be 80000+122000+1; the bias rounds it up to
  // the next 100000 boundary (300000). Merger adds 400us (+1).
  EXPECT_EQ(records[0].vt, VirtualTime(300000 + 400000 + 1));
  rt.stop();
}

}  // namespace
}  // namespace tart::core
