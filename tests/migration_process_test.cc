// Live-migration process tests: real tart-node processes over loopback.
//
// A three-node wordcount deployment — "left" hosts both senders, "mid"
// starts empty, "right" hosts the merger — exercises the staged VT-barrier
// migration protocol end to end (docs/PLACEMENT.md):
//
//   1. migrating sender2 left->mid under load completes with a bounded
//      blackout, the placement epoch propagates to every node, and the
//      final output stream is byte-for-byte the single-process baseline —
//      AND byte-equivalent to a no-migration run of the same deployment
//      (tart-trace diff --recovery on the downstream node's flight
//      recorder);
//   2. the SIGKILL matrix: killing the source or the target at EVERY stage
//      boundary (--migrate-crash-at) and restarting it over the same
//      log_dir converges to exactly one owner, after which the remaining
//      script drains to the same baseline — no acked input lost, none
//      duplicated. The cutover-commit case doubles as the mixed-epoch
//      reconnect regression: the restarted source comes back at a STALE
//      placement epoch and the HELLO handshake must accept the link
//      (topology fingerprints match) and synchronize placement, not refuse.
#include <gtest/gtest.h>
#include <signal.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "apps/wordcount.h"
#include "core/runtime.h"
#include "net/control.h"
#include "net/socket.h"
#include "net/topologies.h"
#include "trace/lineage.h"
#include "trace/trace_file.h"

using namespace tart;
using namespace std::chrono_literals;

namespace {

struct Step {
  std::string input;
  std::int64_t vt;
  std::vector<std::string> words;
};

std::vector<Step> make_script(int n) {
  const std::vector<std::string> vocab = {"stream", "replay", "virtual",
                                          "time",   "socket", "engine"};
  std::vector<Step> steps;
  for (int i = 0; i < n; ++i) {
    Step s;
    s.input = (i % 2 == 0) ? "sender1" : "sender2";
    s.vt = 1000 * (i + 1);
    const int len = (i % 4) + 1;
    for (int w = 0; w < len; ++w)
      s.words.push_back(vocab[static_cast<std::size_t>((i + w) % 6)]);
    steps.push_back(std::move(s));
  }
  return steps;
}

using OutputStream = std::vector<std::pair<std::int64_t, std::int64_t>>;

OutputStream baseline(const std::vector<Step>& steps) {
  auto built = net::build_topology("wordcount", {{"senders", "2"}});
  std::map<ComponentId, EngineId> placement;
  for (const auto& [name, id] : built.components) placement[id] = EngineId(0);
  core::Runtime rt(built.topology, placement, core::RuntimeConfig{});
  rt.start();
  for (const auto& s : steps)
    rt.inject_at(built.inputs.at(s.input), VirtualTime(s.vt),
                 apps::sentence(s.words));
  EXPECT_TRUE(rt.drain());
  OutputStream out;
  for (const auto& rec : rt.output_records(built.outputs.at("total")))
    if (!rec.stutter) out.emplace_back(rec.vt.ticks(), rec.payload.as_int());
  rt.stop();
  return out;
}

std::uint16_t free_port() {
  std::string err;
  net::Fd fd = net::listen_tcp(*net::SockAddr::parse("127.0.0.1:0"), &err);
  EXPECT_TRUE(fd.valid()) << err;
  return net::local_port(fd.get());
}

std::string make_temp_dir() {
  char tmpl[] = "/tmp/tart_mig_XXXXXX";
  const char* dir = mkdtemp(tmpl);
  EXPECT_NE(dir, nullptr);
  return dir;
}

void write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << content;
}

struct Deployment {
  std::string config_path;
  std::string left_control;
  std::string mid_control;
  std::string right_control;
};

/// left: sender1 + sender2 (the migration source). mid: empty (the
/// migration target). right: merger (downstream observer, never killed).
Deployment write_deployment(const std::string& dir) {
  const auto p = [] { return std::to_string(free_port()); };
  Deployment d;
  d.left_control = "127.0.0.1:" + p();
  d.mid_control = "127.0.0.1:" + p();
  d.right_control = "127.0.0.1:" + p();
  d.config_path = dir + "/deploy.conf";
  write_file(d.config_path,
             "topology = wordcount\n"
             "param senders = 2\n"
             "partition left = 127.0.0.1:" + p() + "\n"
             "control left = " + d.left_control + "\n"
             "partition mid = 127.0.0.1:" + p() + "\n"
             "control mid = " + d.mid_control + "\n"
             "partition right = 127.0.0.1:" + p() + "\n"
             "control right = " + d.right_control + "\n"
             "place sender1 = left\n"
             "place sender2 = left\n"
             "place merger = right\n");
  return d;
}

class NodeProc {
 public:
  NodeProc(const std::string& config, const std::string& partition,
           const std::vector<std::string>& extra) {
    std::vector<std::string> args = {TART_NODE_BIN, config, partition};
    args.insert(args.end(), extra.begin(), extra.end());
    pid_ = fork();
    if (pid_ == 0) {
      std::vector<char*> argv;
      argv.reserve(args.size() + 1);
      for (auto& a : args) argv.push_back(a.data());
      argv.push_back(nullptr);
      execv(TART_NODE_BIN, argv.data());
      _exit(127);
    }
  }

  ~NodeProc() {
    if (pid_ > 0) {
      ::kill(pid_, SIGKILL);
      (void)reap();
    }
  }

  void kill9() const { ASSERT_EQ(::kill(pid_, SIGKILL), 0); }

  /// Waits and returns the exit code (-1: signaled or not exited).
  int reap() {
    if (pid_ <= 0) return -1;
    int status = 0;
    waitpid(pid_, &status, 0);
    pid_ = -1;
    return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  }

  /// Non-blocking reap. A dead child stays a zombie until waitpid, so
  /// `kill(pid, 0)` keeps succeeding — this is the only reliable death
  /// probe. Returns true once the child exited; *code gets the exit code
  /// (-1: signaled).
  bool try_reap(int* code) {
    if (pid_ <= 0) return false;
    int status = 0;
    if (waitpid(pid_, &status, WNOHANG) != pid_) return false;
    pid_ = -1;
    *code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
    return true;
  }

  [[nodiscard]] pid_t pid() const { return pid_; }

 private:
  pid_t pid_ = -1;
};

net::ControlClient connect_or_die(const std::string& addr) {
  auto client = net::ControlClient::connect(addr, 20s);
  if (!client) {
    ADD_FAILURE() << "control connect to " << addr << " timed out";
    std::abort();
  }
  return std::move(*client);
}

OutputStream fetch_outputs(net::ControlClient& client) {
  OutputStream out;
  for (const auto& rec : client.outputs("total"))
    if (!rec.stutter) out.emplace_back(rec.vt, rec.payload.as_int());
  return out;
}

bool hosts_component(core::StatusReport& report, const std::string& name) {
  for (const auto& c : report.components)
    if (c.name == name) return true;
  return false;
}

/// Polls until `pred` or `timeout`; returns whether it held.
bool poll_until(std::chrono::milliseconds timeout,
                const std::function<bool()>& pred) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(20ms);
  }
  return pred();
}

int run_trace_diff(const std::string& a, const std::string& b) {
  const pid_t pid = fork();
  if (pid == 0) {
    execl(TART_TRACE_BIN, TART_TRACE_BIN, "diff", a.c_str(), b.c_str(),
          "--recovery", static_cast<char*>(nullptr));
    _exit(127);
  }
  int status = 0;
  waitpid(pid, &status, 0);
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

void inject_step(net::ControlClient& ctl, const Step& s) {
  EXPECT_EQ(ctl.inject(s.input, s.vt, apps::sentence(s.words)), s.vt);
}

}  // namespace

TEST(MigrationProcessTest, LiveMigrationUnderLoadMatchesBaseline) {
  const auto steps = make_script(40);
  const OutputStream expected = baseline(steps);
  ASSERT_FALSE(expected.empty());
  const std::size_t half = steps.size() / 2;

  const std::string dir = make_temp_dir();
  const std::string right_ref_trace = dir + "/right_ref.trace";
  const std::string right_mig_trace = dir + "/right_mig.trace";
  const std::string left_mig_trace = dir + "/left_mig.trace";
  const std::string mid_mig_trace = dir + "/mid_mig.trace";

  // --- Reference: same deployment, no migration ---------------------------
  OutputStream ref_out;
  {
    const Deployment d = write_deployment(dir);
    ASSERT_EQ(mkdir((dir + "/ref_left").c_str(), 0755), 0);
    NodeProc left(d.config_path, "left", {"--log-dir=" + dir + "/ref_left"});
    NodeProc mid(d.config_path, "mid", {});
    NodeProc right(d.config_path, "right", {"--trace=" + right_ref_trace});
    auto left_ctl = connect_or_die(d.left_control);
    auto right_ctl = connect_or_die(d.right_control);
    auto mid_ctl = connect_or_die(d.mid_control);
    for (const auto& s : steps) inject_step(left_ctl, s);
    ASSERT_TRUE(left_ctl.drain(30s));
    ASSERT_TRUE(right_ctl.drain(30s));
    ref_out = fetch_outputs(right_ctl);
    left_ctl.shutdown_node();
    mid_ctl.shutdown_node();
    right_ctl.shutdown_node();
    EXPECT_EQ(left.reap(), 0);
    EXPECT_EQ(mid.reap(), 0);
    EXPECT_EQ(right.reap(), 0);
  }
  ASSERT_EQ(ref_out, expected)
      << "three-node deployment diverged from the single-process baseline";

  // --- Migration run ------------------------------------------------------
  OutputStream mig_out;
  {
    const Deployment d = write_deployment(dir);
    ASSERT_EQ(mkdir((dir + "/mig_left").c_str(), 0755), 0);
    ASSERT_EQ(mkdir((dir + "/mig_mid").c_str(), 0755), 0);
    NodeProc left(d.config_path, "left",
                  {"--log-dir=" + dir + "/mig_left",
                   "--trace=" + left_mig_trace});
    NodeProc mid(d.config_path, "mid",
                 {"--log-dir=" + dir + "/mig_mid",
                  "--trace=" + mid_mig_trace});
    NodeProc right(d.config_path, "right", {"--trace=" + right_mig_trace});
    auto left_ctl = connect_or_die(d.left_control);
    auto mid_ctl = connect_or_die(d.mid_control);
    auto right_ctl = connect_or_die(d.right_control);

    for (std::size_t i = 0; i < half; ++i) inject_step(left_ctl, steps[i]);
    // Let the stream reach the merger so the migration moves real state.
    ASSERT_TRUE(poll_until(10s, [&] {
      return right_ctl.metrics().messages_processed >= half / 2;
    })) << "merger never saw the pre-migration prefix";

    // Migrate sender2 while sender1 keeps injecting: migration under load.
    std::thread load([&] {
      auto ctl = connect_or_die(d.left_control);
      for (std::size_t i = half; i < steps.size(); ++i)
        if (steps[i].input == "sender1") inject_step(ctl, steps[i]);
    });
    const auto res = left_ctl.migrate("sender2", "mid");
    load.join();
    ASSERT_TRUE(res.ok) << res.error;
    EXPECT_EQ(res.epoch, 1u);
    EXPECT_GT(res.slice_bytes, 0u);
    // record_count can legitimately be 0: the forced checkpoint covers
    // every consumed input, and sender2 was quiescent when sealed.
    EXPECT_GE(res.transfer_ms, 0.0);
    EXPECT_GT(res.blackout_ms, 0.0);
    EXPECT_LT(res.blackout_ms, 10'000.0) << "cutover blackout unbounded";

    // Ownership moved: mid hosts sender2 now, left does not.
    ASSERT_TRUE(poll_until(10s, [&] {
      auto ls = left_ctl.status();
      auto ms = mid_ctl.status();
      return !hosts_component(ls, "sender2") && hosts_component(ms, "sender2");
    })) << "sender2 did not move to mid";
    // The epoch propagated to a node that took no part in the migration.
    ASSERT_TRUE(poll_until(10s, [&] {
      return right_ctl.status().placement_epoch >= 1;
    })) << "placement update never reached the downstream node";

    // The rest of sender2's script is served by the new owner.
    for (std::size_t i = half; i < steps.size(); ++i)
      if (steps[i].input == "sender2") inject_step(mid_ctl, steps[i]);

    ASSERT_TRUE(left_ctl.drain(30s));
    ASSERT_TRUE(mid_ctl.drain(30s));
    ASSERT_TRUE(right_ctl.drain(30s));
    mig_out = fetch_outputs(right_ctl);

    const auto lm = left_ctl.metrics();
    const auto mm = mid_ctl.metrics();
    EXPECT_EQ(lm.mig_started, 1u);
    EXPECT_EQ(lm.mig_completed, 1u);
    EXPECT_EQ(lm.mig_failed, 0u);
    EXPECT_EQ(lm.mig_evicted, 1u);
    EXPECT_GT(lm.mig_bytes_sent, 0u);
    EXPECT_EQ(mm.mig_adopted, 1u);
    EXPECT_GT(mm.mig_bytes_received, 0u);

    left_ctl.shutdown_node();
    mid_ctl.shutdown_node();
    right_ctl.shutdown_node();
    EXPECT_EQ(left.reap(), 0);
    EXPECT_EQ(mid.reap(), 0);
    EXPECT_EQ(right.reap(), 0);
  }
  EXPECT_EQ(mig_out, expected)
      << "output stream with a live migration diverged from baseline";

  // Determinism across the move: the downstream node cannot tell the
  // migrated run from the stay-put run.
  EXPECT_EQ(run_trace_diff(right_ref_trace, right_mig_trace), 0)
      << "tart-trace diff --recovery flagged divergence after migration";

  // Request lineage across the migration (docs/TRACING.md): joining the
  // three per-node flight recorders must resolve EVERY injected input to
  // a complete causal DAG, even for sender2 inputs acked before the
  // cutover whose descendants executed on a different node afterwards.
  const std::vector<trace::Trace> traces = {
      trace::TraceReader::read_file(left_mig_trace),
      trace::TraceReader::read_file(mid_mig_trace),
      trace::TraceReader::read_file(right_mig_trace),
  };
  const trace::LineageReport lineage = trace::analyze_lineage(traces);
  EXPECT_EQ(lineage.inputs.size(), steps.size());
  for (const trace::InputLineage& in : lineage.inputs) {
    EXPECT_TRUE(in.complete)
        << "input " << in.wire.value() << ":" << in.seq
        << " has a dangling causal edge across the migration";
    EXPECT_FALSE(in.hops.empty());
  }
}

namespace {

struct CrashScenario {
  const char* stage;    ///< --migrate-crash-at value
  bool source_side;     ///< true: left crashes; false: mid crashes
  /// Owner of sender2 after restart + convergence. nullptr = either node
  /// is legal (the crash races message delivery); the test then only
  /// asserts that exactly ONE node owns it.
  const char* expected_owner;
};

void run_crash_scenario(const CrashScenario& sc) {
  SCOPED_TRACE(std::string("crash at ") + sc.stage);
  const auto steps = make_script(24);
  const OutputStream expected = baseline(steps);
  const std::size_t half = steps.size() / 2;

  const std::string dir = make_temp_dir();
  const Deployment d = write_deployment(dir);
  const std::string left_dir = dir + "/left";
  const std::string mid_dir = dir + "/mid";
  ASSERT_EQ(mkdir(left_dir.c_str(), 0755), 0);
  ASSERT_EQ(mkdir(mid_dir.c_str(), 0755), 0);
  const std::string crash_flag = std::string("--migrate-crash-at=") + sc.stage;

  std::vector<std::string> left_flags = {"--log-dir=" + left_dir};
  std::vector<std::string> mid_flags = {"--log-dir=" + mid_dir};
  (sc.source_side ? left_flags : mid_flags).push_back(crash_flag);

  NodeProc right(d.config_path, "right", {});
  auto right_ctl = connect_or_die(d.right_control);
  std::optional<NodeProc> left(std::in_place, d.config_path, "left",
                               left_flags);
  std::optional<NodeProc> mid(std::in_place, d.config_path, "mid", mid_flags);

  {
    auto left_ctl = connect_or_die(d.left_control);
    connect_or_die(d.mid_control).ping();
    for (std::size_t i = 0; i < half; ++i) inject_step(left_ctl, steps[i]);
    ASSERT_TRUE(poll_until(10s, [&] {
      return right_ctl.metrics().messages_processed >= half / 2;
    })) << "merger never saw the pre-crash prefix";
  }

  // Drive the migration from a thread: the injected crash kills one end
  // mid-protocol, and the blocking control call must not hang the test.
  // Restarting the victim (below, WITHOUT the crash flag) is what lets the
  // surviving side resolve — so the call may only return after that.
  std::thread migrate_thread([&] {
    try {
      auto ctl = connect_or_die(d.left_control);
      (void)ctl.migrate("sender2", "mid");
    } catch (const std::exception&) {
      // Source death severs the control connection mid-request: expected.
    }
  });

  // The victim _exit(137)s at the stage boundary; reap and restart it over
  // the same stable storage, fault injection off.
  NodeProc* victim = sc.source_side ? &*left : &*mid;
  int victim_code = -1;
  const bool victim_died =
      poll_until(30s, [&] { return victim->try_reap(&victim_code); });
  if (!victim_died) {
    // Tear the cluster down so the blocked migrate() connection severs,
    // THEN join: ASSERT-returning past a joinable thread is std::terminate
    // and orphans every child node.
    left.reset();
    mid.reset();
    migrate_thread.join();
    FAIL() << "migration never reached stage " << sc.stage;
  }
  EXPECT_EQ(victim_code, 137);
  if (sc.source_side) {
    left.emplace(d.config_path, "left",
                 std::vector<std::string>{"--log-dir=" + left_dir});
  } else {
    mid.emplace(d.config_path, "mid",
                std::vector<std::string>{"--log-dir=" + mid_dir});
  }
  migrate_thread.join();

  // Convergence: the journal + reconnect HELLOs must leave EXACTLY ONE
  // owner, whichever side died. (For cutover-commit this is the
  // mixed-epoch reconnect: the restarted source boots at a stale epoch and
  // the HELLO must accept the link and synchronize, not refuse it.)
  auto left_ctl = connect_or_die(d.left_control);
  auto mid_ctl = connect_or_die(d.mid_control);
  std::string owner;
  ASSERT_TRUE(poll_until(30s, [&] {
    auto ls = left_ctl.status();
    auto ms = mid_ctl.status();
    const bool on_left = hosts_component(ls, "sender2");
    const bool on_mid = hosts_component(ms, "sender2");
    if (on_left == on_mid) return false;  // zero or two owners: not settled
    owner = on_left ? "left" : "mid";
    return true;
  })) << "cluster did not converge to exactly one owner of sender2";
  if (sc.expected_owner != nullptr) {
    EXPECT_EQ(owner, sc.expected_owner);
  }

  // The remaining script drains through whoever owns each input now.
  auto& sender2_ctl = owner == "left" ? left_ctl : mid_ctl;
  for (std::size_t i = half; i < steps.size(); ++i)
    inject_step(steps[i].input == "sender2" ? sender2_ctl : left_ctl,
                steps[i]);
  ASSERT_TRUE(left_ctl.drain(30s)) << "left never quiesced";
  ASSERT_TRUE(mid_ctl.drain(30s)) << "mid never quiesced";
  ASSERT_TRUE(right_ctl.drain(30s)) << "right never quiesced";

  // Exactly-once despite the kill: every acked input appears exactly once
  // in the output stream, byte-for-byte the baseline.
  const OutputStream got = fetch_outputs(right_ctl);
  if (got != expected) {
    auto dump = [](const char* n, net::ControlClient& c) {
      const auto m = c.metrics();
      std::fprintf(stderr,
                   "[diag %-5s] processed=%lu dup_discarded=%lu refused=%lu "
                   "msgs_in=%lu msgs_out=%lu mig s/c/f=%lu/%lu/%lu "
                   "adopt=%lu evict=%lu upd=%lu\n",
                   n, m.messages_processed, m.duplicates_discarded,
                   m.net_frames_refused, m.net_msgs_in, m.net_msgs_out,
                   m.mig_started, m.mig_completed, m.mig_failed, m.mig_adopted,
                   m.mig_evicted, m.mig_updates_applied);
      const auto st = c.status();
      std::fprintf(stderr, "[diag %-5s] placement_epoch=%lu components:", n,
                   static_cast<unsigned long>(st.placement_epoch));
      for (const auto& comp : st.components)
        std::fprintf(stderr, " %s", comp.name.c_str());
      std::fprintf(stderr, "\n");
    };
    dump("left", left_ctl);
    dump("mid", mid_ctl);
    dump("right", right_ctl);
  }
  EXPECT_EQ(got, expected)
      << "output stream after crash at " << sc.stage
      << " diverged from baseline";

  // Still exactly one owner after the dust settled.
  auto ls = left_ctl.status();
  auto ms = mid_ctl.status();
  EXPECT_NE(hosts_component(ls, "sender2"), hosts_component(ms, "sender2"));
}

}  // namespace

// Source-side crashes before the seal leave the source owning (the intent
// stays in doubt; nothing was adopted). The cutover-commit crash races the
// commit delivery: the target may or may not have adopted, so either
// single-owner outcome is legal. Target-side: a staged-only target never
// owned; a target that journaled kAdopt owns after its restart.
TEST(MigrationProcessTest, SigkillSourceAtPrepare) {
  run_crash_scenario({"prepare", true, "left"});
}
TEST(MigrationProcessTest, SigkillSourceAtTransfer) {
  run_crash_scenario({"transfer", true, "left"});
}
TEST(MigrationProcessTest, SigkillSourceAtDelta) {
  run_crash_scenario({"delta", true, "left"});
}
TEST(MigrationProcessTest, SigkillSourceAtCutoverCommit) {
  run_crash_scenario({"cutover-commit", true, nullptr});
}
TEST(MigrationProcessTest, SigkillTargetAtStaged) {
  run_crash_scenario({"staged", false, "left"});
}
TEST(MigrationProcessTest, SigkillTargetAtAdopt) {
  run_crash_scenario({"adopt", false, "mid"});
}
