// Tests for checkpointed containers, snapshots, and the passive replica:
// full-vs-incremental equivalence is the core invariant (§II.F.2).
#include <gtest/gtest.h>

#include "checkpoint/checkpointed_map.h"
#include "checkpoint/checkpointed_value.h"
#include "checkpoint/replica.h"
#include "checkpoint/snapshot.h"
#include "common/rng.h"

namespace tart::checkpoint {
namespace {

using WordCounts = CheckpointedMap<std::string, std::int64_t>;

std::vector<std::byte> capture_full_bytes(const Checkpointable& c) {
  serde::Writer w;
  c.capture_full(w);
  return w.take();
}

// --- CheckpointedMap ----------------------------------------------------------

TEST(CheckpointedMapTest, BasicOperations) {
  WordCounts m;
  EXPECT_TRUE(m.empty());
  m.put("the", 1);
  m.update("the", [](std::int64_t& v) { ++v; });
  EXPECT_EQ(*m.find("the"), 2);
  EXPECT_FALSE(m.contains("cat"));
  EXPECT_EQ(m.size(), 1u);
  EXPECT_TRUE(m.erase("the"));
  EXPECT_FALSE(m.erase("the"));
  EXPECT_TRUE(m.empty());
}

TEST(CheckpointedMapTest, FullCaptureRoundTrip) {
  WordCounts m;
  m.put("a", 1);
  m.put("b", 2);
  WordCounts restored;
  serde::Writer w;
  m.capture_full(w);
  serde::Reader r(w.bytes());
  restored.restore_full(r);
  EXPECT_EQ(restored.entries(), m.entries());
}

TEST(CheckpointedMapTest, DeltaTracksOnlyChanges) {
  WordCounts m;
  m.put("a", 1);
  m.put("b", 2);
  serde::Writer base;
  m.capture_delta(base);  // drains dirty set
  EXPECT_EQ(m.dirty_count(), 0u);

  m.put("c", 3);
  m.update("a", [](std::int64_t& v) { v = 10; });
  EXPECT_EQ(m.dirty_count(), 2u);
  serde::Writer delta;
  m.capture_delta(delta);
  // Delta contains 2 entries, not 3.
  serde::Reader peek(delta.bytes());
  EXPECT_EQ(peek.read_varint(), 2u);
}

TEST(CheckpointedMapTest, BasePlusDeltaEqualsFull) {
  Rng rng(5);
  WordCounts live;
  WordCounts replica;

  // Base.
  for (int i = 0; i < 50; ++i)
    live.put("k" + std::to_string(i), rng.uniform_int(0, 100));
  {
    serde::Writer w;
    live.capture_delta(w);
    serde::Reader r(w.bytes());
    replica.apply_delta(r);
  }
  // Random mutations + deltas, repeatedly.
  for (int round = 0; round < 10; ++round) {
    for (int i = 0; i < 20; ++i) {
      const std::string key = "k" + std::to_string(rng.uniform_int(0, 70));
      if (rng.chance(0.3)) {
        live.erase(key);
      } else {
        live.put(key, rng.uniform_int(0, 1000));
      }
    }
    serde::Writer w;
    live.capture_delta(w);
    serde::Reader r(w.bytes());
    replica.apply_delta(r);
    EXPECT_EQ(capture_full_bytes(replica), capture_full_bytes(live))
        << "diverged at round " << round;
  }
}

TEST(CheckpointedMapTest, TombstonePropagatesErase) {
  WordCounts live, replica;
  live.put("gone", 1);
  {
    serde::Writer w;
    live.capture_delta(w);
    serde::Reader r(w.bytes());
    replica.apply_delta(r);
  }
  live.erase("gone");
  {
    serde::Writer w;
    live.capture_delta(w);
    serde::Reader r(w.bytes());
    replica.apply_delta(r);
  }
  EXPECT_FALSE(replica.contains("gone"));
}

TEST(CheckpointedMapTest, ClearDirtiesEverything) {
  WordCounts m;
  m.put("a", 1);
  m.put("b", 2);
  serde::Writer w;
  m.capture_delta(w);
  m.clear();
  EXPECT_EQ(m.dirty_count(), 2u);
}

TEST(CheckpointedMapTest, DeterministicByteIdenticalCaptures) {
  // Same logical state reached by different operation orders must
  // checkpoint to identical bytes.
  WordCounts a, b;
  a.put("x", 1);
  a.put("y", 2);
  b.put("y", 2);
  b.put("x", 1);
  EXPECT_EQ(capture_full_bytes(a), capture_full_bytes(b));
}

TEST(CheckpointedMapTest, SupportsDelta) {
  EXPECT_TRUE(WordCounts().supports_delta());
}

// --- CheckpointedValue ----------------------------------------------------------

TEST(CheckpointedValueTest, DeltaOnlyWhenDirty) {
  CheckpointedValue<std::int64_t> v(5);
  serde::Writer w1;
  v.capture_delta(w1);  // initial state not dirty
  EXPECT_EQ(w1.size(), 1u);  // just the bool

  v.set(9);
  EXPECT_TRUE(v.dirty());
  serde::Writer w2;
  v.capture_delta(w2);
  EXPECT_FALSE(v.dirty());
  CheckpointedValue<std::int64_t> r(5);
  serde::Reader rd(w2.bytes());
  r.apply_delta(rd);
  EXPECT_EQ(r.get(), 9);
}

TEST(CheckpointedValueTest, MutateMarksDirty) {
  CheckpointedValue<std::string> v("abc");
  v.mutate([](std::string& s) { s += "d"; });
  EXPECT_TRUE(v.dirty());
  EXPECT_EQ(v.get(), "abcd");
}

TEST(CheckpointGroupTest, GroupCapturesMembersInOrder) {
  CheckpointedValue<std::int64_t> count(7);
  CheckpointedMap<std::string, std::int64_t> words;
  words.put("w", 1);
  CheckpointGroup group;
  group.add(count);
  group.add(words);
  EXPECT_TRUE(group.supports_delta());

  serde::Writer w;
  group.capture_full(w);

  CheckpointedValue<std::int64_t> count2;
  CheckpointedMap<std::string, std::int64_t> words2;
  CheckpointGroup group2;
  group2.add(count2);
  group2.add(words2);
  serde::Reader r(w.bytes());
  group2.restore_full(r);
  EXPECT_EQ(count2.get(), 7);
  EXPECT_EQ(*words2.find("w"), 1);
}

// --- ComponentSnapshot -----------------------------------------------------------

ComponentSnapshot sample_snapshot() {
  ComponentSnapshot s;
  s.component = ComponentId(2);
  s.version = 3;
  s.is_delta = false;
  s.vt = VirtualTime(233000);
  s.messages_processed = 17;
  s.estimator_version = 1;
  s.state = {std::byte{1}, std::byte{2}};
  s.inputs.push_back(InputPosition{WireId(0), VirtualTime(100), 5});
  OutputPosition op;
  op.wire = WireId(3);
  op.next_seq = 9;
  op.silence_through = VirtualTime(500);
  op.last_sent = VirtualTime(450);
  Message m;
  m.wire = WireId(3);
  m.vt = VirtualTime(450);
  m.seq = 8;
  m.payload = Payload(std::int64_t{12});
  op.retained.push_back(m);
  s.outputs.push_back(op);
  return s;
}

TEST(SnapshotTest, EncodeDecodeRoundTrip) {
  const ComponentSnapshot s = sample_snapshot();
  serde::Writer w;
  s.encode(w);
  serde::Reader r(w.bytes());
  const ComponentSnapshot d = ComponentSnapshot::decode(r);
  EXPECT_EQ(d.component, s.component);
  EXPECT_EQ(d.version, s.version);
  EXPECT_EQ(d.vt, s.vt);
  EXPECT_EQ(d.messages_processed, s.messages_processed);
  EXPECT_EQ(d.estimator_version, s.estimator_version);
  EXPECT_EQ(d.state, s.state);
  ASSERT_EQ(d.inputs.size(), 1u);
  EXPECT_EQ(d.inputs[0].horizon, VirtualTime(100));
  ASSERT_EQ(d.outputs.size(), 1u);
  EXPECT_EQ(d.outputs[0].last_sent, VirtualTime(450));
  ASSERT_EQ(d.outputs[0].retained.size(), 1u);
  EXPECT_EQ(d.outputs[0].retained[0].payload.as_int(), 12);
}

TEST(SnapshotTest, EncodedSizeMatchesEncoding) {
  const ComponentSnapshot s = sample_snapshot();
  serde::Writer w;
  s.encode(w);
  EXPECT_EQ(s.encoded_size(), w.size());
}

// --- ReplicaStore ------------------------------------------------------------------

TEST(ReplicaStoreTest, FullReplacesBaseAndClearsDeltas) {
  ReplicaStore store;
  ComponentSnapshot s = sample_snapshot();
  s.version = 1;
  s.is_delta = false;
  EXPECT_TRUE(store.store(s));

  s.version = 2;
  s.is_delta = true;
  EXPECT_TRUE(store.store(s));
  EXPECT_EQ(store.latest_version(s.component), 2u);

  s.version = 3;
  s.is_delta = false;
  EXPECT_TRUE(store.store(s));
  const auto plan = store.restore(s.component);
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(plan->base.version, 3u);
  EXPECT_TRUE(plan->deltas.empty());
}

TEST(ReplicaStoreTest, RejectsDeltaWithoutBase) {
  ReplicaStore store;
  ComponentSnapshot s = sample_snapshot();
  s.is_delta = true;
  EXPECT_FALSE(store.store(s));
}

TEST(ReplicaStoreTest, RejectsBrokenChain) {
  ReplicaStore store;
  ComponentSnapshot s = sample_snapshot();
  s.version = 1;
  s.is_delta = false;
  EXPECT_TRUE(store.store(s));
  s.version = 3;  // skipped 2
  s.is_delta = true;
  EXPECT_FALSE(store.store(s));
}

TEST(ReplicaStoreTest, RestoreUnknownComponent) {
  ReplicaStore store;
  EXPECT_FALSE(store.restore(ComponentId(99)).has_value());
  EXPECT_EQ(store.latest_version(ComponentId(99)), 0u);
}

TEST(ReplicaStoreTest, AccountsBytes) {
  ReplicaStore store;
  ComponentSnapshot s = sample_snapshot();
  s.version = 1;
  s.is_delta = false;
  const auto size = s.encoded_size();
  store.store(s);
  EXPECT_EQ(store.bytes_received(), size);
  EXPECT_EQ(store.snapshots_received(), 1u);
  store.clear();
  EXPECT_EQ(store.bytes_received(), 0u);
}

}  // namespace
}  // namespace tart::checkpoint
