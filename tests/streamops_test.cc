// Tests for the stream-processing operator library: unit tests drive
// operators through a fake context; integration tests run a deep pipeline
// through the real runtime, including checkpoint/failover of windowed and
// join state.
#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "apps/streamops.h"
#include "core/runtime.h"
#include "estimator/estimator.h"

namespace tart::apps {
namespace {

using namespace std::chrono_literals;

/// Minimal Context for driving operators directly.
class FakeContext : public core::Context {
 public:
  [[nodiscard]] VirtualTime now() const override { return now_; }
  void set_now(VirtualTime t) { now_ = t; }

  void count_block(std::size_t block, std::uint64_t n) override {
    counters_.count(block, n);
  }

  void send(PortId port, Payload payload) override {
    sent_.emplace_back(port, std::move(payload));
  }

  void send_delayed(PortId port, TickDuration, Payload payload) override {
    sent_.emplace_back(port, std::move(payload));
  }

  [[nodiscard]] Payload call(PortId, Payload) override {
    throw std::logic_error("no calls in these tests");
  }

  std::vector<std::pair<PortId, Payload>> sent_;
  estimator::BlockCounters counters_;

 private:
  VirtualTime now_ = VirtualTime::zero();
};

std::uint64_t fingerprint_of(const core::Component& c) {
  serde::Writer w;
  c.capture_full(w);
  return serde::fingerprint(w.bytes());
}

// --- FilterOperator ---------------------------------------------------------

TEST(FilterOperatorTest, PassesInRangeDropsOutside) {
  FilterOperator filter(10, 100);
  FakeContext ctx;
  filter.on_message(ctx, PortId(0), event(1, 50));
  filter.on_message(ctx, PortId(0), event(2, 5));
  filter.on_message(ctx, PortId(0), event(3, 101));
  filter.on_message(ctx, PortId(0), event(4, 10));
  filter.on_message(ctx, PortId(0), event(5, 100));
  ASSERT_EQ(ctx.sent_.size(), 3u);
  EXPECT_EQ(event_key(ctx.sent_[0].second), 1);
  EXPECT_EQ(event_key(ctx.sent_[1].second), 4);
  EXPECT_EQ(event_key(ctx.sent_[2].second), 5);
  EXPECT_EQ(filter.dropped(), 2);
}

TEST(FilterOperatorTest, DropCounterSurvivesCheckpoint) {
  FilterOperator a(0, 10), b(0, 10);
  FakeContext ctx;
  a.on_message(ctx, PortId(0), event(1, 99));
  serde::Writer w;
  a.capture_full(w);
  serde::Reader r(w.bytes());
  b.restore_full(r);
  EXPECT_EQ(b.dropped(), 1);
  EXPECT_EQ(fingerprint_of(a), fingerprint_of(b));
}

// --- MapOperator ----------------------------------------------------------------

TEST(MapOperatorTest, AffineTransform) {
  MapOperator map(3, 7);
  FakeContext ctx;
  map.on_message(ctx, PortId(0), event(9, 10));
  ASSERT_EQ(ctx.sent_.size(), 1u);
  EXPECT_EQ(event_key(ctx.sent_[0].second), 9);
  EXPECT_EQ(event_value(ctx.sent_[0].second), 37);
}

// --- TumblingWindowSum -------------------------------------------------------------

TEST(TumblingWindowSumTest, AggregatesWithinWindowFlushesAcross) {
  TumblingWindowSum windows(TickDuration(1000));
  FakeContext ctx;
  ctx.set_now(VirtualTime(100));
  windows.on_message(ctx, PortId(0), event(1, 5));
  ctx.set_now(VirtualTime(900));
  windows.on_message(ctx, PortId(0), event(1, 7));
  EXPECT_TRUE(ctx.sent_.empty());  // same window: nothing flushed yet

  ctx.set_now(VirtualTime(1500));  // next window for key 1
  windows.on_message(ctx, PortId(0), event(1, 2));
  ASSERT_EQ(ctx.sent_.size(), 1u);
  EXPECT_EQ(event_key(ctx.sent_[0].second), 1);
  EXPECT_EQ(event_value(ctx.sent_[0].second), 12);  // 5 + 7
}

TEST(TumblingWindowSumTest, KeysWindowIndependently) {
  TumblingWindowSum windows(TickDuration(1000));
  FakeContext ctx;
  ctx.set_now(VirtualTime(100));
  windows.on_message(ctx, PortId(0), event(1, 5));
  ctx.set_now(VirtualTime(1200));
  windows.on_message(ctx, PortId(0), event(2, 9));  // key 2's first window
  EXPECT_TRUE(ctx.sent_.empty());
  ctx.set_now(VirtualTime(2400));
  windows.on_message(ctx, PortId(0), event(2, 1));
  ASSERT_EQ(ctx.sent_.size(), 1u);
  EXPECT_EQ(event_value(ctx.sent_[0].second), 9);
}

TEST(TumblingWindowSumTest, SkippedWindowsFlushOnce) {
  TumblingWindowSum windows(TickDuration(1000));
  FakeContext ctx;
  ctx.set_now(VirtualTime(0));
  windows.on_message(ctx, PortId(0), event(1, 5));
  ctx.set_now(VirtualTime(10'000));  // many empty windows later
  windows.on_message(ctx, PortId(0), event(1, 1));
  ASSERT_EQ(ctx.sent_.size(), 1u);
  EXPECT_EQ(event_value(ctx.sent_[0].second), 5);
}

TEST(TumblingWindowSumTest, DeltaCheckpointMatchesFull) {
  TumblingWindowSum live(TickDuration(1000));
  TumblingWindowSum replica(TickDuration(1000));
  FakeContext ctx;
  {
    serde::Writer w;
    live.capture_delta(w);
    serde::Reader r(w.bytes());
    replica.apply_delta(r);
  }
  for (int i = 0; i < 50; ++i) {
    ctx.set_now(VirtualTime(i * 317));
    live.on_message(ctx, PortId(0), event(i % 5, i));
    if (i % 7 == 0) {
      serde::Writer w;
      live.capture_delta(w);
      serde::Reader r(w.bytes());
      replica.apply_delta(r);
    }
  }
  serde::Writer w;
  live.capture_delta(w);
  serde::Reader r(w.bytes());
  replica.apply_delta(r);
  EXPECT_EQ(fingerprint_of(live), fingerprint_of(replica));
}

// --- KeyedJoin ---------------------------------------------------------------------

TEST(KeyedJoinTest, EmitsOnMatchOnly) {
  KeyedJoin join;
  FakeContext ctx;
  join.on_message(ctx, PortId(0), event(7, 100));  // left only
  EXPECT_TRUE(ctx.sent_.empty());
  join.on_message(ctx, PortId(1), event(8, 1));  // right, different key
  EXPECT_TRUE(ctx.sent_.empty());
  join.on_message(ctx, PortId(1), event(7, 20));  // match!
  ASSERT_EQ(ctx.sent_.size(), 1u);
  EXPECT_EQ(event_key(ctx.sent_[0].second), 7);
  EXPECT_EQ(event_value(ctx.sent_[0].second), 120);
}

TEST(KeyedJoinTest, LatestValueWins) {
  KeyedJoin join;
  FakeContext ctx;
  join.on_message(ctx, PortId(0), event(1, 10));
  join.on_message(ctx, PortId(0), event(1, 30));  // update left
  join.on_message(ctx, PortId(1), event(1, 5));
  ASSERT_EQ(ctx.sent_.size(), 1u);
  EXPECT_EQ(event_value(ctx.sent_[0].second), 35);
}

// --- DeduplicateOperator --------------------------------------------------------------

TEST(DeduplicateOperatorTest, DropsRepeats) {
  DeduplicateOperator dedup;
  FakeContext ctx;
  dedup.on_message(ctx, PortId(0), event(1, 10));
  dedup.on_message(ctx, PortId(0), event(1, 10));  // dup
  dedup.on_message(ctx, PortId(0), event(1, 11));  // same key, new value
  dedup.on_message(ctx, PortId(0), event(2, 10));  // new key
  EXPECT_EQ(ctx.sent_.size(), 3u);
}

// --- KeyRouter ------------------------------------------------------------------------

TEST(KeyRouterTest, RoutesByKeyModFanout) {
  KeyRouter router(3);
  FakeContext ctx;
  router.on_message(ctx, PortId(0), event(4, 1));
  router.on_message(ctx, PortId(0), event(6, 1));
  router.on_message(ctx, PortId(0), event(5, 1));
  ASSERT_EQ(ctx.sent_.size(), 3u);
  EXPECT_EQ(ctx.sent_[0].first, PortId(1));
  EXPECT_EQ(ctx.sent_[1].first, PortId(0));
  EXPECT_EQ(ctx.sent_[2].first, PortId(2));
}

// --- RunningMax ---------------------------------------------------------------------

TEST(RunningMaxTest, MonotonicOutput) {
  RunningMax max;
  FakeContext ctx;
  max.on_message(ctx, PortId(0), event(1, 10));
  max.on_message(ctx, PortId(0), event(2, 5));
  max.on_message(ctx, PortId(0), event(3, 15));
  max.on_message(ctx, PortId(0), event(4, 15));
  ASSERT_EQ(ctx.sent_.size(), 2u);
  EXPECT_EQ(event_value(ctx.sent_[0].second), 10);
  EXPECT_EQ(event_value(ctx.sent_[1].second), 15);
}


// --- SlidingAverage -------------------------------------------------------------

TEST(SlidingAverageTest, AveragesLastNPerKey) {
  SlidingAverage avg(3);
  FakeContext ctx;
  avg.on_message(ctx, PortId(0), event(1, 10));
  avg.on_message(ctx, PortId(0), event(1, 20));
  avg.on_message(ctx, PortId(0), event(1, 30));
  avg.on_message(ctx, PortId(0), event(1, 60));  // evicts the 10
  ASSERT_EQ(ctx.sent_.size(), 4u);
  EXPECT_EQ(event_value(ctx.sent_[0].second), 10);
  EXPECT_EQ(event_value(ctx.sent_[1].second), 15);
  EXPECT_EQ(event_value(ctx.sent_[2].second), 20);
  EXPECT_EQ(event_value(ctx.sent_[3].second), (20 + 30 + 60) / 3);
}

TEST(SlidingAverageTest, KeysAreIndependent) {
  SlidingAverage avg(2);
  FakeContext ctx;
  avg.on_message(ctx, PortId(0), event(1, 100));
  avg.on_message(ctx, PortId(0), event(2, 0));
  ASSERT_EQ(ctx.sent_.size(), 2u);
  EXPECT_EQ(event_value(ctx.sent_[0].second), 100);
  EXPECT_EQ(event_value(ctx.sent_[1].second), 0);
}

TEST(SlidingAverageTest, RingSurvivesCheckpoint) {
  SlidingAverage a(2), b(2);
  FakeContext ctx;
  a.on_message(ctx, PortId(0), event(7, 4));
  a.on_message(ctx, PortId(0), event(7, 8));
  serde::Writer w;
  a.capture_full(w);
  serde::Reader r(w.bytes());
  b.restore_full(r);
  EXPECT_EQ(fingerprint_of(a), fingerprint_of(b));
  // Restored ring continues evicting correctly.
  FakeContext ctx2;
  b.on_message(ctx2, PortId(0), event(7, 16));
  EXPECT_EQ(event_value(ctx2.sent_[0].second), 12);  // (8+16)/2
}

// --- RateLimiter ------------------------------------------------------------------

TEST(RateLimiterTest, AllowsBurstPerVirtualWindow) {
  RateLimiter limiter(TickDuration(1000), 2);
  FakeContext ctx;
  ctx.set_now(VirtualTime(100));
  limiter.on_message(ctx, PortId(0), event(1, 1));
  ctx.set_now(VirtualTime(200));
  limiter.on_message(ctx, PortId(0), event(1, 2));
  ctx.set_now(VirtualTime(300));
  limiter.on_message(ctx, PortId(0), event(1, 3));  // over budget: dropped
  EXPECT_EQ(ctx.sent_.size(), 2u);
  EXPECT_EQ(limiter.dropped(), 1);
  // Next virtual window: budget replenishes.
  ctx.set_now(VirtualTime(1100));
  limiter.on_message(ctx, PortId(0), event(1, 4));
  EXPECT_EQ(ctx.sent_.size(), 3u);
}

TEST(RateLimiterTest, PerKeyBudgets) {
  RateLimiter limiter(TickDuration(1000), 1);
  FakeContext ctx;
  ctx.set_now(VirtualTime(10));
  limiter.on_message(ctx, PortId(0), event(1, 1));
  limiter.on_message(ctx, PortId(0), event(2, 1));  // other key: allowed
  limiter.on_message(ctx, PortId(0), event(1, 2));  // dropped
  EXPECT_EQ(ctx.sent_.size(), 2u);
  EXPECT_EQ(limiter.dropped(), 1);
}

// --- TopK --------------------------------------------------------------------------

TEST(TopKTest, TracksLargestValues) {
  TopK top(2);
  FakeContext ctx;
  top.on_message(ctx, PortId(0), event(10, 5));
  top.on_message(ctx, PortId(0), event(20, 9));
  top.on_message(ctx, PortId(0), event(30, 1));  // below cut: no emission
  top.on_message(ctx, PortId(0), event(40, 7));  // replaces the 5
  ASSERT_EQ(ctx.sent_.size(), 3u);
  // Final list: [key 20, 9, key 40, 7], largest first.
  const auto& flat = ctx.sent_.back().second.as_ints();
  ASSERT_EQ(flat.size(), 4u);
  EXPECT_EQ(flat[0], 20);
  EXPECT_EQ(flat[1], 9);
  EXPECT_EQ(flat[2], 40);
  EXPECT_EQ(flat[3], 7);
}

TEST(TopKTest, DuplicateValueNoChange) {
  TopK top(3);
  FakeContext ctx;
  top.on_message(ctx, PortId(0), event(1, 5));
  top.on_message(ctx, PortId(0), event(2, 5));  // same value: ignored
  EXPECT_EQ(ctx.sent_.size(), 1u);
}

TEST(TopKTest, StateSurvivesCheckpoint) {
  TopK a(2), b(2);
  FakeContext ctx;
  a.on_message(ctx, PortId(0), event(1, 50));
  a.on_message(ctx, PortId(0), event(2, 60));
  serde::Writer w;
  a.capture_full(w);
  serde::Reader r(w.bytes());
  b.restore_full(r);
  EXPECT_EQ(fingerprint_of(a), fingerprint_of(b));
}

// --- Integration: a deep pipeline through the real runtime -----------------------------

struct PipelineApp {
  core::Topology topo;
  ComponentId source_map, filter, windows, join, dedup;
  WireId in_events, in_reference, out;

  PipelineApp() {
    source_map = topo.add("normalize", [] {
      return std::make_unique<MapOperator>(2, 0);
    });
    filter = topo.add("filter", [] {
      return std::make_unique<FilterOperator>(0, 1000);
    });
    windows = topo.add("windows", [] {
      return std::make_unique<TumblingWindowSum>(TickDuration::millis(1));
    });
    join = topo.add("join", [] { return std::make_unique<KeyedJoin>(); });
    dedup = topo.add("dedup", [] {
      return std::make_unique<DeduplicateOperator>();
    });
    for (const auto& spec : topo.components()) {
      topo.set_estimator(spec.id, [] {
        return std::make_unique<estimator::ConstantEstimator>(
            TickDuration::micros(10));
      });
    }
    in_events = topo.external_input(source_map, PortId(0));
    in_reference = topo.external_input(join, PortId(1));
    topo.connect(source_map, PortId(0), filter, PortId(0));
    topo.connect(filter, PortId(0), windows, PortId(0));
    topo.connect(windows, PortId(0), join, PortId(0));
    topo.connect(join, PortId(0), dedup, PortId(0));
    out = topo.external_output(dedup, PortId(0));
  }

  [[nodiscard]] std::map<ComponentId, EngineId> placement(bool split) const {
    std::map<ComponentId, EngineId> p;
    p[source_map] = EngineId(0);
    p[filter] = EngineId(0);
    p[windows] = split ? EngineId(1) : EngineId(0);
    p[join] = split ? EngineId(1) : EngineId(0);
    p[dedup] = split ? EngineId(1) : EngineId(0);
    return p;
  }

  void feed(core::Runtime& rt) const {
    // Reference values for keys 0..4 on the join's right side.
    for (int k = 0; k < 5; ++k)
      rt.inject_at(in_reference, VirtualTime(100 + k), event(k, 1000 * k));
    // Event stream: values scaled by the map, filtered, windowed.
    for (int i = 0; i < 200; ++i) {
      rt.inject_at(in_events, VirtualTime(10'000 + i * 40'000),
                   event(i % 5, i % 13));
    }
  }
};

using VtPayload = std::vector<std::pair<std::int64_t, std::vector<std::int64_t>>>;

VtPayload collect(const std::vector<core::OutputRecord>& records) {
  VtPayload out;
  for (const auto& r : records)
    if (!r.stutter) out.emplace_back(r.vt.ticks(), r.payload.as_ints());
  return out;
}

TEST(StreamPipelineTest, DeterministicAcrossPlacements) {
  auto run = [](bool split) {
    PipelineApp app;
    core::Runtime rt(app.topo, app.placement(split), core::RuntimeConfig{});
    rt.start();
    app.feed(rt);
    EXPECT_TRUE(rt.drain());
    auto result = collect(rt.output_records(app.out));
    rt.stop();
    return result;
  };
  const auto together = run(false);
  const auto split = run(true);
  EXPECT_FALSE(together.empty());
  EXPECT_EQ(together, split);
}

TEST(StreamPipelineTest, SurvivesMidStreamFailover) {
  PipelineApp ref_app;
  core::RuntimeConfig config;
  config.checkpoint.every_n_messages = 5;
  VtPayload expected;
  std::uint64_t expected_fingerprint = 0;
  {
    core::Runtime rt(ref_app.topo, ref_app.placement(true), config);
    rt.start();
    ref_app.feed(rt);
    ASSERT_TRUE(rt.drain());
    expected = collect(rt.output_records(ref_app.out));
    expected_fingerprint = rt.state_fingerprint(ref_app.windows);
    rt.stop();
  }

  PipelineApp app;
  core::Runtime rt(app.topo, app.placement(true), config);
  rt.start();
  // Feed half, crash the stateful engine, recover, feed the rest.
  for (int k = 0; k < 5; ++k)
    rt.inject_at(app.in_reference, VirtualTime(100 + k), event(k, 1000 * k));
  for (int i = 0; i < 100; ++i)
    rt.inject_at(app.in_events, VirtualTime(10'000 + i * 40'000),
                 event(i % 5, i % 13));
  std::this_thread::sleep_for(20ms);
  rt.crash_engine(EngineId(1));
  rt.recover_engine(EngineId(1));
  for (int i = 100; i < 200; ++i)
    rt.inject_at(app.in_events, VirtualTime(10'000 + i * 40'000),
                 event(i % 5, i % 13));
  ASSERT_TRUE(rt.drain());

  // Dedup by vt (stutter removal), then compare to the clean run.
  VtPayload deduped;
  std::set<std::int64_t> seen;
  for (const auto& r : rt.output_records(app.out)) {
    if (seen.insert(r.vt.ticks()).second)
      deduped.emplace_back(r.vt.ticks(), r.payload.as_ints());
  }
  EXPECT_EQ(deduped, expected);
  EXPECT_EQ(rt.state_fingerprint(app.windows), expected_fingerprint);
  rt.stop();
}

TEST(StreamPipelineTest, WindowingUsesVirtualTimeNotArrivalTime) {
  // Two runs injecting identical (vt, payload) streams must produce
  // identical window flushes even though wall-clock arrival differs (we
  // add a real-time stagger in the second run).
  auto run = [](bool stagger) {
    PipelineApp app;
    core::Runtime rt(app.topo, app.placement(false),
                     core::RuntimeConfig{});
    rt.start();
    for (int i = 0; i < 60; ++i) {
      rt.inject_at(app.in_events, VirtualTime(10'000 + i * 40'000),
                   event(i % 3, 1));
      if (stagger && i % 10 == 0)
        std::this_thread::sleep_for(2ms);
    }
    for (int k = 0; k < 3; ++k)
      rt.inject_at(app.in_reference, VirtualTime(100 + k), event(k, 0));
    EXPECT_TRUE(rt.drain());
    auto result = collect(rt.output_records(app.out));
    rt.stop();
    return result;
  };
  EXPECT_EQ(run(false), run(true));
}

}  // namespace
}  // namespace tart::apps
