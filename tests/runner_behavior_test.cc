// Behavioral tests of the scheduler/runner machinery through the public
// runtime API: nested two-way calls, mixed call/data virtual-time
// scheduling, pessimism-delay accounting and curiosity probes, prescience
// neutrality, multicast fan-out, and close-cascade draining under pure
// lazy propagation.
#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "apps/wordcount.h"
#include "core/runtime.h"
#include "estimator/estimator.h"

namespace tart::core {
namespace {

using namespace std::chrono_literals;

// --- Nested two-way calls ----------------------------------------------------

/// Forwards through TWO chained service calls: A -> B -> C.
class DoubleCaller : public Component {
 public:
  void on_message(Context& ctx, PortId, const Payload& payload) override {
    ctx.count_block(0);
    const Payload once = ctx.call(PortId(1), payload);
    ctx.send(PortId(0), once);
  }
  void capture_full(serde::Writer& w) const override { w.write_u8(0); }
  void restore_full(serde::Reader& r) override { (void)r.read_u8(); }
};

/// A service that itself calls a deeper service before replying.
class RelayService : public Component {
 public:
  void on_message(Context&, PortId, const Payload&) override {
    throw std::logic_error("calls only");
  }
  Payload on_call(Context& ctx, PortId, const Payload& payload) override {
    ctx.count_block(0);
    const Payload deeper = ctx.call(PortId(1), payload);
    return Payload(deeper.as_int() + 1000);
  }
  void capture_full(serde::Writer& w) const override { w.write_u8(0); }
  void restore_full(serde::Reader& r) override { (void)r.read_u8(); }
};

TEST(NestedCallTest, CallChainsAcrossThreeComponents) {
  Topology topo;
  const auto a = topo.add("a", [] { return std::make_unique<DoubleCaller>(); });
  const auto b = topo.add("b", [] { return std::make_unique<RelayService>(); });
  const auto c = topo.add("c", [] {
    return std::make_unique<apps::ScalingService>();
  });
  const auto in = topo.external_input(a, PortId(0));
  topo.connect_call(a, PortId(1), b, PortId(0));
  topo.connect_call(b, PortId(1), c, PortId(0));
  const auto out = topo.external_output(a, PortId(0));

  // Spread across three engines so the nested replies cross boundaries.
  Runtime rt(topo,
             {{a, EngineId(0)}, {b, EngineId(1)}, {c, EngineId(2)}},
             RuntimeConfig{});
  rt.start();
  for (int i = 1; i <= 4; ++i)
    rt.inject_at(in, VirtualTime(i * 100'000), Payload(std::int64_t{5}));
  ASSERT_TRUE(rt.drain());
  const auto records = rt.output_records(out);
  ASSERT_EQ(records.size(), 4u);
  // ScalingService multiplies by call count (5, 10, 15, 20); relay +1000.
  for (int i = 0; i < 4; ++i)
    EXPECT_EQ(records[static_cast<std::size_t>(i)].payload.as_int(),
              5 * (i + 1) + 1000);
  // Virtual times strictly increase through the nested round trips.
  for (std::size_t i = 1; i < records.size(); ++i)
    EXPECT_GT(records[i].vt, records[i - 1].vt);
  rt.stop();
}

// --- Mixed calls and data at one component -------------------------------------

/// A service that also accepts one-way updates: both arrive through the
/// same inbox and must interleave in virtual-time order.
class Accumulator : public Component {
 public:
  void on_message(Context& ctx, PortId, const Payload& payload) override {
    ctx.count_block(0);
    total_.mutate([&](std::int64_t& t) { t += payload.as_int(); });
  }
  Payload on_call(Context& ctx, PortId, const Payload&) override {
    ctx.count_block(0);
    return Payload(total_.get());
  }
  void capture_full(serde::Writer& w) const override {
    total_.capture_full(w);
  }
  void restore_full(serde::Reader& r) override { total_.restore_full(r); }

 private:
  checkpoint::CheckpointedValue<std::int64_t> total_{0};
};

class Prober : public Component {
 public:
  void on_message(Context& ctx, PortId, const Payload& payload) override {
    ctx.count_block(0);
    (void)payload;
    ctx.send(PortId(0), ctx.call(PortId(1), Payload()));
  }
  void capture_full(serde::Writer& w) const override { w.write_u8(0); }
  void restore_full(serde::Reader& r) override { (void)r.read_u8(); }
};

TEST(MixedCallDataTest, CallsObserveVirtualTimeOrderedState) {
  Topology topo;
  const auto acc = topo.add("acc", [] {
    return std::make_unique<Accumulator>();
  });
  const auto prober = topo.add("prober", [] {
    return std::make_unique<Prober>();
  });
  for (const auto id : {acc, prober}) {
    topo.set_estimator(id, [] {
      return std::make_unique<estimator::ConstantEstimator>(
          TickDuration::micros(10));
    });
  }
  const auto in_data = topo.external_input(acc, PortId(0));
  const auto in_probe = topo.external_input(prober, PortId(0));
  topo.connect_call(prober, PortId(1), acc, PortId(0));
  const auto out = topo.external_output(prober, PortId(0));

  Runtime rt(topo, {{acc, EngineId(0)}, {prober, EngineId(0)}},
             RuntimeConfig{});
  rt.start();
  // Updates at vts 1ms, 2ms, 3ms; probe at 2.5ms must see exactly 1+2.
  rt.inject_at(in_data, VirtualTime(1'000'000), Payload(std::int64_t{1}));
  rt.inject_at(in_data, VirtualTime(2'000'000), Payload(std::int64_t{2}));
  rt.inject_at(in_data, VirtualTime(3'000'000), Payload(std::int64_t{4}));
  rt.inject_at(in_probe, VirtualTime(2'500'000), Payload());
  ASSERT_TRUE(rt.drain());
  const auto records = rt.output_records(out);
  ASSERT_EQ(records.size(), 1u);
  // The call wire's vt ~ 2.5ms + 10us + 1, scheduled between the 2ms and
  // 3ms updates: the reply must expose total == 3, never 7 or 1.
  EXPECT_EQ(records[0].payload.as_int(), 3);
  rt.stop();
}

// --- Pessimism accounting ------------------------------------------------------

TEST(PessimismMetricsTest, BlockedMergeProbesAndWaits) {
  Topology topo;
  const auto merger = topo.add("merger", [] {
    return std::make_unique<apps::TotalingMerger>();
  });
  const auto in1 = topo.external_input(merger, PortId(0));
  const auto in2 = topo.external_input(merger, PortId(0));
  (void)topo.external_output(merger, PortId(0));

  RuntimeConfig config;
  config.silence.probe_interval = 100us;
  Runtime rt(topo, {{merger, EngineId(0)}}, config);
  rt.start();
  // One message on wire 1; wire 2 is a scripted source that has promised
  // nothing: the head must sit in a pessimism delay, probing.
  rt.inject_at(in1, VirtualTime(1000), Payload(std::int64_t{1}));
  rt.inject_at(in2, VirtualTime(10), Payload(std::int64_t{0}));
  // Consume the in2 message; now in2 is silent only through vt 10 while
  // in1's head at 1000 waits.
  std::this_thread::sleep_for(10ms);
  const auto blocked = rt.metrics(merger);
  EXPECT_EQ(blocked.messages_processed, 1u);  // only the vt-10 message
  EXPECT_GT(blocked.pessimism_events, 0u);
  EXPECT_GT(blocked.probes_sent, 0u);
  EXPECT_GT(blocked.pessimism_wait_ns, 1'000'000u);  // >= 1ms of waiting

  ASSERT_TRUE(rt.drain());  // closing in2 releases the head
  EXPECT_EQ(rt.metrics(merger).messages_processed, 2u);
  rt.stop();
}

// --- Prescience neutrality ------------------------------------------------------

/// WordCountSender with prescience switched off: behaviour (vts, payloads,
/// state) must be identical — prescience only sharpens silence horizons.
class BlindWordCount : public apps::WordCountSender {
 public:
  [[nodiscard]] std::optional<estimator::BlockCounters> prescient_counters(
      PortId, const Payload&) const override {
    return std::nullopt;
  }
};

TEST(PrescienceTest, PrescienceDoesNotChangeBehaviour) {
  auto run = [](bool prescient) {
    Topology topo;
    const auto sender =
        prescient
            ? topo.add("s", [] {
                return std::make_unique<apps::WordCountSender>();
              })
            : topo.add("s", [] {
                return std::make_unique<BlindWordCount>();
              });
    const auto merger = topo.add("m", [] {
      return std::make_unique<apps::TotalingMerger>();
    });
    topo.set_estimator(sender, [] {
      return estimator::per_iteration_estimator(61000.0);
    });
    const auto in = topo.external_input(sender, PortId(0));
    topo.connect(sender, PortId(0), merger, PortId(0));
    const auto out = topo.external_output(merger, PortId(0));
    Runtime rt(topo, {{sender, EngineId(0)}, {merger, EngineId(1)}},
               RuntimeConfig{});
    rt.start();
    for (int i = 0; i < 10; ++i)
      rt.inject_at(in, VirtualTime(1000 + i * 250'000),
                   apps::sentence({"a", "b", "a"}));
    EXPECT_TRUE(rt.drain());
    std::vector<std::pair<std::int64_t, std::int64_t>> result;
    for (const auto& r : rt.output_records(out))
      result.emplace_back(r.vt.ticks(), r.payload.as_int());
    rt.stop();
    return result;
  };
  EXPECT_EQ(run(true), run(false));
}

// --- Multicast fan-out ------------------------------------------------------------

TEST(MulticastTest, OnePortFeedsTwoReceiversIdentically) {
  Topology topo;
  const auto src = topo.add("src", [] {
    return std::make_unique<apps::Passthrough>();
  });
  const auto left = topo.add("left", [] {
    return std::make_unique<apps::TotalingMerger>();
  });
  const auto right = topo.add("right", [] {
    return std::make_unique<apps::TotalingMerger>();
  });
  const auto in = topo.external_input(src, PortId(0));
  topo.connect(src, PortId(0), left, PortId(0));
  topo.connect(src, PortId(0), right, PortId(0));
  const auto out_l = topo.external_output(left, PortId(0));
  const auto out_r = topo.external_output(right, PortId(0));

  Runtime rt(topo,
             {{src, EngineId(0)}, {left, EngineId(0)}, {right, EngineId(1)}},
             RuntimeConfig{});
  rt.start();
  for (int i = 1; i <= 5; ++i)
    rt.inject_at(in, VirtualTime(i * 10'000), Payload(std::int64_t{i}));
  ASSERT_TRUE(rt.drain());
  const auto l = rt.output_records(out_l);
  const auto r = rt.output_records(out_r);
  ASSERT_EQ(l.size(), 5u);
  ASSERT_EQ(r.size(), 5u);
  // Both replicas accumulate the identical stream: 1, 3, 6, 10, 15.
  EXPECT_EQ(l.back().payload.as_int(), 15);
  EXPECT_EQ(r.back().payload.as_int(), 15);
  for (std::size_t i = 0; i < 5; ++i)
    EXPECT_EQ(l[i].payload.as_int(), r[i].payload.as_int());
  rt.stop();
}

// --- Lazy-only close cascade --------------------------------------------------------

TEST(LazyDrainTest, DeepPipelineDrainsWithoutProbes) {
  Topology topo;
  std::vector<ComponentId> stages;
  for (int i = 0; i < 5; ++i) {
    stages.push_back(topo.add("stage" + std::to_string(i), [] {
      return std::make_unique<apps::Passthrough>();
    }));
  }
  const auto in = topo.external_input(stages.front(), PortId(0));
  for (std::size_t i = 0; i + 1 < stages.size(); ++i)
    topo.connect(stages[i], PortId(0), stages[i + 1], PortId(0));
  const auto out = topo.external_output(stages.back(), PortId(0));

  RuntimeConfig lazy;
  lazy.silence.curiosity = false;
  std::map<ComponentId, EngineId> placement;
  for (std::size_t i = 0; i < stages.size(); ++i)
    placement[stages[i]] = EngineId(static_cast<std::uint32_t>(i % 2));
  Runtime rt(topo, placement, lazy);
  rt.start();
  for (int i = 0; i < 20; ++i)
    rt.inject_at(in, VirtualTime(1000 + i * 5000), Payload(std::int64_t{i}));
  ASSERT_TRUE(rt.drain());
  EXPECT_EQ(rt.output_records(out).size(), 20u);
  EXPECT_EQ(rt.total_metrics().probes_sent, 0u);
  rt.stop();
}

// --- Component failure isolation ----------------------------------------------------

/// Throws on a poisoned payload: the component fail-stops without taking
/// the process (or its engine-mates) down.
class FragileComponent : public Component {
 public:
  void on_message(Context& ctx, PortId, const Payload& payload) override {
    if (payload.as_int() == 666) throw std::runtime_error("poison");
    ctx.count_block(0);
    ctx.send(PortId(0), payload);
  }
  void capture_full(serde::Writer& w) const override { w.write_u8(0); }
  void restore_full(serde::Reader& r) override { (void)r.read_u8(); }
};

TEST(ComponentFailureTest, HandlerExceptionFailStopsOnlyThatComponent) {
  Topology topo;
  const auto fragile = topo.add("fragile", [] {
    return std::make_unique<FragileComponent>();
  });
  const auto sturdy = topo.add("sturdy", [] {
    return std::make_unique<apps::Passthrough>();
  });
  const auto in_f = topo.external_input(fragile, PortId(0));
  const auto in_s = topo.external_input(sturdy, PortId(0));
  (void)topo.external_output(fragile, PortId(0));
  const auto out_s = topo.external_output(sturdy, PortId(0));

  Runtime rt(topo, {{fragile, EngineId(0)}, {sturdy, EngineId(0)}},
             RuntimeConfig{});
  rt.start();
  rt.inject_at(in_f, VirtualTime(1000), Payload(std::int64_t{666}));
  rt.inject_at(in_s, VirtualTime(1000), Payload(std::int64_t{1}));
  std::this_thread::sleep_for(10ms);
  // The sturdy neighbour keeps working.
  rt.close_input(in_s);
  const auto deadline = std::chrono::steady_clock::now() + 5s;
  while (rt.output_records(out_s).empty() &&
         std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(1ms);
  EXPECT_EQ(rt.output_records(out_s).size(), 1u);
  rt.stop();
}

}  // namespace
}  // namespace tart::core
