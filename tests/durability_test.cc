// Tests for the durability subsystem (docs/RECOVERY.md): rotated-segment
// stable storage, CRC-protected durable checkpoint files, checkpoint-gated
// compaction accounting in the external message log, and tiered fast
// restart of a whole in-process deployment — including crash-during-
// checkpoint (torn newest file) fallback.
#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <thread>

#include "apps/wordcount.h"
#include "core/runtime.h"
#include "durability/checkpoint_file.h"
#include "durability/manager.h"
#include "durability/replay.h"
#include "estimator/estimator.h"
#include "log/message_log.h"
#include "log/segmented_store.h"

namespace tart {
namespace {

class DurabilityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("tart_durability_test_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::filesystem::path dir_;
};

std::vector<std::byte> bytes(std::initializer_list<int> values) {
  std::vector<std::byte> out;
  for (const int v : values) out.push_back(static_cast<std::byte>(v));
  return out;
}

// --- SegmentedStore ----------------------------------------------------------

class SegmentedStoreTest : public DurabilityTest {};

TEST_F(SegmentedStoreTest, RotatesAndScansAcrossSegments) {
  log::SegmentedStore::Options opts;
  opts.segment_bytes = 64;  // frame = 16-byte header + payload -> ~3/segment
  log::SegmentedStore store(dir_.string(), "messages", opts);
  std::vector<std::vector<std::byte>> written;
  for (int i = 0; i < 10; ++i) {
    written.push_back(bytes({i, i + 1}));
    ASSERT_TRUE(store.append(written.back()));
  }
  EXPECT_GT(store.segment_count(), 1u);
  EXPECT_EQ(store.next_index(), 10u);
  EXPECT_EQ(store.first_retained_index(), 0u);
  EXPECT_EQ(store.scan_all(), written);
  EXPECT_GT(store.bytes_on_disk(), 0u);
}

TEST_F(SegmentedStoreTest, TruncateBelowDeletesOnlyWhollySealedSegments) {
  log::SegmentedStore::Options opts;
  opts.segment_bytes = 64;
  log::SegmentedStore store(dir_.string(), "messages", opts);
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(store.append(bytes({i})));
  const std::uint64_t reclaimed = store.truncate_below(5);
  EXPECT_GT(reclaimed, 0u);
  // The gating invariant: nothing at or above index 5 may be deleted.
  EXPECT_LE(store.first_retained_index(), 5u);
  EXPECT_EQ(store.first_retained_index(), reclaimed);
  EXPECT_EQ(store.scan_all().size(), 10u - reclaimed);
  EXPECT_EQ(store.records_reclaimed(), reclaimed);
  EXPECT_GT(store.segments_deleted(), 0u);

  // Reopen: surviving segments keep their global indices.
  log::SegmentedStore reopened(dir_.string(), "messages", opts);
  EXPECT_EQ(reopened.first_retained_index(), reclaimed);
  EXPECT_EQ(reopened.next_index(), 10u);
  EXPECT_EQ(reopened.scan_all().size(), 10u - reclaimed);
}

TEST_F(SegmentedStoreTest, TruncateNeverDeletesActiveSegment) {
  log::SegmentedStore store(dir_.string(), "messages");  // huge default
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(store.append(bytes({i})));
  EXPECT_EQ(store.truncate_below(store.next_index()), 0u);
  EXPECT_EQ(store.scan_all().size(), 5u);
  EXPECT_EQ(store.segment_count(), 1u);
}

TEST_F(SegmentedStoreTest, TornActiveTailCutOnReopen) {
  log::SegmentedStore::Options opts;
  opts.segment_bytes = 1 << 20;
  {
    log::SegmentedStore store(dir_.string(), "messages", opts);
    for (int i = 0; i < 3; ++i) ASSERT_TRUE(store.append(bytes({7, i})));
  }
  // Crash mid-write: chop into the last frame of the active segment.
  std::filesystem::path active;
  for (const auto& entry : std::filesystem::directory_iterator(dir_))
    if (entry.path().extension() == ".seg") active = entry.path();
  ASSERT_FALSE(active.empty());
  std::filesystem::resize_file(active,
                               std::filesystem::file_size(active) - 2);

  log::SegmentedStore store(dir_.string(), "messages", opts);
  EXPECT_EQ(store.scan_all().size(), 2u);
  EXPECT_EQ(store.next_index(), 2u);
  // Appends after the cut stay scannable (the torn tail was truncated).
  ASSERT_TRUE(store.append(bytes({9})));
  EXPECT_EQ(store.scan_all().size(), 3u);
}

TEST_F(SegmentedStoreTest, AdoptsLegacySingleFileLog) {
  const std::string legacy = (dir_ / "messages.log").string();
  {
    log::FileStableStore old_store(legacy);
    ASSERT_TRUE(old_store.append(bytes({1, 2})));
    ASSERT_TRUE(old_store.append(bytes({3})));
  }
  log::SegmentedStore store(dir_.string(), "messages");
  EXPECT_EQ(store.scan_all().size(), 2u);
  EXPECT_EQ(store.next_index(), 2u);
  EXPECT_FALSE(std::filesystem::exists(legacy));  // renamed to segment 0
}

// --- Checkpoint files --------------------------------------------------------

class CheckpointFileTest : public DurabilityTest {};

durability::DurableCheckpoint sample_checkpoint(std::uint64_t covered) {
  durability::DurableCheckpoint c;
  c.deployment_fp = 0xFEED;
  c.covered_record_index = covered;
  c.wires.push_back(
      durability::WireCover{WireId(4), covered, VirtualTime(900 + covered)});
  checkpoint::RestorePlan plan;
  plan.base.component = ComponentId(2);
  plan.base.version = 3;
  plan.base.vt = VirtualTime(1234);
  plan.base.messages_processed = covered;
  plan.base.state = bytes({42, 43});
  plan.base.inputs.push_back(
      checkpoint::InputPosition{WireId(4), VirtualTime(900), covered});
  checkpoint::ComponentSnapshot delta;
  delta.component = ComponentId(2);
  delta.version = 4;
  delta.is_delta = true;
  delta.vt = VirtualTime(2000);
  plan.deltas.push_back(delta);
  c.plans.emplace(ComponentId(2), std::move(plan));
  return c;
}

TEST_F(CheckpointFileTest, WriteLoadRoundTrip) {
  durability::CheckpointWriter writer(dir_.string(), 3);
  durability::DurableCheckpoint c = sample_checkpoint(17);
  ASSERT_GT(writer.write(c), 0u);
  EXPECT_EQ(c.id, 1u);

  const auto newest = durability::CheckpointReader::load_newest(dir_.string());
  ASSERT_TRUE(newest.has_value());
  EXPECT_EQ(newest->skipped_invalid, 0u);
  const durability::DurableCheckpoint& r = newest->checkpoint;
  EXPECT_EQ(r.id, 1u);
  EXPECT_EQ(r.deployment_fp, 0xFEEDu);
  EXPECT_EQ(r.covered_record_index, 17u);
  ASSERT_EQ(r.wires.size(), 1u);
  EXPECT_EQ(r.wires[0].wire, WireId(4));
  EXPECT_EQ(r.wires[0].covered_seq, 17u);
  EXPECT_EQ(r.wires[0].last_vt, VirtualTime(917));
  ASSERT_EQ(r.plans.size(), 1u);
  const auto& plan = r.plans.at(ComponentId(2));
  EXPECT_EQ(plan.base.version, 3u);
  EXPECT_EQ(plan.base.state, bytes({42, 43}));
  ASSERT_EQ(plan.base.inputs.size(), 1u);
  EXPECT_EQ(plan.base.inputs[0].next_seq, 17u);
  ASSERT_EQ(plan.deltas.size(), 1u);
  EXPECT_TRUE(plan.deltas[0].is_delta);
  EXPECT_EQ(plan.deltas[0].version, 4u);
}

TEST_F(CheckpointFileTest, TornNewestFallsBackToPrevious) {
  durability::CheckpointWriter writer(dir_.string(), 3);
  durability::DurableCheckpoint a = sample_checkpoint(5);
  durability::DurableCheckpoint b = sample_checkpoint(9);
  ASSERT_GT(writer.write(a), 0u);
  ASSERT_GT(writer.write(b), 0u);

  // Crash mid-checkpoint: the newest file has a torn tail.
  const std::string newest_path =
      durability::checkpoint_path(dir_.string(), b.id);
  std::filesystem::resize_file(newest_path,
                               std::filesystem::file_size(newest_path) - 3);

  const auto newest = durability::CheckpointReader::load_newest(dir_.string());
  ASSERT_TRUE(newest.has_value());
  EXPECT_EQ(newest->checkpoint.id, a.id);
  EXPECT_EQ(newest->checkpoint.covered_record_index, 5u);
  EXPECT_EQ(newest->skipped_invalid, 1u);
}

TEST_F(CheckpointFileTest, CorruptBodyRejected) {
  durability::CheckpointWriter writer(dir_.string(), 3);
  durability::DurableCheckpoint c = sample_checkpoint(5);
  ASSERT_GT(writer.write(c), 0u);
  const std::string path = durability::checkpoint_path(dir_.string(), c.id);
  // Flip a body byte: size is intact but the fingerprint must catch it.
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  f.seekp(20);
  f.put('\xFF');
  f.close();
  EXPECT_FALSE(durability::CheckpointReader::load(path).has_value());
}

TEST_F(CheckpointFileTest, KeepLastPrunesOldCheckpoints) {
  durability::CheckpointWriter writer(dir_.string(), 2);
  for (int i = 0; i < 4; ++i) {
    durability::DurableCheckpoint c = sample_checkpoint(i);
    ASSERT_GT(writer.write(c), 0u);
  }
  const auto files = durability::CheckpointReader::list(dir_.string());
  ASSERT_EQ(files.size(), 2u);
  const auto newest = durability::CheckpointReader::load_newest(dir_.string());
  ASSERT_TRUE(newest.has_value());
  EXPECT_EQ(newest->checkpoint.id, 4u);
}

TEST_F(CheckpointFileTest, WriterResumesAboveExistingAndTornIds) {
  {
    std::ofstream torn(durability::checkpoint_path(dir_.string(), 41));
    torn << "garbage";  // unreadable, but its id must never be reused
  }
  durability::CheckpointWriter writer(dir_.string(), 3);
  EXPECT_EQ(writer.next_id(), 42u);
}

TEST_F(CheckpointFileTest, DeploymentFingerprintMismatchSkipped) {
  durability::CheckpointWriter writer(dir_.string(), 3);
  durability::DurableCheckpoint c = sample_checkpoint(5);
  ASSERT_GT(writer.write(c), 0u);
  EXPECT_FALSE(durability::CheckpointReader::load_newest(dir_.string(), 0x1)
                   .has_value());
  const auto match =
      durability::CheckpointReader::load_newest(dir_.string(), 0xFEED);
  ASSERT_TRUE(match.has_value());
  EXPECT_EQ(match->checkpoint.covered_record_index, 5u);
}

// --- Message-log compaction accounting ---------------------------------------

Message external(WireId wire, std::int64_t vt, std::uint64_t seq) {
  Message m;
  m.wire = wire;
  m.vt = VirtualTime(vt);
  m.seq = seq;
  m.payload = Payload(static_cast<std::int64_t>(seq));
  return m;
}

TEST(MessageLogCompactionTest, CoveredRecordIndexStopsAtFirstUncovered) {
  log::ExternalMessageLog log;
  const WireId w0(0), w1(1);
  log.append(external(w0, 100, 0));  // record 0
  log.append(external(w1, 110, 0));  // record 1
  log.append(external(w0, 120, 1));  // record 2
  log.append(external(w1, 130, 1));  // record 3 (w1 seq 1: NOT covered)
  log.append(external(w0, 140, 2));  // record 4

  const std::map<WireId, std::uint64_t> covered{{w0, 2}, {w1, 1}};
  EXPECT_EQ(log.covered_record_index(covered), 3u);
}

TEST(MessageLogCompactionTest, TruncateCoveredPreservesPositionAccounting) {
  log::ExternalMessageLog log;
  const WireId w0(0), w1(1);
  log.append(external(w0, 100, 0));
  log.append(external(w1, 110, 0));
  log.append(external(w0, 120, 1));
  log.append(external(w1, 130, 1));
  log.append(external(w0, 140, 2));

  const std::map<WireId, std::uint64_t> covered{{w0, 2}, {w1, 1}};
  EXPECT_EQ(log.truncate_covered(covered), 3u);
  EXPECT_EQ(log.truncated_messages(), 3u);

  // Retention shrank; sequence/vt accounting did not.
  EXPECT_EQ(log.size(w0), 1u);
  EXPECT_EQ(log.size(w1), 1u);
  EXPECT_EQ(log.next_seq(w0), 3u);
  EXPECT_EQ(log.next_seq(w1), 2u);
  EXPECT_EQ(log.last_vt(w0), VirtualTime(140));
  EXPECT_EQ(log.vt_below(w0, 2), VirtualTime(120));  // answered by the base
  const auto replay = log.replay_from_seq(w0, 0);
  ASSERT_EQ(replay.size(), 1u);
  EXPECT_EQ(replay[0].seq, 2u);
}

TEST(MessageLogCompactionTest, SetBaseSeedsPositionsWithoutEntries) {
  log::ExternalMessageLog log;
  const WireId w(3);
  log.set_base(w, 7, VirtualTime(5000));
  EXPECT_EQ(log.size(w), 0u);
  EXPECT_EQ(log.next_seq(w), 7u);
  EXPECT_EQ(log.last_vt(w), VirtualTime(5000));
  EXPECT_EQ(log.vt_below(w, 7), VirtualTime(5000));
}

}  // namespace
}  // namespace tart

// --- Tiered fast restart of a whole in-process deployment --------------------

namespace tart {
namespace {

struct DurableApp {
  core::Topology topo;
  ComponentId s1, s2, merger;
  WireId in1, in2, out;

  DurableApp() {
    s1 = topo.add("s1", [] {
      return std::make_unique<apps::WordCountSender>();
    });
    s2 = topo.add("s2", [] {
      return std::make_unique<apps::WordCountSender>();
    });
    merger = topo.add("m", [] {
      return std::make_unique<apps::TotalingMerger>();
    });
    for (const auto c : {s1, s2}) {
      topo.set_estimator(c, [] {
        return estimator::per_iteration_estimator(61000.0);
      });
    }
    in1 = topo.external_input(s1, PortId(0));
    in2 = topo.external_input(s2, PortId(0));
    topo.connect(s1, PortId(0), merger, PortId(0));
    topo.connect(s2, PortId(0), merger, PortId(0));
    out = topo.external_output(merger, PortId(0));
  }

  [[nodiscard]] std::map<ComponentId, EngineId> placement() const {
    return {{s1, EngineId(0)}, {s2, EngineId(0)}, {merger, EngineId(0)}};
  }
};

core::RuntimeConfig durable_config(const std::string& log_dir) {
  core::RuntimeConfig config;
  config.log_dir = log_dir;
  config.checkpoint.every_n_messages = 3;
  config.durability.enabled = true;
  config.durability.segment_bytes = 256;  // force rotation in small tests
  return config;
}

void inject_pair(core::Runtime& rt, const DurableApp& app, int i) {
  rt.inject_at(app.in1, VirtualTime(1000 + i * 500'000),
               apps::sentence({"a", "b", "c"}));
  rt.inject_at(app.in2, VirtualTime(700 + i * 400'000),
               apps::sentence({"d", "e"}));
}

/// Waits until everything injected so far has been consumed as far as the
/// silence frontier permits — WITHOUT closing the inputs (drain() closes
/// them forever, and these tests keep injecting). catch_up doubles as
/// exactly this live settle barrier.
void settle(core::Runtime& rt) {
  ASSERT_TRUE(durability::ReplayDriver::catch_up(rt).caught_up)
      << "runtime never settled";
}

class TieredRestartTest : public DurabilityTest {};

TEST_F(TieredRestartTest, RestartFromCheckpointMatchesFullReplayState) {
  const std::string log_dir = dir_.string();
  std::uint64_t fingerprint = 0;
  {
    DurableApp app;
    core::Runtime rt(app.topo, app.placement(), durable_config(log_dir));
    rt.start();
    for (int i = 0; i < 8; ++i) inject_pair(rt, app, i);
    settle(rt);
    ASSERT_NE(rt.checkpoint_manager(), nullptr);
    const auto stats = rt.checkpoint_manager()->checkpoint_now();
    ASSERT_TRUE(stats.ok) << stats.error;
    EXPECT_EQ(stats.covered_records, 16u);  // settled: everything covered
    EXPECT_GT(stats.bytes, 0u);
    EXPECT_GT(stats.reclaimed_records, 0u);  // gated compaction ran
    // Post-checkpoint suffix the restart will have to replay.
    for (int i = 8; i < 12; ++i) inject_pair(rt, app, i);
    ASSERT_TRUE(rt.drain());
    fingerprint = rt.state_fingerprint(app.merger);
    rt.stop();
  }

  DurableApp app;
  core::Runtime rt(app.topo, app.placement(), durable_config(log_dir));
  EXPECT_TRUE(rt.recovery_info().from_checkpoint);
  EXPECT_GT(rt.recovery_info().covered_records, 0u);
  EXPECT_LT(rt.recovery_info().suffix_records, 24u);
  rt.start();
  const auto replay = durability::ReplayDriver::catch_up(rt);
  EXPECT_TRUE(replay.caught_up);
  ASSERT_TRUE(rt.drain());
  EXPECT_EQ(rt.state_fingerprint(app.merger), fingerprint);
  // The compacted log plus the restored checkpoint reproduced the exact
  // pre-crash state without replaying the covered prefix.
  rt.stop();
}

TEST_F(TieredRestartTest, TornNewestCheckpointFallsBackAndStillMatches) {
  const std::string log_dir = dir_.string();
  std::uint64_t fingerprint = 0;
  std::uint64_t good_id = 0;
  {
    DurableApp app;
    core::Runtime rt(app.topo, app.placement(), durable_config(log_dir));
    rt.start();
    for (int i = 0; i < 6; ++i) inject_pair(rt, app, i);
    settle(rt);
    const auto stats = rt.checkpoint_manager()->checkpoint_now();
    ASSERT_TRUE(stats.ok);
    good_id = stats.id;
    for (int i = 6; i < 12; ++i) inject_pair(rt, app, i);
    ASSERT_TRUE(rt.drain());
    fingerprint = rt.state_fingerprint(app.merger);
    rt.stop();
  }

  // Crash DURING a later checkpoint: a torn file with a newer id exists,
  // but — because compaction runs only AFTER a durable write succeeds —
  // it never licensed any truncation. The restart must skip it, boot from
  // the previous checkpoint, and replay the suffix to the identical state.
  {
    std::ofstream torn(durability::checkpoint_path(log_dir, good_id + 1),
                       std::ios::binary);
    torn << "torn mid-write";
  }

  DurableApp app;
  core::Runtime rt(app.topo, app.placement(), durable_config(log_dir));
  EXPECT_TRUE(rt.recovery_info().from_checkpoint);
  EXPECT_EQ(rt.recovery_info().skipped_invalid, 1u);
  EXPECT_EQ(rt.recovery_info().checkpoint_id, good_id);
  rt.start();
  EXPECT_TRUE(durability::ReplayDriver::catch_up(rt).caught_up);
  ASSERT_TRUE(rt.drain());
  EXPECT_EQ(rt.state_fingerprint(app.merger), fingerprint);

  // A later successful checkpoint must never reuse the torn file's id.
  const auto stats = rt.checkpoint_manager()->checkpoint_now();
  EXPECT_TRUE(stats.ok) << stats.error;
  EXPECT_GT(stats.id, good_id + 1);
  rt.stop();
}

TEST_F(TieredRestartTest, NoCheckpointMeansColdReplayStillWorks) {
  const std::string log_dir = dir_.string();
  std::uint64_t fingerprint = 0;
  {
    DurableApp app;
    core::Runtime rt(app.topo, app.placement(), durable_config(log_dir));
    rt.start();
    for (int i = 0; i < 5; ++i) inject_pair(rt, app, i);
    ASSERT_TRUE(rt.drain());
    fingerprint = rt.state_fingerprint(app.merger);
    rt.stop();
  }
  DurableApp app;
  core::Runtime rt(app.topo, app.placement(), durable_config(log_dir));
  EXPECT_FALSE(rt.recovery_info().from_checkpoint);
  EXPECT_EQ(rt.recovery_info().suffix_records, 10u);
  rt.start();
  EXPECT_TRUE(durability::ReplayDriver::catch_up(rt).caught_up);
  ASSERT_TRUE(rt.drain());
  EXPECT_EQ(rt.state_fingerprint(app.merger), fingerprint);
  rt.stop();
}

TEST_F(TieredRestartTest, RestartKeepsAcceptingAndCheckpointing) {
  const std::string log_dir = dir_.string();
  {
    DurableApp app;
    core::Runtime rt(app.topo, app.placement(), durable_config(log_dir));
    rt.start();
    for (int i = 0; i < 4; ++i) inject_pair(rt, app, i);
    settle(rt);
    ASSERT_TRUE(rt.checkpoint_manager()->checkpoint_now().ok);
    rt.stop();
  }
  DurableApp app;
  core::Runtime rt(app.topo, app.placement(), durable_config(log_dir));
  rt.start();
  EXPECT_TRUE(durability::ReplayDriver::catch_up(rt).caught_up);
  // New injections continue the per-wire sequence past the covered prefix.
  inject_pair(rt, app, 50);
  ASSERT_TRUE(rt.drain());
  EXPECT_EQ(rt.external_log().next_seq(app.in1), 5u);
  const auto stats = rt.checkpoint_manager()->checkpoint_now();
  EXPECT_TRUE(stats.ok) << stats.error;
  EXPECT_EQ(stats.covered_records, 10u);
  rt.stop();
}

TEST_F(TieredRestartTest, IntervalTriggerWritesCheckpointsAutomatically) {
  const std::string log_dir = dir_.string();
  DurableApp app;
  core::RuntimeConfig config = durable_config(log_dir);
  config.durability.interval_ms = 20;
  core::Runtime rt(app.topo, app.placement(), config);
  rt.start();
  for (int i = 0; i < 4; ++i) inject_pair(rt, app, i);
  ASSERT_TRUE(rt.drain());
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (rt.checkpoint_manager()->checkpoints_written() == 0 &&
         std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_GT(rt.checkpoint_manager()->checkpoints_written(), 0u);
  rt.stop();
  EXPECT_FALSE(
      durability::CheckpointReader::list(log_dir).empty());
}

}  // namespace
}  // namespace tart
